"""Sample-level full-duplex exchange tests — the paper's core claims at
link scale."""

import numpy as np
import pytest

from repro.ambient import OfdmLikeSource
from repro.channel import ChannelModel, Scene
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.feedback import feedback_bits_for_frame
from repro.fullduplex.link import FullDuplexLink
from repro.phy.framing import random_frame
from repro.utils.rng import random_bits


@pytest.fixture(scope="module")
def fd_setup():
    cfg = FullDuplexConfig()
    source = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                            bandwidth_hz=200e3)
    link = FullDuplexLink(cfg, source)
    channel = ChannelModel()
    scene = Scene.two_device_line(device_separation_m=0.5)
    return cfg, link, channel, scene


class TestRawExchange:
    def test_both_directions_error_free_at_half_metre(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(0)
        data = random_bits(rng, 256)
        fb = random_bits(rng, 256 // cfg.asymmetry_ratio)
        gains = channel.realize(scene, rng)
        decoded, fb_sent, fb_dec = link.run_raw_bits(gains, data, fb, rng=rng)
        assert np.array_equal(decoded, data)
        assert np.array_equal(fb_sent, fb_dec)

    def test_concurrent_feedback_costs_no_data_errors(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        errors_on = errors_off = 0
        for t in range(5):
            gains = channel.realize(scene, np.random.default_rng(100 + t))
            data = random_bits(np.random.default_rng(200 + t), 256)
            fb = random_bits(np.random.default_rng(300 + t), 4)
            on, _, _ = link.run_raw_bits(
                gains, data, fb, rng=np.random.default_rng(t),
                feedback_enabled=True,
            )
            off, _, _ = link.run_raw_bits(
                gains, data, fb, rng=np.random.default_rng(t),
                feedback_enabled=False,
            )
            errors_on += int(np.count_nonzero(on != data))
            errors_off += int(np.count_nonzero(off != data))
        assert errors_off == 0
        assert errors_on == 0  # compensation makes feedback free

    def test_without_compensation_feedback_hurts(self, fd_setup):
        cfg, _, channel, scene = fd_setup
        source = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                                bandwidth_hz=200e3)
        naive = FullDuplexLink(
            FullDuplexConfig(self_compensation=False), source
        )
        errors = 0
        for t in range(5):
            gains = channel.realize(scene, np.random.default_rng(100 + t))
            data = random_bits(np.random.default_rng(200 + t), 256)
            fb = random_bits(np.random.default_rng(300 + t), 4)
            decoded, _, _ = naive.run_raw_bits(
                gains, data, fb, rng=np.random.default_rng(t)
            )
            errors += int(np.count_nonzero(decoded != data))
        assert errors > 0  # the ablation shows a real error floor

    def test_feedback_trimmed_to_frame_duration(self, fd_setup):
        from repro.fullduplex.link import DATA_PILOT_BITS, FEEDBACK_PILOT_BITS

        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(1)
        data = random_bits(rng, 256)
        fb = random_bits(rng, 50)  # far more than fits
        gains = channel.realize(scene, rng)
        _, fb_sent, fb_dec = link.run_raw_bits(gains, data, fb, rng=rng)
        slots = (256 + DATA_PILOT_BITS.size) // cfg.asymmetry_ratio
        assert fb_sent.size == slots - FEEDBACK_PILOT_BITS.size
        assert fb_dec.size == fb_sent.size


class TestFramedExchange:
    def test_full_exchange_delivers(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(2)
        frame = random_frame(16, rng)
        fb = random_bits(rng, 8)
        gains = channel.realize(scene, rng)
        exchange = link.run(gains, frame, fb, rng=rng)
        assert exchange.data_delivered
        assert np.array_equal(exchange.data_result.frame.payload_bits,
                              frame.payload_bits)
        assert exchange.feedback_errors == 0

    def test_harvested_energy_positive(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(3)
        frame = random_frame(8, rng)
        gains = channel.realize(scene, rng)
        exchange = link.run(gains, frame, random_bits(rng, 4), rng=rng)
        assert exchange.harvested_a_joule > 0
        assert exchange.harvested_b_joule > 0

    def test_feedback_disabled_gives_empty_feedback(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(4)
        frame = random_frame(8, rng)
        gains = channel.realize(scene, rng)
        exchange = link.run(gains, frame, random_bits(rng, 4), rng=rng,
                            feedback_enabled=False)
        assert exchange.feedback_sent.size == 0
        assert exchange.feedback_decoded.size == 0
        assert exchange.data_delivered

    def test_data_bits_sent_recorded(self, fd_setup):
        cfg, link, channel, scene = fd_setup
        rng = np.random.default_rng(5)
        frame = random_frame(4, rng)
        gains = channel.realize(scene, rng)
        exchange = link.run(gains, frame, random_bits(rng, 4), rng=rng)
        from repro.phy.framing import build_frame

        assert np.array_equal(exchange.data_bits_sent,
                              build_frame(frame, cfg.phy.warmup_bits))


class TestFeedbackBitsForFrame:
    def test_counts(self):
        cfg = FullDuplexConfig()
        per = cfg.samples_per_feedback_bit
        assert feedback_bits_for_frame(per * 3 + 1, cfg) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            feedback_bits_for_frame(-1, FullDuplexConfig())
