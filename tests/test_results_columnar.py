"""Columnar ResultTable: integrity fixes, typed columns, strict JSON.

Two regression tests here fail on the pre-columnar container:

* ``TestColumnLock`` — ``append({})`` used to slip past the column
  lock (columns stayed ``[]``), so a later keyed record re-locked the
  columns around an already-stored empty record and ``rows()`` blew up
  with ``KeyError``;
* ``TestNonFinite`` — ``to_json`` used to emit bare ``NaN``/``Infinity``
  tokens that no strict JSON parser (or ``canonical_json`` round trip)
  accepts.

The rest pins the columnar re-platform: dtype selection, object-dtype
fallback, and byte-identical finite JSON export.
"""

import json
import math

import numpy as np
import pytest

from repro.experiments.results import (
    ResultTable,
    decode_nonfinite,
    encode_nonfinite,
)


def _strict_loads(text: str):
    """json.loads that rejects bare NaN/Infinity tokens."""

    def refuse(token):
        raise ValueError(f"non-strict JSON token {token!r}")

    return json.loads(text, parse_constant=refuse)


class TestColumnLock:
    def test_empty_first_record_locks_zero_columns(self):
        table = ResultTable()
        table.append({})
        assert table.columns == []
        assert len(table) == 1
        with pytest.raises(ValueError, match="record keys do not match"):
            table.append({"a": 1})
        # the table stayed rectangular: every accessor works
        assert table.records == [{}]
        assert table.rows() == [()]

    def test_keyed_first_record_rejects_empty(self):
        table = ResultTable()
        table.append({"a": 1})
        with pytest.raises(ValueError, match="record keys do not match"):
            table.append({})
        assert table.records == [{"a": 1}]

    def test_all_empty_records_round_trip(self):
        table = ResultTable()
        table.extend([{}, {}, {}])
        assert len(table) == 3
        clone = ResultTable.from_json(table.to_json())
        assert clone == table

    def test_mismatched_keys_still_rejected(self):
        table = ResultTable()
        table.append({"a": 1, "b": 2})
        with pytest.raises(ValueError, match=r"extra \['c'\]"):
            table.append({"a": 1, "c": 3})


class TestColumnarStorage:
    def test_dtype_per_column(self):
        table = ResultTable()
        table.append({"i": 3, "f": 0.5, "b": True, "s": "x"})
        table.append({"i": -1, "f": 1.5, "b": False, "s": "y"})
        assert table.array("i").dtype == np.int64
        assert table.array("f").dtype == np.float64
        assert table.array("b").dtype == np.bool_
        assert table.array("s").dtype == object

    def test_records_materialise_python_scalars(self):
        table = ResultTable(records=[{"i": 1, "f": 2.5, "b": True}])
        record = table.records[0]
        assert type(record["i"]) is int
        assert type(record["f"]) is float
        assert type(record["b"]) is bool

    def test_mixed_types_demote_to_object_losslessly(self):
        table = ResultTable()
        table.extend([{"v": 1}, {"v": 2.5}, {"v": "three"}, {"v": None}])
        assert table.array("v").dtype == object
        assert table.column("v") == [1, 2.5, "three", None]

    def test_bool_does_not_join_int_column(self):
        table = ResultTable(records=[{"v": 1}, {"v": True}])
        assert table.array("v").dtype == object
        assert table.column("v") == [1, True]

    def test_growth_beyond_initial_capacity(self):
        table = ResultTable()
        table.extend({"trial": i, "x": i * 0.5} for i in range(100))
        assert len(table) == 100
        assert table.column("trial") == list(range(100))
        assert table.sum("x") == sum(i * 0.5 for i in range(100))

    def test_huge_ints_fall_back_to_object(self):
        table = ResultTable(records=[{"v": 2**70}, {"v": 1}])
        assert table.array("v").dtype == object
        assert table.column("v") == [2**70, 1]

    def test_sum_and_mean_match_python_semantics(self):
        records = [{"e": i % 3, "x": i * 0.1} for i in range(17)]
        table = ResultTable(records=records)
        assert table.sum("e") == float(sum(r["e"] for r in records))
        # float columns sum sequentially — bit-identical to the old
        # list-of-dicts container
        assert table.sum("x") == float(sum(r["x"] for r in records))
        assert table.mean("x") == float(
            sum(r["x"] for r in records) / len(records)
        )

    def test_columns_property_is_a_copy(self):
        table = ResultTable(records=[{"a": 1}])
        table.columns.append("b")
        assert table.columns == ["a"]


class TestJsonByteCompatibility:
    def test_finite_table_export_matches_legacy_bytes(self):
        table = ResultTable(metadata={"seed": 7, "scenario": {"d": 2.0}})
        for i in range(4):
            table.append({"trial": i, "errors": i % 2, "ber": i * 0.125,
                          "label": f"s{i}", "ok": i % 2 == 0})
        legacy = json.dumps(
            {
                "columns": table.columns,
                "records": table.records,
                "metadata": table.metadata,
            },
            indent=2,
        )
        assert table.to_json() == legacy

    def test_round_trip_preserves_bytes(self):
        table = ResultTable(metadata={"parameter": "d"})
        table.extend([{"d": 0.5, "y": 1}, {"d": 1.0, "y": 2}])
        clone = ResultTable.from_json(table.to_json())
        assert clone.to_json() == table.to_json()
        assert clone == table


class TestNonFinite:
    def test_to_json_is_strict(self):
        table = ResultTable(records=[{"latency": math.nan}])
        _strict_loads(table.to_json())  # must not raise

    def test_nonfinite_round_trip(self):
        table = ResultTable(metadata={"worst": math.inf})
        table.append({"nan": math.nan, "pinf": math.inf,
                      "ninf": -math.inf, "fin": 2.5})
        clone = ResultTable.from_json(table.to_json())
        record = clone.records[0]
        assert math.isnan(record["nan"])
        assert record["pinf"] == math.inf
        assert record["ninf"] == -math.inf
        assert record["fin"] == 2.5
        assert clone.metadata["worst"] == math.inf

    def test_legacy_bare_tokens_still_parse(self):
        text = json.dumps(
            {"columns": ["v"], "records": [{"v": float("nan")}],
             "metadata": {}}
        )  # the pre-fix on-disk shape
        clone = ResultTable.from_json(text)
        assert math.isnan(clone.records[0]["v"])

    def test_sentinel_helpers_invert(self):
        doc = {"a": [math.nan, 1.0, {"b": -math.inf}], "c": "text"}
        encoded = encode_nonfinite(doc)
        _strict_loads(json.dumps(encoded, allow_nan=False))
        decoded = decode_nonfinite(encoded)
        assert math.isnan(decoded["a"][0])
        assert decoded["a"][1] == 1.0
        assert decoded["a"][2]["b"] == -math.inf
        assert decoded["c"] == "text"

    def test_literal_sentinel_dict_survives(self):
        # A record that legitimately stores a {"$nonfinite": ...} dict
        # with a non-tag value is not misdecoded.
        table = ResultTable(records=[{"v": {"$nonfinite": "other"}}])
        clone = ResultTable.from_json(table.to_json())
        assert clone.records[0]["v"] == {"$nonfinite": "other"}
