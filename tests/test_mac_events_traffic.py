"""Event queue and traffic model tests."""

import numpy as np
import pytest

from repro.mac.events import EventQueue
from repro.mac.traffic import BernoulliLoss, UniformLossPosition, poisson_arrivals


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(1.0, lambda: log.append(2))
        q.run_until(2.0)
        assert log == [1, 2]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(2.5, lambda: seen.append(q.now))
        q.run_until(5.0)
        assert seen == [2.5]
        assert q.now == 5.0

    def test_events_can_schedule_events(self):
        q = EventQueue()
        log = []

        def first():
            log.append("first")
            q.schedule(1.0, lambda: log.append("second"))

        q.schedule(1.0, first)
        q.run_until(3.0)
        assert log == ["first", "second"]

    def test_run_until_excludes_later_events(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda: log.append("late"))
        q.run_until(4.0)
        assert log == []
        q.run_until(6.0)
        assert log == ["late"]

    def test_cancel(self):
        q = EventQueue()
        log = []
        handle = q.schedule(1.0, lambda: log.append("x"))
        q.cancel(handle)
        q.run_until(2.0)
        assert log == []
        assert q.pending == 0

    def test_schedule_at(self):
        q = EventQueue()
        log = []
        q.schedule_at(2.0, lambda: log.append(q.now))
        q.run_until(3.0)
        assert log == [2.0]

    def test_rejects_past(self):
        q = EventQueue()
        q.run_until(5.0)
        with pytest.raises(ValueError):
            q.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            q.run_until(1.0)

    def test_run_all_guard(self):
        q = EventQueue()

        def rearm():
            q.schedule(1.0, rearm)

        q.schedule(1.0, rearm)
        with pytest.raises(RuntimeError):
            q.run_all(max_events=100)


class TestPoissonArrivals:
    def test_sorted_and_bounded(self):
        t = poisson_arrivals(5.0, 10.0, rng=0)
        assert np.all(np.diff(t) >= 0)
        assert t.size == 0 or (t[0] >= 0 and t[-1] < 10.0)

    def test_rate_matches(self):
        t = poisson_arrivals(20.0, 100.0, rng=1)
        assert t.size == pytest.approx(2000, rel=0.1)

    def test_deterministic_with_seed(self):
        assert np.allclose(poisson_arrivals(3.0, 5.0, rng=7),
                           poisson_arrivals(3.0, 5.0, rng=7))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0)


class TestLossModels:
    def test_zero_probability_never_loses(self):
        loss = BernoulliLoss(0.0)
        assert not any(loss.draw(np.random.default_rng(i)) for i in range(20))

    def test_rate_matches_probability(self):
        loss = BernoulliLoss(0.3)
        gen = np.random.default_rng(0)
        hits = sum(loss.draw(gen) for _ in range(10_000))
        assert hits == pytest.approx(3000, rel=0.1)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_position_in_range(self):
        pos = UniformLossPosition()
        gen = np.random.default_rng(0)
        draws = [pos.draw(100, gen) for _ in range(1000)]
        assert min(draws) >= 0 and max(draws) < 100

    def test_position_roughly_uniform(self):
        pos = UniformLossPosition()
        gen = np.random.default_rng(1)
        draws = np.array([pos.draw(1000, gen) for _ in range(5000)])
        assert abs(draws.mean() - 500) < 30

    def test_position_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            UniformLossPosition().draw(0, np.random.default_rng(0))
