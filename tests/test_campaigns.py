"""Campaign layer: spec expansion, store-first execution, reports, CLI.

The acceptance property from the store design: a campaign run twice
produces bitwise-identical reports with the second run executing zero
trials, and a topped-up run (same campaign, higher budget) matches a
cold run at the larger budget byte for byte.  The tier-1 smoke here is
the 2-point campaign exercising exactly that.
"""

import json

import pytest

from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    MissingUnitsError,
    campaign_names,
    describe_campaigns,
    get_campaign,
)
from repro.experiments import TRIAL_KINDS
from repro.store import ResultStore

#: Cheap sample-level overrides (16 samples/chip) for real-trial smokes.
FAST_OVERRIDES = {
    "sample_rate_hz": 32_000.0,
    "source_bandwidth_hz": 20e3,
}


def _tiny_campaign(**changes) -> CampaignSpec:
    base = dict(
        name="tiny-test",
        description="two-point smoke campaign",
        scenario="calibrated-default",
        overrides=dict(FAST_OVERRIDES),
        grid={"distance_m": (0.4, 0.8)},
        kinds=("forward-ber",),
        n_trials=3,
        seed=11,
    )
    base.update(changes)
    return CampaignSpec(**base)


class TestCampaignSpec:
    def test_units_full_product_kind_point_arm_order(self):
        camp = _tiny_campaign(
            grid={"distance_m": (0.4, 0.8), "asymmetry_ratio": (16, 64)},
            kinds=("forward-ber", "feedback-ber"),
            arms={"a": {}, "b": {"self_compensation": False}},
        )
        units = camp.units()
        assert len(units) == 2 * 4 * 2  # kinds x grid product x arms
        # kind-major, then grid point (rightmost param fastest), then arm
        assert [u.kind for u in units[:8]] == ["forward-ber"] * 8
        assert units[0].point == (("distance_m", 0.4),
                                  ("asymmetry_ratio", 16))
        assert units[2].point == (("distance_m", 0.4),
                                  ("asymmetry_ratio", 64))
        assert [u.arm for u in units[:4]] == ["a", "b", "a", "b"]
        assert units[1].spec.self_compensation is False

    def test_arms_are_seed_paired_and_grid_wins_over_arm(self):
        camp = _tiny_campaign(
            grid={"mac_policy": ("no-arq",)},
            arms={"x": {"mac_policy": "hd-arq"}},
        )
        (unit,) = camp.units()
        assert unit.seed == 11
        assert unit.spec.mac_policy == "no-arq"  # grid beats arm override

    def test_empty_grid_is_one_point(self):
        camp = _tiny_campaign(grid={})
        units = camp.units()
        assert len(units) == 1
        assert units[0].point == ()

    def test_budget_and_seed_overrides(self):
        units = _tiny_campaign().units(n_trials=7, seed=2)
        assert all(u.n_trials == 7 and u.seed == 2 for u in units)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown trial kind"):
            _tiny_campaign(kinds=("warp-speed",))
        with pytest.raises(ValueError, match="not ScenarioSpec fields"):
            _tiny_campaign(grid={"warp_factor": (9,)})
        with pytest.raises(ValueError, match="no values"):
            _tiny_campaign(grid={"distance_m": ()})
        with pytest.raises(ValueError, match="n_trials"):
            _tiny_campaign(n_trials=0)

    @pytest.mark.parametrize(
        "name", ["", "../escape", "a/b", ".hidden", "x y"]
    )
    def test_unsafe_names_rejected(self, name):
        # The name becomes the checkpoint filename: path separators or
        # traversal must never escape <store>/campaigns/.
        with pytest.raises(ValueError, match="campaign name"):
            _tiny_campaign(name=name)

    def test_dict_round_trip(self):
        camp = _tiny_campaign(arms={"x": {"self_compensation": False}})
        clone = CampaignSpec.from_dict(camp.to_dict())
        assert clone.to_dict() == camp.to_dict()
        assert [u.key().digest for u in clone.units()] == [
            u.key().digest for u in camp.units()
        ]
        with pytest.raises(ValueError, match="unknown CampaignSpec"):
            CampaignSpec.from_dict({"name": "x", "warp": 9})

    def test_constructor_copies_caller_containers(self):
        grid = {"distance_m": [0.4, 0.8]}
        overrides = dict(FAST_OVERRIDES)
        camp = _tiny_campaign(grid=grid, overrides=overrides)
        grid["distance_m"].append(1.2)     # caller's list stays a list
        overrides["distance_m"] = 9.9
        assert camp.grid["distance_m"] == (0.4, 0.8)
        assert "distance_m" not in camp.overrides

    def test_unit_key_is_campaign_independent(self):
        # The same (spec, kind, budget, seed) cell reached from two
        # differently-named campaigns shares one store address.
        a = _tiny_campaign(name="one").units()[0]
        b = _tiny_campaign(name="two", description="other").units()[0]
        assert a.key() == b.key()


class TestTrialKindVocabulary:
    def test_cli_metric_names_match_trial_kinds(self):
        # cli.SWEEP_METRICS is a static copy of the shared vocabulary
        # (so parser construction stays import-light); this pin makes
        # any drift loud instead of silently hiding a kind from the CLI
        # or crashing cmd_sweep with a raw KeyError.
        from repro.cli import SWEEP_METRICS, VECTORIZABLE_METRICS

        assert set(SWEEP_METRICS) == set(TRIAL_KINDS)

        from repro.experiments.batch import _BATCH_TRIALS

        batched = {
            kind for kind, trial in TRIAL_KINDS.items()
            if trial in _BATCH_TRIALS
        }
        assert set(VECTORIZABLE_METRICS) == batched

    def test_every_kind_has_an_aggregate(self):
        from repro.experiments import TRIAL_AGGREGATES

        assert set(TRIAL_AGGREGATES) == set(TRIAL_KINDS)


class TestBuiltinCampaigns:
    def test_registry_lists_the_paper_figures(self):
        assert campaign_names() == [
            "fig-ber-vs-distance",
            "fig-energy-vs-range",
            "fig-goodput-vs-load",
        ]
        assert all(desc for _, desc in describe_campaigns())

    def test_builtins_expand_and_validate(self):
        for name in campaign_names():
            camp = get_campaign(name)
            units = camp.units()
            assert units, name
            assert all(u.kind in TRIAL_KINDS for u in units)

    def test_goodput_arms_are_paired(self):
        camp = get_campaign("fig-goodput-vs-load")
        units = camp.units()
        seeds = {u.seed for u in units}
        assert len(seeds) == 1
        arms = {u.arm for u in units}
        assert arms == {"no-arq", "hd-arq", "fd-abort"}

    def test_unknown_campaign_is_an_error(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            get_campaign("fig-does-not-exist")


class TestCampaignRunner:
    def test_two_point_campaign_twice_is_pure_cache_hits(self, tmp_path):
        # Tier-1 smoke for the store acceptance criterion: run a real
        # 2-point campaign twice; the second run must execute zero
        # trials and the reports must be byte-identical.
        camp = _tiny_campaign()
        runner = CampaignRunner(store=ResultStore(tmp_path))
        first = runner.run(camp)
        report_1 = {k: t.to_json() for k, t in runner.report(camp).items()}
        second = runner.run(camp)
        report_2 = {k: t.to_json() for k, t in runner.report(camp).items()}
        assert first.outcome_counts() == {"miss": 2}
        assert first.trials_computed == 2 * 3
        assert second.outcome_counts() == {"hit": 2}
        assert second.trials_computed == 0
        assert report_1 == report_2

    def test_topped_up_campaign_matches_cold_bitwise(self, tmp_path):
        camp = _tiny_campaign()
        warm = CampaignRunner(store=ResultStore(tmp_path / "warm"))
        warm.run(camp)                      # seeds the 3-trial prefixes
        topped = warm.run(camp, n_trials=8)
        cold_runner = CampaignRunner(store=ResultStore(tmp_path / "cold"))
        cold = cold_runner.run(camp, n_trials=8)
        assert topped.outcome_counts() == {"topup": 2}
        assert topped.trials_computed == 2 * 5
        assert cold.trials_computed == 2 * 8
        warm_report = {
            k: t.to_json()
            for k, t in warm.report(camp, n_trials=8).items()
        }
        cold_report = {
            k: t.to_json()
            for k, t in cold_runner.report(camp, n_trials=8).items()
        }
        assert warm_report == cold_report

    def test_report_from_store_alone(self, tmp_path):
        camp = _tiny_campaign()
        runner = CampaignRunner(store=ResultStore(tmp_path))
        with pytest.raises(MissingUnitsError, match="not in the store"):
            runner.report(camp)
        runner.run(camp)
        tables = runner.report(camp)
        assert set(tables) == {"forward-ber"}
        table = tables["forward-ber"]
        assert table.columns == [
            "distance_m", "arm", "errors", "bits", "rate", "n_trials"
        ]
        assert table.column("distance_m") == [0.4, 0.8]
        assert all(n == 3 for n in table.column("n_trials"))

    def test_status_counts(self, tmp_path):
        camp = _tiny_campaign()
        runner = CampaignRunner(store=ResultStore(tmp_path))
        before = runner.status(camp)
        assert (before["cached"], before["missing"]) == (0, 2)
        runner.run(camp)
        after = runner.status(camp)
        assert (after["cached"], after["missing"]) == (2, 0)
        # a higher budget sees the stored runs as reusable prefixes
        topup = runner.status(camp, n_trials=10)
        assert (topup["cached"], topup["reusable"]) == (0, 2)

    def test_checkpoint_written_and_stale_discarded(self, tmp_path):
        camp = _tiny_campaign()
        runner = CampaignRunner(store=ResultStore(tmp_path))
        result = runner.run(camp)
        path = runner.checkpoint_path(camp)
        state = json.loads(path.read_text())
        assert state["campaign"] == camp.to_dict()
        assert (state["completed"], state["total"]) == (2, 2)
        assert len(state["units"]) == 2
        assert all(
            u["outcome"] == "miss" and u["trials_computed"] == 3
            for u in state["units"].values()
        )
        digests = {r.key.digest for _, r in result.units}
        assert set(state["units"]) == digests
        # a different budget is a different run fingerprint: the stale
        # checkpoint is discarded, but the store still tops up
        topped = runner.run(camp, n_trials=5)
        state2 = json.loads(path.read_text())
        assert state2["run"]["n_trials"] == 5
        assert topped.outcome_counts() == {"topup": 2}

    def test_checkpoint_bytes_are_canonical(self, tmp_path):
        # Regression for the lint SER rules: the checkpoint writer must
        # emit sorted keys and strict-finite JSON, so re-serialising the
        # parsed state canonically reproduces the file bytes exactly.
        camp = _tiny_campaign()
        runner = CampaignRunner(store=ResultStore(tmp_path))
        runner.run(camp)
        text = runner.checkpoint_path(camp).read_text()
        state = json.loads(text)
        canonical = (
            json.dumps(state, indent=2, sort_keys=True, allow_nan=False)
            + "\n"
        )
        assert text == canonical

    def test_progress_callback_sees_every_unit(self, tmp_path):
        camp = _tiny_campaign()
        seen = []
        CampaignRunner(store=ResultStore(tmp_path)).run(
            camp, progress=lambda unit, outcome: seen.append(
                (unit.label(), outcome.outcome)
            )
        )
        assert len(seen) == 2
        assert all(outcome == "miss" for _, outcome in seen)

    def test_vectorized_applies_to_every_kind(self, tmp_path):
        # Since the slotted MAC engine landed, every standard kind has
        # a batched implementation — no fallback remains to trigger.
        runner = CampaignRunner(
            store=ResultStore(tmp_path), backend="vectorized"
        )
        for kind in TRIAL_KINDS:
            assert runner._backend_for(kind) == "vectorized", kind


class TestCampaignCli:
    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_list_and_show(self, capsys):
        assert self._run(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig-ber-vs-distance" in out
        assert self._run(["campaign", "show", "fig-goodput-vs-load"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "fig-goodput-vs-load"

    def test_unknown_campaign_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as err:
            self._run(["campaign", "run", "fig-nope"])
        assert err.value.code == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_bad_trials_exits_cleanly(self, tmp_path, capsys):
        for action in ("run", "status", "report"):
            with pytest.raises(SystemExit) as err:
                self._run(["campaign", action, "fig-ber-vs-distance",
                           "--store", str(tmp_path), "--trials", "0"])
            assert err.value.code == 2
            assert "n_trials must be positive" in capsys.readouterr().err

    def test_report_before_run_exits_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            self._run(["campaign", "report", "fig-ber-vs-distance",
                       "--store", str(tmp_path)])
        assert err.value.code == 2
        assert "not in the store" in capsys.readouterr().err

    @pytest.mark.integration
    def test_run_status_report_round_trip(self, tmp_path, capsys,
                                          monkeypatch):
        # Register a cheap campaign and drive it through the CLI; the
        # second run must be pure hits and the two reports identical.
        from repro.campaigns import builtin

        monkeypatch.setitem(
            builtin._CAMPAIGNS, "tiny-cli-test", _tiny_campaign
        )
        store = str(tmp_path / "store")
        argv = ["campaign", "run", "tiny-cli-test", "--store", store]
        assert self._run(argv) == 0
        first = capsys.readouterr().out
        assert "2 miss" in first
        assert self._run(argv) == 0
        second = capsys.readouterr().out
        assert "2 hit" in second and "0 trials computed" in second

        assert self._run(["campaign", "status", "tiny-cli-test",
                          "--store", store]) == 0
        assert "2" in capsys.readouterr().out

        report_path = tmp_path / "report.json"
        report_argv = ["campaign", "report", "tiny-cli-test",
                       "--store", store, "--json", str(report_path)]
        assert self._run(report_argv) == 0
        text_1 = capsys.readouterr().out
        doc_1 = report_path.read_text()
        assert self._run(report_argv) == 0
        text_2 = capsys.readouterr().out
        assert text_1 == text_2
        assert report_path.read_text() == doc_1
        doc = json.loads(doc_1)
        assert set(doc) == {"forward-ber"}
        assert len(doc["forward-ber"]["records"]) == 2
