"""Ambient-source tests: statistics the receiver design depends on."""

import numpy as np
import pytest

from repro.ambient.sources import (
    FilteredNoiseSource,
    OfdmLikeSource,
    ToneSource,
    make_source,
)
from repro.ambient.spectrum import coherence_samples, occupied_bandwidth


class TestOfdmLikeSource:
    def setup_method(self):
        self.src = OfdmLikeSource(sample_rate_hz=256e3, bandwidth_hz=200e3)

    def test_unit_mean_power(self):
        x = self.src.samples(8192, rng=0)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(1.0, rel=1e-6)

    def test_length_and_dtype(self):
        x = self.src.samples(100, rng=0)
        assert x.size == 100 and np.iscomplexobj(x)

    def test_fresh_realisations_differ(self):
        gen = np.random.default_rng(0)
        a = self.src.samples(256, gen)
        b = self.src.samples(256, gen)
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        assert np.allclose(self.src.samples(128, rng=5),
                           self.src.samples(128, rng=5))

    def test_envelope_fluctuates(self):
        # Rayleigh-like envelope: instantaneous power has std ~ mean.
        x = self.src.samples(16384, rng=1)
        p = np.abs(x) ** 2
        assert p.std() > 0.5 * p.mean()

    def test_occupied_bandwidth_near_config(self):
        x = self.src.samples(16384, rng=2)
        bw = occupied_bandwidth(x, 256e3, fraction=0.95)
        assert 120e3 < bw < 240e3

    def test_chip_mean_stability(self):
        # The calibration property: per-chip (128-sample) means vary far
        # less than the raw envelope — the receiver's processing gain.
        x = self.src.samples(128 * 200, rng=3)
        p = (np.abs(x) ** 2).reshape(200, 128).mean(axis=1)
        assert p.std() / p.mean() < 0.1

    def test_zero_count(self):
        assert self.src.samples(0).size == 0

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            self.src.samples(-1)

    def test_rejects_bandwidth_above_fs(self):
        with pytest.raises(ValueError):
            OfdmLikeSource(sample_rate_hz=1e5, bandwidth_hz=2e5)


class TestToneSource:
    def test_constant_envelope(self):
        src = ToneSource(sample_rate_hz=1e5, random_phase=False)
        x = src.samples(1000, rng=0)
        assert np.allclose(np.abs(x), 1.0)

    def test_offset_frequency(self):
        src = ToneSource(sample_rate_hz=1e5, offset_hz=1e4, random_phase=False)
        x = src.samples(4096, rng=0)
        spec = np.abs(np.fft.fft(x))
        peak = np.fft.fftfreq(x.size, 1e-5)[np.argmax(spec)]
        assert peak == pytest.approx(1e4, abs=50)

    def test_random_phase_varies(self):
        src = ToneSource(sample_rate_hz=1e5)
        gen = np.random.default_rng(0)
        assert not np.allclose(src.samples(16, gen), src.samples(16, gen))

    def test_rejects_offset_beyond_nyquist(self):
        with pytest.raises(ValueError):
            ToneSource(sample_rate_hz=1e5, offset_hz=6e4)

    def test_batch_zero_count_consumes_phase_like_scalar(self):
        # The lane-seeding contract: batch_samples must advance each
        # lane's generator exactly as the scalar path would — including
        # the phase draw samples() makes before returning an empty
        # window.
        src = ToneSource(sample_rate_hz=1e5)
        scalar_gen = np.random.default_rng(7)
        batch_gen = np.random.default_rng(7)
        src.samples(0, scalar_gen)
        out = src.batch_samples(0, [batch_gen])
        assert out.shape == (1, 0)
        assert scalar_gen.uniform() == batch_gen.uniform()


class TestFilteredNoiseSource:
    def test_unit_power(self):
        src = FilteredNoiseSource(sample_rate_hz=1e5, coherence_samples=8)
        x = src.samples(8192, rng=0)
        assert np.mean(np.abs(x) ** 2) == pytest.approx(1.0, rel=1e-6)

    def test_coherence_scales_with_kernel(self):
        short = FilteredNoiseSource(sample_rate_hz=1e5, coherence_samples=2)
        long = FilteredNoiseSource(sample_rate_hz=1e5, coherence_samples=32)
        cs = coherence_samples(short.samples(16384, rng=1))
        cl = coherence_samples(long.samples(16384, rng=1))
        assert cl > 4 * cs


class TestMakeSource:
    def test_builds_each_kind(self):
        assert isinstance(make_source("ofdm", 1e5, bandwidth_hz=5e4), OfdmLikeSource)
        assert isinstance(make_source("tone", 1e5), ToneSource)
        assert isinstance(make_source("noise", 1e5), FilteredNoiseSource)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown source"):
            make_source("laser", 1e5)


class TestSpectrumHelpers:
    def test_occupied_bandwidth_of_tone_is_narrow(self):
        src = ToneSource(sample_rate_hz=1e5, random_phase=False)
        bw = occupied_bandwidth(src.samples(4096, rng=0), 1e5)
        assert bw < 1e3

    def test_bandwidth_requires_enough_samples(self):
        with pytest.raises(ValueError):
            occupied_bandwidth(np.ones(4, dtype=complex), 1e5)

    def test_coherence_of_white_noise_is_one(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        assert coherence_samples(x) <= 2

    def test_coherence_threshold_validation(self):
        with pytest.raises(ValueError):
            coherence_samples(np.ones(16, dtype=complex), threshold=1.5)
