"""Path-loss and fading model tests."""

import numpy as np
import pytest

from repro.channel.fading import (
    NoFading,
    RayleighFading,
    RicianFading,
    make_fading,
)
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
)


class TestFreeSpace:
    def test_friis_value(self):
        # At 539 MHz, 1 m: (lambda/4 pi)^2 ~ (0.0443)^2 ~ -27.1 dB.
        g = FreeSpacePathLoss(frequency_hz=539e6).gain(1.0)
        assert 10 * np.log10(g) == pytest.approx(-27.1, abs=0.2)

    def test_inverse_square(self):
        m = FreeSpacePathLoss()
        assert m.gain(2.0) == pytest.approx(m.gain(1.0) / 4.0)

    def test_clamped_below_min_distance(self):
        m = FreeSpacePathLoss(min_distance_m=0.1)
        assert m.gain(0.01) == m.gain(0.1)

    def test_never_exceeds_unity(self):
        m = FreeSpacePathLoss(frequency_hz=1e6, min_distance_m=0.001)
        assert m.gain(0.001) <= 1.0

    def test_amplitude_gain_is_sqrt(self):
        m = FreeSpacePathLoss()
        assert m.amplitude_gain(3.0) == pytest.approx(np.sqrt(m.gain(3.0)))


class TestLogDistance:
    def test_matches_friis_at_reference(self):
        ld = LogDistancePathLoss(exponent=3.0, reference_m=1.0)
        fs = FreeSpacePathLoss()
        assert ld.gain(1.0) == pytest.approx(fs.gain(1.0))

    def test_exponent_slope(self):
        ld = LogDistancePathLoss(exponent=3.0, reference_m=1.0)
        ratio_db = 10 * np.log10(ld.gain(10.0) / ld.gain(1.0))
        assert ratio_db == pytest.approx(-30.0, abs=0.1)

    def test_friis_inside_reference(self):
        ld = LogDistancePathLoss(exponent=3.5, reference_m=2.0)
        fs = FreeSpacePathLoss()
        assert ld.gain(0.5) == pytest.approx(fs.gain(0.5))

    def test_steeper_than_free_space_beyond_reference(self):
        ld = LogDistancePathLoss(exponent=3.5, reference_m=1.0)
        fs = FreeSpacePathLoss()
        assert ld.gain(50.0) < fs.gain(50.0)


class TestTwoRay:
    def test_crossover_distance_formula(self):
        m = TwoRayGroundPathLoss(frequency_hz=539e6, tx_height_m=100.0,
                                 rx_height_m=1.0)
        lam = 3e8 / 539e6
        assert m.crossover_distance() == pytest.approx(
            4 * np.pi * 100.0 / lam, rel=1e-3
        )

    def test_friis_inside_crossover(self):
        m = TwoRayGroundPathLoss()
        fs = FreeSpacePathLoss(min_distance_m=m.min_distance_m)
        d = m.crossover_distance() / 10
        assert m.gain(d) == pytest.approx(fs.gain(d))

    def test_fourth_power_beyond_crossover(self):
        m = TwoRayGroundPathLoss()
        d = m.crossover_distance() * 4
        ratio_db = 10 * np.log10(m.gain(2 * d) / m.gain(d))
        assert ratio_db == pytest.approx(-12.04, abs=0.1)

    def test_continuous_at_crossover(self):
        m = TwoRayGroundPathLoss()
        dc = m.crossover_distance()
        assert m.gain(dc * 0.999) == pytest.approx(m.gain(dc * 1.001), rel=0.02)


class TestFading:
    def test_no_fading_unit_gain(self):
        h = NoFading().sample()
        assert abs(h) == pytest.approx(1.0)

    def test_no_fading_phase(self):
        h = NoFading(phase_rad=np.pi / 2).sample()
        assert h.real == pytest.approx(0.0, abs=1e-12)
        assert h.imag == pytest.approx(1.0)

    def test_rayleigh_unit_mean_power(self):
        hs = RayleighFading().sample_many(20_000, rng=0)
        assert np.mean(np.abs(hs) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rayleigh_zero_mean(self):
        hs = RayleighFading().sample_many(20_000, rng=1)
        assert abs(hs.mean()) < 0.02

    def test_rician_unit_mean_power(self):
        hs = RicianFading(k_factor=4.0).sample_many(20_000, rng=2)
        assert np.mean(np.abs(hs) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rician_k_zero_matches_rayleigh_spread(self):
        hs = RicianFading(k_factor=0.0).sample_many(20_000, rng=3)
        # envelope^2 of Rayleigh is exponential: std/mean = 1.
        p = np.abs(hs) ** 2
        assert p.std() / p.mean() == pytest.approx(1.0, rel=0.1)

    def test_large_k_is_nearly_static(self):
        hs = RicianFading(k_factor=1000.0).sample_many(5000, rng=4)
        assert np.abs(hs).std() < 0.05

    def test_sample_many_matches_scalar_statistics(self):
        gen = np.random.default_rng(5)
        scalar = np.array([RayleighFading().sample(gen) for _ in range(5000)])
        vector = RayleighFading().sample_many(5000, np.random.default_rng(6))
        assert np.mean(np.abs(scalar) ** 2) == pytest.approx(
            np.mean(np.abs(vector) ** 2), rel=0.1
        )

    def test_factory(self):
        assert isinstance(make_fading("static"), NoFading)
        assert isinstance(make_fading("rayleigh"), RayleighFading)
        assert isinstance(make_fading("rician", k_factor=2.0), RicianFading)
        with pytest.raises(ValueError):
            make_fading("nakagami")

    def test_rician_rejects_negative_k(self):
        with pytest.raises(ValueError):
            RicianFading(k_factor=-1.0)
