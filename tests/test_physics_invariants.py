"""Cross-layer physics invariants of the sample-level simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ChannelModel, Scene
from repro.fullduplex.selfinterference import (
    compensate_envelope,
    through_power_waveform,
)
from repro.hardware.reflection import ReflectionStates
from repro.phy import BackscatterReceiver, PhyConfig


class TestFieldSuperposition:
    """The received field is linear in the reflectors."""

    def setup_method(self):
        self.scene = Scene.two_device_line(0.5)
        self.scene.place("carol", 0.2, 0.3)
        self.gains = ChannelModel(noise_power_watt=0.0).realize(
            self.scene, rng=0
        )
        self.ambient = np.exp(
            1j * np.linspace(0, 20 * np.pi, 256)
        )

    def _rx(self, reflections):
        return self.gains.received("bob", self.ambient, reflections,
                                   include_noise=False)

    def test_two_reflectors_superpose(self):
        g_a = np.full(256, 0.5)
        g_c = np.full(256, 0.3)
        together = self._rx({"alice": g_a, "carol": g_c})
        a_only = self._rx({"alice": g_a})
        c_only = self._rx({"carol": g_c})
        direct = self._rx({})
        assert np.allclose(together, a_only + c_only - direct)

    def test_reflection_scales_linearly(self):
        g1 = np.full(256, 0.2)
        g2 = np.full(256, 0.4)
        direct = self._rx({})
        d1 = self._rx({"alice": g1}) - direct
        d2 = self._rx({"alice": g2}) - direct
        assert np.allclose(d2, 2 * d1)

    def test_zero_reflection_is_direct_path(self):
        assert np.allclose(self._rx({"alice": np.zeros(256)}),
                           self._rx({}))


class TestEnvelopeScaleInvariance:
    """Decisions must not depend on absolute signal scale — the receiver
    has no absolute reference (adaptive threshold, differential bits,
    normalised sync)."""

    @given(scale=st.floats(1e-6, 1e6))
    @settings(max_examples=20, deadline=None)
    def test_soft_decode_scale_invariant(self, scale):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        rx = BackscatterReceiver(cfg)
        rng = np.random.default_rng(0)
        soft = 1.0 + 0.2 * rng.standard_normal(64)
        assert np.array_equal(
            rx.soft_decode_bits(soft), rx.soft_decode_bits(soft * scale)
        )

    @given(scale=st.floats(1e-3, 1e3))
    @settings(max_examples=20, deadline=None)
    def test_sync_scale_invariant(self, scale):
        from repro.phy.sync import acquire_frame_start

        cfg = PhyConfig(sample_rate_hz=32_000.0)
        rng = np.random.default_rng(1)
        env = rng.uniform(0.5, 1.5, 4000)
        a = acquire_frame_start(env, cfg)
        b = acquire_frame_start(env * scale, cfg)
        assert a.found == b.found
        assert a.start_sample == b.start_sample
        assert a.peak_correlation == pytest.approx(b.peak_correlation,
                                                   rel=1e-9)


class TestCompensationAlgebra:
    @given(
        pattern=st.lists(st.integers(0, 1), min_size=4, max_size=64),
        level=st.floats(1e-3, 1e3),
    )
    @settings(max_examples=50, deadline=None)
    def test_compensation_inverts_gating_exactly(self, pattern, level):
        states = ReflectionStates()
        chips = np.asarray(pattern, dtype=np.uint8)
        field = np.full(chips.size, level)
        gated = field * through_power_waveform(chips, states)
        restored = compensate_envelope(gated, chips, states)
        assert np.allclose(restored, field)

    @given(pattern=st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_through_power_bounded(self, pattern):
        states = ReflectionStates()
        tp = through_power_waveform(np.asarray(pattern, dtype=np.uint8),
                                    states)
        assert np.all(tp > 0)
        assert np.all(tp <= 1.0)


class TestEnergyConservation:
    """Reflected + through power never exceeds the incident power."""

    @given(
        absorb=st.floats(0.0, 0.3),
        reflect=st.floats(0.4, 1.0),
        efficiency=st.floats(0.1, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_reflection_state_power_split(self, absorb, reflect, efficiency):
        states = ReflectionStates(absorb_gamma=absorb,
                                  reflect_gamma=reflect,
                                  efficiency=efficiency)
        for chip in (0, 1):
            reflected = states.gamma_for(chip) ** 2
            through = states.through_for(chip) ** 2
            assert reflected + through <= 1.0 + 1e-12

    def test_harvest_never_exceeds_incident(self):
        from repro.hardware.harvester import EnergyHarvester

        h = EnergyHarvester(efficiency=1.0, sensitivity_watt=0.0)
        rng = np.random.default_rng(2)
        power = rng.uniform(0, 1e-4, 1000)
        harvested = h.harvested_power(power)
        assert np.all(harvested <= power + 1e-18)
