"""Filter tests: moving average, IIR smoothing, integrate-and-dump."""

import numpy as np
import pytest

from repro.dsp.filters import (
    alpha_for_time_constant,
    decimate_mean,
    integrate_and_dump,
    moving_average,
    single_pole_lowpass,
)


class TestMovingAverage:
    def test_constant_input_is_identity(self):
        x = np.full(100, 3.5)
        assert np.allclose(moving_average(x, 7), 3.5)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(50)
        w = 6
        out = moving_average(x, w)
        for n in range(x.size):
            lo = max(0, n - w + 1)
            assert out[n] == pytest.approx(x[lo : n + 1].mean())

    def test_window_one_is_identity(self):
        x = np.arange(10.0)
        assert np.array_equal(moving_average(x, 1), x)

    def test_window_longer_than_input(self):
        x = np.array([2.0, 4.0])
        out = moving_average(x, 10)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(3.0)

    def test_empty_input(self):
        assert moving_average(np.empty(0), 4).size == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((2, 2, 2)), 1)

    def test_batch_rows_match_scalar(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 37))
        out = moving_average(x, 5)
        for row in range(x.shape[0]):
            assert np.array_equal(out[row], moving_average(x[row], 5))

    def test_step_tracking(self):
        # After a level step, the average reaches the new level within
        # one window — the property the adaptive threshold relies on.
        x = np.concatenate([np.zeros(50), np.ones(50)])
        out = moving_average(x, 10)
        assert out[49] == pytest.approx(0.0)
        assert out[59] == pytest.approx(1.0)


class TestSinglePoleLowpass:
    def test_starts_at_first_sample(self):
        x = np.array([5.0, 5.0, 5.0])
        out = single_pole_lowpass(x, 0.1)
        assert out[0] == pytest.approx(5.0)

    def test_constant_passthrough(self):
        x = np.full(64, 2.0)
        assert np.allclose(single_pole_lowpass(x, 0.25), 2.0)

    def test_alpha_one_is_identity(self):
        x = np.random.default_rng(1).standard_normal(32)
        assert np.allclose(single_pole_lowpass(x, 1.0), x)

    def test_recursion_definition(self):
        x = np.array([1.0, 0.0, 0.0, 0.0])
        alpha = 0.5
        out = single_pole_lowpass(x, alpha)
        expected = [1.0]
        for v in x[1:]:
            expected.append(0.5 * expected[-1] + 0.5 * v)
        assert np.allclose(out, expected)

    def test_smooths_noise(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(10_000)
        out = single_pole_lowpass(x, 0.05)
        assert out[100:].std() < 0.3 * x.std()

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            single_pole_lowpass(np.ones(4), alpha)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            single_pole_lowpass(np.ones((2, 2, 2)), 0.5)

    def test_batch_rows_match_scalar(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((3, 64))
        out = single_pole_lowpass(x, 0.2)
        for row in range(x.shape[0]):
            assert np.array_equal(out[row], single_pole_lowpass(x[row], 0.2))


class TestAlphaForTimeConstant:
    def test_in_unit_interval(self):
        a = alpha_for_time_constant(1e-3, 1e5)
        assert 0.0 < a < 1.0

    def test_small_alpha_approximation(self):
        # For tau*fs >> 1, alpha ~ 1/(tau*fs).
        a = alpha_for_time_constant(1.0, 1e6)
        assert a == pytest.approx(1e-6, rel=1e-3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            alpha_for_time_constant(0.0, 1e5)
        with pytest.raises(ValueError):
            alpha_for_time_constant(1e-3, 0.0)


class TestIntegrateAndDump:
    def test_block_means(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.allclose(integrate_and_dump(x, 2), [2.0, 6.0])

    def test_discards_trailing_remainder(self):
        x = np.arange(7.0)
        assert integrate_and_dump(x, 3).size == 2

    def test_period_one_identity(self):
        x = np.arange(5.0)
        assert np.array_equal(integrate_and_dump(x, 1), x)

    def test_short_input_gives_empty(self):
        assert integrate_and_dump(np.ones(3), 5).size == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            integrate_and_dump(np.ones(4), 0)

    def test_decimate_mean_alias(self):
        x = np.arange(8.0)
        assert np.array_equal(decimate_mean(x, 4), integrate_and_dump(x, 4))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            integrate_and_dump(np.ones((2, 2, 2)), 1)

    def test_batch_rows_match_scalar(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((3, 23))
        out = integrate_and_dump(x, 4)
        assert out.shape == (3, 5)
        for row in range(x.shape[0]):
            assert np.array_equal(out[row], integrate_and_dump(x[row], 4))
