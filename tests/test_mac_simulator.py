"""Network-simulator tests: policies, metrics and the paper's
protocol-level claims."""

import pytest

from repro.mac.arq import HalfDuplexArqPolicy, NoArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.metrics import NetworkMetrics, NodeMetrics
from repro.mac.node import run_policy_comparison, standard_policies
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss


def _run(policy_factory, **overrides):
    defaults = dict(num_links=1, arrival_rate_pps=0.5, horizon_seconds=120.0,
                    payload_bytes=32)
    defaults.update(overrides)
    cfg = SimulationConfig(**defaults)
    sim = NetworkSimulator(config=cfg, policy_factory=policy_factory)
    return cfg, sim.run(rng=0)


class TestLossFreeSingleLink:
    """With one link and no loss, every policy must deliver everything."""

    @pytest.mark.parametrize("factory", [
        NoArqPolicy,
        HalfDuplexArqPolicy,
        FullDuplexAbortPolicy,
    ])
    def test_full_delivery(self, factory):
        cfg, metrics = _run(factory)
        node = metrics.nodes[0]
        assert node.offered_packets > 20
        assert node.delivered_packets == node.offered_packets
        assert node.failed_packets == 0
        assert node.attempts == node.offered_packets

    def test_no_aborts_without_corruption(self):
        _, metrics = _run(FullDuplexAbortPolicy)
        assert metrics.abort_fraction == 0.0

    def test_goodput_matches_offered_load(self):
        cfg, metrics = _run(NoArqPolicy)
        offered = metrics.nodes[0].offered_packets
        offered_bps = offered * cfg.payload_bits / cfg.horizon_seconds
        assert metrics.goodput_bps == pytest.approx(offered_bps, rel=1e-6)


class TestLossySingleLink:
    def test_arq_recovers_what_noarq_loses(self):
        loss = BernoulliLoss(0.3)
        _, no_arq = _run(NoArqPolicy, loss=loss)
        _, hd = _run(HalfDuplexArqPolicy, loss=loss)
        _, fd = _run(FullDuplexAbortPolicy, loss=loss)
        assert no_arq.delivery_ratio < 0.85
        assert hd.delivery_ratio > 0.95
        assert fd.delivery_ratio > 0.95

    def test_fd_spends_less_energy_than_hd(self):
        loss = BernoulliLoss(0.3)
        _, hd = _run(HalfDuplexArqPolicy, loss=loss)
        _, fd = _run(FullDuplexAbortPolicy, loss=loss)
        assert fd.energy_per_delivered_bit < hd.energy_per_delivered_bit

    def test_fd_aborts_on_losses(self):
        _, fd = _run(FullDuplexAbortPolicy, loss=BernoulliLoss(0.4))
        assert fd.abort_fraction > 0.1

    def test_fd_latency_beats_hd(self):
        loss = BernoulliLoss(0.3)
        _, hd = _run(HalfDuplexArqPolicy, loss=loss)
        _, fd = _run(FullDuplexAbortPolicy, loss=loss)
        assert (fd.nodes[0].mean_latency_seconds
                < hd.nodes[0].mean_latency_seconds)


class TestContention:
    def test_collisions_reduce_delivery(self):
        _, light = _run(NoArqPolicy, num_links=2, arrival_rate_pps=0.1,
                        horizon_seconds=200.0)
        _, heavy = _run(NoArqPolicy, num_links=10, arrival_rate_pps=1.0,
                        horizon_seconds=200.0)
        assert heavy.delivery_ratio < light.delivery_ratio

    def test_fd_beats_hd_under_contention(self):
        kwargs = dict(num_links=8, arrival_rate_pps=0.3,
                      horizon_seconds=200.0, loss=BernoulliLoss(0.05))
        _, hd = _run(HalfDuplexArqPolicy, **kwargs)
        _, fd = _run(FullDuplexAbortPolicy, **kwargs)
        assert fd.goodput_bps > hd.goodput_bps
        assert fd.energy_per_delivered_bit < hd.energy_per_delivered_bit

    def test_abort_reduces_airtime(self):
        kwargs = dict(num_links=8, arrival_rate_pps=0.3,
                      horizon_seconds=200.0, loss=BernoulliLoss(0.05))
        _, hd = _run(HalfDuplexArqPolicy, **kwargs)
        _, fd = _run(FullDuplexAbortPolicy, **kwargs)
        hd_bits = sum(n.bits_transmitted for n in hd.nodes)
        fd_bits = sum(n.bits_transmitted for n in fd.nodes)
        # FD sends no ACK packets and aborts doomed packets.
        assert fd_bits < hd_bits


class TestMetricsObjects:
    def test_node_metrics_derived_values(self):
        n = NodeMetrics(offered_packets=10, delivered_packets=8,
                        payload_bits_delivered=4096,
                        tx_energy_joule=4e-6, rx_energy_joule=4e-6,
                        latency_sum_seconds=4.0)
        assert n.delivery_ratio == pytest.approx(0.8)
        assert n.mean_latency_seconds == pytest.approx(0.5)
        assert n.energy_per_delivered_bit == pytest.approx(8e-6 / 4096)

    def test_zero_division_guards(self):
        n = NodeMetrics()
        assert n.delivery_ratio == 0.0
        assert n.mean_latency_seconds == 0.0
        assert n.energy_per_delivered_bit == 0.0
        n.tx_energy_joule = 1.0
        assert n.energy_per_delivered_bit == float("inf")

    def test_network_aggregation(self):
        net = NetworkMetrics(
            nodes=[
                NodeMetrics(offered_packets=4, delivered_packets=4,
                            payload_bits_delivered=1000, attempts=4),
                NodeMetrics(offered_packets=6, delivered_packets=3,
                            payload_bits_delivered=500, attempts=6,
                            aborted_attempts=3),
            ],
            duration_seconds=10.0,
        )
        assert net.goodput_bps == pytest.approx(150.0)
        assert net.delivery_ratio == pytest.approx(0.7)
        assert net.abort_fraction == pytest.approx(0.3)

    def test_jain_fairness(self):
        equal = NetworkMetrics(nodes=[
            NodeMetrics(payload_bits_delivered=100),
            NodeMetrics(payload_bits_delivered=100),
        ])
        skewed = NetworkMetrics(nodes=[
            NodeMetrics(payload_bits_delivered=200),
            NodeMetrics(payload_bits_delivered=0),
        ])
        assert equal.jain_fairness() == pytest.approx(1.0)
        assert skewed.jain_fairness() == pytest.approx(0.5)


class TestPolicies:
    def test_standard_policies_names(self):
        policies = standard_policies()
        assert list(policies) == ["no-arq", "hd-arq", "fd-abort"]

    def test_run_policy_comparison_is_paired(self):
        cfg = SimulationConfig(num_links=2, arrival_rate_pps=0.2,
                               horizon_seconds=60.0)
        a = run_policy_comparison(cfg, seed=5)
        b = run_policy_comparison(cfg, seed=5)
        for name in a:
            assert a[name].goodput_bps == b[name].goodput_bps

    def test_fd_abort_bit_granularity(self):
        p = FullDuplexAbortPolicy(asymmetry_ratio=32,
                                  detection_latency_bits=4)
        assert p.abort_bit(0, 1000) == 64
        assert p.abort_bit(31, 1000) == 96
        assert p.abort_bit(990, 1000) is None

    def test_hd_exchange_accounting(self):
        p = HalfDuplexArqPolicy(ack_bits=45, turnaround_bits=8,
                                timeout_guard_bits=8)
        assert p.exchange_bits(512) == 512 + 8 + 45
        assert p.timeout_bits(512) == 512 + 8 + 45 + 8

    def test_feedback_slots(self):
        p = FullDuplexAbortPolicy(asymmetry_ratio=64)
        assert p.feedback_slots(640) == 10
        assert NoArqPolicy().feedback_slots(640) == 0


class TestAttemptStateIsolation:
    """Regression: `_LinkRuntime` used to stash undeclared `_attempt` /
    `_hooks` attributes in `_start_attempt`, so hooks could outlive the
    attempt they were bound to.  Policies must always be called with
    hooks whose `attempt` is the attempt the event was raised for, and
    no hooks may leak across packets."""

    class _RecordingPolicy(FullDuplexAbortPolicy):
        def __init__(self):
            super().__init__()
            self.mismatches = 0
            self.corruptions = 0
            self.data_ends = 0

        def on_corruption(self, hooks, attempt):
            self.corruptions += 1
            if hooks.attempt is not attempt:
                self.mismatches += 1
            super().on_corruption(hooks, attempt)

        def on_data_end(self, hooks, attempt):
            self.data_ends += 1
            if hooks.attempt is not attempt:
                self.mismatches += 1
            super().on_data_end(hooks, attempt)

    def test_hooks_always_bound_to_their_attempt(self):
        policies = []

        def factory():
            policies.append(self._RecordingPolicy())
            return policies[-1]

        cfg = SimulationConfig(num_links=2, arrival_rate_pps=0.8,
                               horizon_seconds=60.0, payload_bytes=32,
                               loss=BernoulliLoss(0.6))
        sim = NetworkSimulator(config=cfg, policy_factory=factory)
        sim.run(rng=0)
        assert sum(p.corruptions for p in policies) > 10  # retries happened
        assert sum(p.data_ends for p in policies) > 10
        assert all(p.mismatches == 0 for p in policies)

    def test_back_to_back_packets_reset_attempt_state(self):
        # Certain loss: every packet burns its full retry budget, then
        # the next queued packet must start from a clean attempt slate.
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.4,
                               horizon_seconds=80.0, payload_bytes=32,
                               loss=BernoulliLoss(1.0))
        sim = NetworkSimulator(
            config=cfg,
            policy_factory=lambda: HalfDuplexArqPolicy(max_retries=2),
        )
        metrics = sim.run(rng=2)
        node = metrics.nodes[0]
        assert node.offered_packets > 5
        # 1 initial + 2 retries per packet — any cross-packet leak of
        # attempt or retry state would break this exact count.
        assert node.attempts == 3 * node.offered_packets
        # No hooks survive past the last packet of any link.
        assert all(link._hooks is None for link in sim.links)


class TestLoadAsymmetry:
    def test_rates_uniform_by_default(self):
        cfg = SimulationConfig(num_links=4, arrival_rate_pps=0.5)
        assert cfg.link_arrival_rates() == [0.5] * 4

    def test_rates_spread_and_mean_preserved(self):
        cfg = SimulationConfig(num_links=6, arrival_rate_pps=0.3,
                               load_asymmetry=4.0)
        rates = cfg.link_arrival_rates()
        assert max(rates) / min(rates) == pytest.approx(4.0)
        assert sum(rates) / 6 == pytest.approx(0.3)
        assert rates == sorted(rates)

    def test_single_link_ignores_asymmetry(self):
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.5,
                               load_asymmetry=8.0)
        assert cfg.link_arrival_rates() == [0.5]

    def test_rejects_sub_unit_asymmetry(self):
        with pytest.raises(ValueError):
            SimulationConfig(load_asymmetry=0.5)

    def test_asymmetry_one_is_bitwise_identical(self):
        cfg_a = SimulationConfig(num_links=3, arrival_rate_pps=0.4,
                                 horizon_seconds=50.0)
        cfg_b = SimulationConfig(num_links=3, arrival_rate_pps=0.4,
                                 horizon_seconds=50.0, load_asymmetry=1.0)
        a = NetworkSimulator(config=cfg_a, policy_factory=NoArqPolicy).run(rng=7)
        b = NetworkSimulator(config=cfg_b, policy_factory=NoArqPolicy).run(rng=7)
        assert a == b

    def test_skewed_load_lowers_fairness(self):
        base = dict(num_links=6, arrival_rate_pps=0.5,
                    horizon_seconds=120.0, payload_bytes=32)
        even = SimulationConfig(**base)
        skewed = SimulationConfig(**base, load_asymmetry=16.0)
        m_even = NetworkSimulator(config=even,
                                  policy_factory=NoArqPolicy).run(rng=0)
        m_skew = NetworkSimulator(config=skewed,
                                  policy_factory=NoArqPolicy).run(rng=0)
        assert m_skew.jain_fairness() < m_even.jain_fairness()
