"""Edge-case behaviour of the network simulator and policies."""

import numpy as np
import pytest

from repro.hardware.energy import EnergyModel
from repro.mac.arq import HalfDuplexArqPolicy, NoArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss


def _run(factory, **overrides):
    defaults = dict(num_links=1, arrival_rate_pps=0.5,
                    horizon_seconds=100.0, payload_bytes=32)
    defaults.update(overrides)
    cfg = SimulationConfig(**defaults)
    sim = NetworkSimulator(config=cfg, policy_factory=factory)
    return cfg, sim.run(rng=1)


class TestRetryExhaustion:
    def test_certain_loss_exhausts_retries(self):
        cfg, m = _run(lambda: HalfDuplexArqPolicy(max_retries=3),
                      loss=BernoulliLoss(1.0), arrival_rate_pps=0.1)
        node = m.nodes[0]
        assert node.delivered_packets == 0
        assert node.failed_packets == node.offered_packets
        # 1 initial + 3 retries per packet.
        assert node.attempts == 4 * node.offered_packets

    def test_zero_retries_single_attempt(self):
        cfg, m = _run(lambda: FullDuplexAbortPolicy(max_retries=0),
                      loss=BernoulliLoss(0.5))
        node = m.nodes[0]
        assert node.attempts == node.offered_packets
        assert 0 < node.delivered_packets < node.offered_packets


class TestQueueing:
    def test_all_arrivals_eventually_handled(self):
        # High arrival rate, fast link -> queueing, but nothing lost.
        cfg, m = _run(NoArqPolicy, arrival_rate_pps=1.2,
                      horizon_seconds=120.0)
        node = m.nodes[0]
        assert node.offered_packets > 100
        assert (node.delivered_packets + node.failed_packets
                == node.offered_packets)

    def test_latency_includes_queueing(self):
        _, light = _run(HalfDuplexArqPolicy, arrival_rate_pps=0.05,
                        horizon_seconds=400.0)
        _, heavy = _run(HalfDuplexArqPolicy, arrival_rate_pps=1.5,
                        horizon_seconds=400.0)
        assert (heavy.nodes[0].mean_latency_seconds
                > light.nodes[0].mean_latency_seconds)


class TestEnergyAccounting:
    def test_idle_energy_charged(self):
        energy = EnergyModel(idle_second_joule=1e-9)
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.01,
                               horizon_seconds=100.0, payload_bytes=32)
        sim = NetworkSimulator(config=cfg, policy_factory=NoArqPolicy,
                               energy=energy)
        m = sim.run(rng=2)
        # Nearly idle link: ~100 s of leakage on each side.
        assert m.nodes[0].tx_energy_joule >= 0.9 * 100e-9

    def test_fd_receiver_pays_feedback_energy(self):
        energy = EnergyModel(feedback_bit_joule=1e-6)  # exaggerated
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.3,
                               horizon_seconds=60.0, payload_bytes=64)
        hd = NetworkSimulator(config=cfg, policy_factory=HalfDuplexArqPolicy,
                              energy=energy).run(rng=3)
        fd = NetworkSimulator(config=cfg, policy_factory=FullDuplexAbortPolicy,
                              energy=energy).run(rng=3)
        # With absurd feedback cost, FD's rx side must be pricier.
        assert fd.nodes[0].rx_energy_joule > hd.nodes[0].rx_energy_joule


class TestAckPathology:
    def test_ack_loss_causes_duplicate_attempts(self):
        # With heavy loss the ACK also dies sometimes: the transmitter
        # retries packets that were actually delivered, so attempts far
        # exceed completed packets (duplicates + retries); a saturated
        # link may also leave arrivals queued at the horizon.
        cfg, m = _run(HalfDuplexArqPolicy, loss=BernoulliLoss(0.4),
                      horizon_seconds=300.0)
        node = m.nodes[0]
        completed = node.delivered_packets + node.failed_packets
        assert completed <= node.offered_packets
        assert node.attempts > 1.5 * completed
        # ARQ still delivers nearly every packet it finished working on.
        assert node.delivered_packets > 0.9 * completed

    def test_delivered_counted_once_despite_duplicates(self):
        cfg, m = _run(HalfDuplexArqPolicy, loss=BernoulliLoss(0.5),
                      horizon_seconds=300.0)
        node = m.nodes[0]
        assert node.delivered_packets <= node.offered_packets
        assert node.payload_bits_delivered == (
            node.delivered_packets * cfg.payload_bits
        )


class TestMultiLinkFairness:
    def test_identical_links_share_fairly(self):
        cfg = SimulationConfig(num_links=6, arrival_rate_pps=0.3,
                               horizon_seconds=300.0, payload_bytes=32,
                               loss=BernoulliLoss(0.05))
        sim = NetworkSimulator(config=cfg,
                               policy_factory=FullDuplexAbortPolicy)
        m = sim.run(rng=4)
        assert m.jain_fairness() > 0.9


class TestBackoff:
    def test_backoff_window_grows(self):
        policy = HalfDuplexArqPolicy()
        rng = np.random.default_rng(0)
        early = [policy.backoff_seconds(1, 0.5, rng) for _ in range(200)]
        late = [policy.backoff_seconds(5, 0.5, rng) for _ in range(200)]
        assert max(late) > max(early)
        assert np.mean(late) > np.mean(early)

    def test_backoff_non_negative(self):
        policy = FullDuplexAbortPolicy()
        rng = np.random.default_rng(1)
        assert all(policy.backoff_seconds(k, 0.5, rng) >= 0
                   for k in range(8))

    def test_rejects_negative_retry_index(self):
        with pytest.raises(ValueError):
            NoArqPolicy().backoff_seconds(-1, 0.5, np.random.default_rng(0))


class TestConfigValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_links=0)
        with pytest.raises(ValueError):
            SimulationConfig(arrival_rate_pps=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(payload_bytes=0)

    def test_derived_quantities(self):
        cfg = SimulationConfig(payload_bytes=64, overhead_bits=45,
                               bit_rate_bps=1000.0)
        assert cfg.payload_bits == 512
        assert cfg.packet_bits == 557
        assert cfg.packet_seconds == pytest.approx(0.557)
