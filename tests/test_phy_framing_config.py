"""Frame build/parse and PHY-config tests."""

import numpy as np
import pytest

from repro.phy.config import PhyConfig
from repro.phy.framing import (
    Frame,
    body_bits_for_payload,
    build_frame,
    build_frame_chips,
    frame_body_bits,
    parse_frame,
    random_frame,
)
from repro.phy.preamble import (
    BARKER13_BITS,
    default_preamble_bits,
    preamble_template,
    warmup_bits,
)


class TestPreamble:
    def test_warmup_alternates(self):
        assert np.array_equal(warmup_bits(4), [1, 0, 1, 0])

    def test_default_preamble_layout(self):
        pre = default_preamble_bits(warmup=6)
        assert pre.size == 6 + 13
        assert np.array_equal(pre[6:], BARKER13_BITS)

    def test_template_is_line_coded(self):
        tpl = preamble_template("manchester", warmup=4)
        assert tpl.size == 2 * (4 + 13)

    def test_barker_autocorrelation_sidelobes(self):
        seq = BARKER13_BITS.astype(int) * 2 - 1
        full = np.correlate(seq, seq, "full")
        peak = full[len(seq) - 1]
        sidelobes = np.delete(full, len(seq) - 1)
        assert peak == 13
        assert np.max(np.abs(sidelobes)) <= 1


class TestFrame:
    def test_rejects_non_byte_payload(self):
        with pytest.raises(ValueError):
            Frame(payload_bits=np.ones(7, dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Frame(payload_bits=np.full(8, 2, dtype=np.uint8))

    def test_payload_bytes(self):
        f = Frame(payload_bits=np.zeros(24, dtype=np.uint8))
        assert f.payload_bytes == 3

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            Frame(payload_bits=np.zeros(8 * 256, dtype=np.uint8))


class TestBuildParse:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for size in (0, 1, 16, 255):
            frame = random_frame(size, rng)
            body = frame_body_bits(frame)
            parsed, ok = parse_frame(body)
            assert ok
            assert np.array_equal(parsed.payload_bits, frame.payload_bits)

    def test_body_length_formula(self):
        frame = random_frame(16, rng=1)
        assert frame_body_bits(frame).size == body_bits_for_payload(16)

    def test_full_frame_includes_preamble(self):
        frame = random_frame(4, rng=2)
        bits = build_frame(frame, warmup=8)
        assert bits.size == (8 + 13) + body_bits_for_payload(4)

    def test_chip_stream_length(self):
        frame = random_frame(4, rng=3)
        chips = build_frame_chips(frame, "manchester", warmup=8)
        assert chips.size == 2 * build_frame(frame, warmup=8).size

    def test_parse_detects_corruption(self):
        frame = random_frame(8, rng=4)
        body = frame_body_bits(frame)
        body[12] ^= 1
        _, ok = parse_frame(body)
        assert not ok

    def test_parse_short_stream(self):
        parsed, ok = parse_frame(np.ones(10, dtype=np.uint8))
        assert parsed is None and not ok

    def test_parse_length_field_beyond_stream(self):
        # Claim a 255-byte payload but supply almost nothing after it.
        body = np.concatenate([
            np.ones(8, dtype=np.uint8),  # length = 255
            np.zeros(40, dtype=np.uint8),
        ])
        parsed, ok = parse_frame(body)
        assert parsed is None and not ok

    def test_parse_ignores_trailing_bits(self):
        frame = random_frame(4, rng=5)
        body = np.concatenate([frame_body_bits(frame),
                               np.ones(13, dtype=np.uint8)])
        parsed, ok = parse_frame(body)
        assert ok and np.array_equal(parsed.payload_bits, frame.payload_bits)

    def test_random_frame_bounds(self):
        with pytest.raises(ValueError):
            random_frame(256)


class TestPhyConfig:
    def test_default_derived_quantities(self):
        cfg = PhyConfig()
        assert cfg.chips_per_bit == 2
        assert cfg.chip_rate_hz == pytest.approx(2000.0)
        assert cfg.samples_per_chip == 128
        assert cfg.samples_per_bit == 256
        assert cfg.bit_period_s == pytest.approx(1e-3)

    def test_threshold_window_samples(self):
        cfg = PhyConfig(threshold_window_bits=4)
        assert cfg.threshold_window_samples == 4 * cfg.samples_per_bit

    def test_nrz_has_one_chip_per_bit(self):
        cfg = PhyConfig(coding="nrz")
        assert cfg.chips_per_bit == 1

    def test_rejects_non_integer_ratio(self):
        with pytest.raises(ValueError):
            PhyConfig(sample_rate_hz=250_001.0)

    def test_rejects_too_few_samples_per_chip(self):
        with pytest.raises(ValueError):
            PhyConfig(sample_rate_hz=4_000.0)  # 2 samples/chip

    def test_rejects_unknown_coding(self):
        with pytest.raises(ValueError):
            PhyConfig(coding="plaid")

    def test_with_bit_rate(self):
        cfg = PhyConfig().with_bit_rate(2_000.0)
        assert cfg.bit_rate_bps == 2_000.0
        assert cfg.samples_per_chip == 64

    def test_detector_delay(self):
        cfg = PhyConfig(smoothing_fraction_of_chip=0.125)
        assert cfg.detector_delay_samples == 16

    def test_rejects_small_warmup(self):
        with pytest.raises(ValueError):
            PhyConfig(warmup_bits=1)
