"""Cross-layer integration tests: the claims the benchmarks rely on,
verified at reduced scale."""

import numpy as np
import pytest

from repro.ambient import OfdmLikeSource
from repro.analysis.ber import (
    measure_feedback_ber,
    measure_forward_ber,
    measure_frame_delivery,
)
from repro.channel import ChannelModel, RayleighFading, Scene
from repro.fullduplex import FullDuplexConfig, FullDuplexLink
from repro.fullduplex.collision import MarginCollapseDetector
from repro.phy import BackscatterReceiver, BackscatterTransmitter
from repro.utils.rng import random_bits

pytestmark = pytest.mark.integration


def _make_link(asymmetry_ratio=64, self_compensation=True):
    cfg = FullDuplexConfig(asymmetry_ratio=asymmetry_ratio,
                           self_compensation=self_compensation)
    src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                         bandwidth_hz=200e3)
    return cfg, FullDuplexLink(cfg, src)


class TestBerVsDistanceShape:
    """BER must rise monotonically (statistically) with distance — the
    F1/F2 curve shape."""

    def test_forward_ber_rises_with_distance(self):
        _, link = _make_link()
        channel = ChannelModel()
        near = measure_forward_ber(
            link, channel, Scene.two_device_line(0.5),
            bits_per_trial=128, max_trials=6, min_trials=6, rng=0,
        )
        far = measure_forward_ber(
            link, channel, Scene.two_device_line(5.0),
            bits_per_trial=128, max_trials=6, min_trials=6, rng=0,
        )
        assert near.rate == 0.0
        assert far.rate > 0.01

    def test_feedback_survives_where_data_does(self):
        _, link = _make_link()
        channel = ChannelModel()
        fb = measure_feedback_ber(
            link, channel, Scene.two_device_line(2.0),
            bits_per_trial=256, max_trials=5, min_trials=5, rng=1,
        )
        assert fb.rate == 0.0  # r=64 averaging gain


class TestFrameDelivery:
    def test_delivery_collapses_with_distance(self):
        _, link = _make_link()
        channel = ChannelModel()
        near = measure_frame_delivery(
            link, channel, Scene.two_device_line(0.5),
            payload_bytes=8, trials=5, rng=2,
        )
        far = measure_frame_delivery(
            link, channel, Scene.two_device_line(8.0),
            payload_bytes=8, trials=5, rng=2,
        )
        assert near.rate == 0.0  # all delivered
        assert far.rate == 1.0  # none delivered

    def test_rayleigh_fading_degrades_delivery(self):
        _, link = _make_link()
        static = ChannelModel()
        faded = ChannelModel(device_fading=RayleighFading())
        scene = Scene.two_device_line(1.5)
        d_static = measure_frame_delivery(link, static, scene,
                                          payload_bytes=8, trials=8, rng=3)
        d_faded = measure_frame_delivery(link, faded, scene,
                                         payload_bytes=8, trials=8, rng=3)
        assert d_faded.rate >= d_static.rate


class TestAsymmetryTradeoff:
    """F3: larger r → more feedback averaging gain, fewer feedback bits."""

    def test_feedback_error_free_across_ratios(self):
        channel = ChannelModel()
        scene = Scene.two_device_line(1.0)
        for r in (16, 64):
            _, link = _make_link(asymmetry_ratio=r)
            est = measure_feedback_ber(
                link, channel, scene, bits_per_trial=256,
                max_trials=4, min_trials=4, rng=4,
            )
            assert est.rate == 0.0, r

    def test_small_ratio_without_compensation_hurts_more(self):
        channel = ChannelModel()
        scene = Scene.two_device_line(0.5)
        rates = {}
        for r in (8, 64):
            _, link = _make_link(asymmetry_ratio=r, self_compensation=False)
            est = measure_forward_ber(
                link, channel, scene, bits_per_trial=256,
                max_trials=6, min_trials=6, rng=5,
            )
            rates[r] = est.rate
        # More feedback edges per data bit at small r -> larger residual.
        assert rates[8] > rates[64]


class TestInReceptionCollisionDetection:
    """A colliding third tag must be detectable mid-packet from the
    decision margins — the mechanism behind early abort."""

    def _margins_with_collision(self, collide: bool, rng_seed: int = 0):
        cfg = FullDuplexConfig()
        phy = cfg.phy
        src = OfdmLikeSource(sample_rate_hz=phy.sample_rate_hz,
                             bandwidth_hz=200e3)
        rng = np.random.default_rng(rng_seed)
        scene = Scene.two_device_line(0.5)
        scene.place("carol", 0.3, 0.4)
        gains = ChannelModel().realize(scene, rng)

        bits = random_bits(rng, 192)
        tx = BackscatterTransmitter(phy)
        wf = tx.transmit_bits(bits)
        n = wf.num_samples
        reflections = {"alice": wf.reflection_waveform}
        if collide:
            # carol starts backscattering one third into the packet.
            collider_bits = random_bits(rng, 192)
            cw = BackscatterTransmitter(phy).transmit_bits(collider_bits)
            gamma_c = np.zeros(n)
            start = n // 3
            seg = cw.reflection_waveform[: n - start]
            gamma_c[start : start + seg.size] = seg
            reflections["carol"] = gamma_c
        ambient = src.samples(n, rng)
        incident = gains.received("bob", ambient, reflections, rng=rng)
        rx = BackscatterReceiver(phy)
        env = rx.envelope(incident)
        # 190 of the 192 bits: the detector delay shifts the usable span.
        soft = rx.soft_chips(env, phy.detector_delay_samples, 190 * 2)
        assert soft.size == 190 * 2
        # Manchester margins: half-difference per bit.
        return soft[0::2] - soft[1::2]

    def test_clean_reception_not_flagged(self):
        margins = self._margins_with_collision(collide=False)
        verdict = MarginCollapseDetector().run(np.abs(margins))
        assert not verdict.detected

    def test_collision_detected_near_its_onset(self):
        margins = self._margins_with_collision(collide=True)
        verdict = MarginCollapseDetector().run(np.abs(margins))
        assert verdict.detected
        # Onset at bit 64 (one third of 192); detection shortly after.
        assert 64 <= verdict.detection_bit <= 110


class TestEnergyHarvestDuringExchange:
    def test_receiver_harvests_more_when_absorbing(self):
        cfg, link = _make_link()
        channel = ChannelModel()
        scene = Scene.two_device_line(0.5)
        rng = np.random.default_rng(6)
        from repro.phy.framing import random_frame

        frame = random_frame(16, rng)
        gains = channel.realize(scene, rng)
        with_fb = link.run(gains, frame, random_bits(rng, 8),
                           rng=np.random.default_rng(7))
        without_fb = link.run(gains, frame, random_bits(rng, 8),
                              rng=np.random.default_rng(7),
                              feedback_enabled=False)
        # Backscattering feedback diverts power from B's harvester.
        assert without_fb.harvested_b_joule >= with_fb.harvested_b_joule
