"""Energy-neutral duty-cycle controller tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.dutycycle import (
    EnergyNeutralController,
    sustainable_packet_rate,
)


def _controller(**kwargs):
    defaults = dict(capacity_joule=4e-7, reserve_joule=5e-8,
                    store_joule=0.0)
    defaults.update(kwargs)
    return EnergyNeutralController(**defaults)


class TestAdmission:
    def test_empty_store_defers(self):
        ctrl = _controller()
        assert not ctrl.admit(1e-8)
        assert ctrl.deferred_ops == 1

    def test_admission_debits_store(self):
        ctrl = _controller(store_joule=2e-7)
        assert ctrl.admit(1e-7)
        assert ctrl.store_joule == pytest.approx(1e-7)
        assert ctrl.admitted_ops == 1

    def test_reserve_is_respected(self):
        ctrl = _controller(store_joule=1.4e-7, reserve_joule=5e-8)
        # 1.4e-7 - 1e-7 = 4e-8 < reserve -> refuse.
        assert not ctrl.admit(1e-7)
        # 1.4e-7 - 9e-8 = 5e-8 == reserve -> allow.
        assert ctrl.admit(9e-8)

    def test_deferral_ratio(self):
        ctrl = _controller(store_joule=2e-7)
        ctrl.admit(1e-7)      # ok
        ctrl.admit(1e-7)      # refused (store 1e-7, reserve 5e-8)
        assert ctrl.deferral_ratio == pytest.approx(0.5)


class TestHarvestAccumulation:
    def test_harvest_clips_at_capacity(self):
        ctrl = _controller()
        ctrl.harvest(1.0)
        assert ctrl.store_joule == ctrl.capacity_joule

    def test_harvest_for_rate_time_product(self):
        ctrl = _controller()
        ctrl.harvest_for(2.0, 5e-8)  # 100 nJ
        assert ctrl.store_joule == pytest.approx(1e-7)

    def test_headroom(self):
        ctrl = _controller(store_joule=1.5e-7, reserve_joule=5e-8)
        assert ctrl.headroom_joule == pytest.approx(1e-7)
        ctrl2 = _controller(store_joule=1e-8)
        assert ctrl2.headroom_joule == 0.0


class TestWaitFor:
    def test_zero_when_affordable(self):
        ctrl = _controller(store_joule=3e-7)
        assert ctrl.wait_for(1e-7, 1e-8) == 0.0

    def test_deficit_over_rate(self):
        ctrl = _controller(store_joule=0.0, reserve_joule=5e-8)
        # need 1e-7 + 5e-8 = 1.5e-7 at 5e-8 W -> 3 s.
        assert ctrl.wait_for(1e-7, 5e-8) == pytest.approx(3.0)

    def test_infinite_when_cost_exceeds_capacity(self):
        ctrl = _controller()
        assert ctrl.wait_for(1.0, 1e-6) == float("inf")

    def test_infinite_without_harvest(self):
        ctrl = _controller()
        assert ctrl.wait_for(1e-7, 0.0) == float("inf")


class TestValidation:
    def test_reserve_below_capacity(self):
        with pytest.raises(ValueError):
            EnergyNeutralController(capacity_joule=1e-7, reserve_joule=1e-7)

    def test_store_within_capacity(self):
        with pytest.raises(ValueError):
            EnergyNeutralController(capacity_joule=1e-7, store_joule=2e-7)

    def test_negative_amounts_rejected(self):
        ctrl = _controller()
        with pytest.raises(ValueError):
            ctrl.harvest(-1.0)
        with pytest.raises(ValueError):
            ctrl.can_afford(-1.0)


class TestSustainableRate:
    def test_bound(self):
        # 868 nJ/packet (T2's fd-abort) at 50 nW -> one packet / ~17 s.
        rate = sustainable_packet_rate(868e-9, 50e-9)
        assert rate == pytest.approx(1 / 17.36, rel=0.01)

    def test_early_abort_raises_rate(self):
        income = 50e-9
        hd = sustainable_packet_rate(1587e-9, income)   # T2 hd-arq cost
        fd = sustainable_packet_rate(868e-9, income)    # T2 fd-abort cost
        assert fd > 1.8 * hd

    def test_validation(self):
        with pytest.raises(ValueError):
            sustainable_packet_rate(0.0, 1e-9)


class TestControllerProperties:
    @given(
        events=st.lists(
            st.tuples(st.booleans(), st.floats(0, 2e-7)),
            min_size=0, max_size=50,
        )
    )
    def test_store_always_within_bounds(self, events):
        ctrl = _controller()
        for is_harvest, amount in events:
            if is_harvest:
                ctrl.harvest(amount)
            else:
                ctrl.admit(amount)
            assert 0.0 <= ctrl.store_joule <= ctrl.capacity_joule

    @given(
        events=st.lists(st.floats(0, 1e-7), min_size=1, max_size=30)
    )
    def test_admitted_ops_never_break_reserve(self, events):
        ctrl = _controller(store_joule=2e-7)
        for cost in events:
            before = ctrl.store_joule
            if ctrl.admit(cost):
                assert ctrl.store_joule >= ctrl.reserve_joule - 1e-18
            else:
                assert ctrl.store_joule == before
