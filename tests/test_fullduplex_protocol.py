"""Collision detectors, feedback protocol semantics, rate adaptation."""

import numpy as np
import pytest

from repro.fullduplex.collision import (
    CrcOnlyDetector,
    EnergyAnomalyDetector,
    MarginCollapseDetector,
)
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.protocol import ACK_BIT, NACK_BIT, FeedbackProtocol
from repro.fullduplex.rateadapt import RateAdapter
from repro.hardware.energy import EnergyModel
from repro.phy.config import PhyConfig


def _clean_margins(n, rng, level=1.0, noise=0.05):
    return level + noise * rng.standard_normal(n)


class TestMarginCollapseDetector:
    def test_quiet_on_clean_reception(self):
        rng = np.random.default_rng(0)
        margins = _clean_margins(200, rng)
        verdict = MarginCollapseDetector().run(margins)
        assert not verdict.detected
        assert verdict.detection_bit == 200

    def test_fires_after_collapse(self):
        rng = np.random.default_rng(1)
        margins = _clean_margins(200, rng)
        margins[100:] = 0.01 * rng.standard_normal(100)
        verdict = MarginCollapseDetector(window_bits=8).run(margins)
        assert verdict.detected
        assert 100 <= verdict.detection_bit <= 120

    def test_detection_latency_scales_with_window(self):
        rng = np.random.default_rng(2)
        margins = _clean_margins(300, rng)
        margins[150:] = 0.0
        small = MarginCollapseDetector(window_bits=4).run(margins)
        large = MarginCollapseDetector(window_bits=32).run(margins)
        assert small.detected and large.detected
        assert small.detection_bit <= large.detection_bit

    def test_empty_input(self):
        verdict = MarginCollapseDetector().run(np.empty(0))
        assert not verdict.detected

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MarginCollapseDetector(window_bits=0)
        with pytest.raises(ValueError):
            MarginCollapseDetector(quota=1.5)


class TestEnergyAnomalyDetector:
    def test_quiet_on_stationary_chips(self):
        rng = np.random.default_rng(3)
        soft = 1.0 + 0.1 * rng.standard_normal(400)
        verdict = EnergyAnomalyDetector().run(soft, chips_per_bit=2)
        assert not verdict.detected

    def test_fires_on_dispersion_jump(self):
        rng = np.random.default_rng(4)
        soft = 1.0 + 0.05 * rng.standard_normal(400)
        soft[200:] += 0.8 * rng.standard_normal(200)
        verdict = EnergyAnomalyDetector().run(soft, chips_per_bit=2)
        assert verdict.detected
        assert verdict.detection_bit >= 100  # in bit units (2 chips/bit)

    def test_short_input(self):
        verdict = EnergyAnomalyDetector().run(np.ones(4), chips_per_bit=2)
        assert not verdict.detected


class TestCrcOnlyDetector:
    def test_detects_only_at_end(self):
        verdict = CrcOnlyDetector().run(total_bits=500, crc_ok=False)
        assert verdict.detected and verdict.detection_bit == 500

    def test_clean_crc(self):
        verdict = CrcOnlyDetector().run(total_bits=500, crc_ok=True)
        assert not verdict.detected


class TestFeedbackProtocol:
    def _protocol(self, r=64):
        cfg = FullDuplexConfig(phy=PhyConfig(), asymmetry_ratio=r)
        return FeedbackProtocol(config=cfg, energy=EnergyModel())

    def test_abort_bit_rounding(self):
        p = self._protocol(r=64)
        # Detection at bit 10 -> NACK in slot 1 -> sender stops at end of
        # slot 1's decode, i.e. bit 128.
        assert p.abort_bit(10, packet_bits=1000) == 128

    def test_abort_bit_none_when_too_late(self):
        p = self._protocol(r=64)
        assert p.abort_bit(950, packet_bits=1000) is None

    def test_abort_monotone_in_detection(self):
        p = self._protocol(r=64)
        stops = [p.abort_bit(k, 10_000) for k in range(0, 5000, 100)]
        assert all(a <= b for a, b in zip(stops, stops[1:]))

    def test_verdict_clean(self):
        p = self._protocol(r=64)
        v = p.verdict(packet_bits=640, corrupted=False, detection_bit=None)
        assert v.delivered and not v.aborted
        assert v.bits_transmitted == 640
        assert v.airtime_bits == 640

    def test_verdict_aborted_saves_bits(self):
        p = self._protocol(r=64)
        v = p.verdict(packet_bits=1024, corrupted=True, detection_bit=5)
        assert not v.delivered and v.aborted
        assert v.bits_transmitted == 128
        assert v.tx_energy_joule < p.energy.tx_cost(1024)

    def test_verdict_late_detection_no_abort(self):
        p = self._protocol(r=64)
        v = p.verdict(packet_bits=256, corrupted=True, detection_bit=250)
        assert not v.delivered and not v.aborted
        assert v.bits_transmitted == 256

    def test_feedback_stream_flips_after_detection(self):
        p = self._protocol(r=64)
        stream = p.feedback_stream(num_slots=8, detection_bit=70)
        # detection at bit 70 -> slot 1 ends clean, NACK from slot 2.
        assert np.all(stream[:2] == ACK_BIT)
        assert np.all(stream[2:] == NACK_BIT)

    def test_feedback_stream_all_ack(self):
        p = self._protocol()
        assert np.all(p.feedback_stream(5, None) == ACK_BIT)

    def test_first_nack_slot(self):
        p = self._protocol()
        assert p.first_nack_slot(np.array([1, 1, 0, 0])) == 2
        assert p.first_nack_slot(np.array([1, 1, 1])) is None

    def test_invalid_args(self):
        p = self._protocol()
        with pytest.raises(ValueError):
            p.abort_bit(-1, 100)
        with pytest.raises(ValueError):
            p.verdict(0, False, None)


class TestRateAdapter:
    def test_starts_at_start_index(self):
        ra = RateAdapter(start_index=2)
        assert ra.current_rate_bps == ra.rates_bps[2]

    def test_steps_up_after_streak(self):
        ra = RateAdapter(raise_after=3, start_index=0)
        for _ in range(3):
            ra.record(True)
        assert ra.current_rate_bps == ra.rates_bps[1]

    def test_steps_down_on_failure(self):
        ra = RateAdapter(raise_after=2, start_index=2)
        ra.record(False)
        assert ra.current_rate_bps == ra.rates_bps[1]

    def test_failure_resets_streak(self):
        ra = RateAdapter(raise_after=2, start_index=0)
        ra.record(True)
        ra.record(False)
        ra.record(True)
        assert ra.current_rate_bps == ra.rates_bps[0]

    def test_clamped_at_ladder_ends(self):
        ra = RateAdapter(raise_after=1, start_index=0)
        ra.record(False)
        assert ra.current_rate_bps == ra.rates_bps[0]
        for _ in range(20):
            ra.record(True)
        assert ra.current_rate_bps == ra.rates_bps[-1]

    def test_history_and_reset(self):
        ra = RateAdapter(raise_after=2)
        ra.record(True)
        ra.record(False)
        assert len(ra.history) == 2
        ra.reset()
        assert ra.history == []
        assert ra.current_rate_bps == ra.rates_bps[ra.start_index]

    def test_rejects_bad_ladder(self):
        with pytest.raises(ValueError):
            RateAdapter(rates_bps=(2000.0, 1000.0))
        with pytest.raises(ValueError):
            RateAdapter(rates_bps=())
        with pytest.raises(ValueError):
            RateAdapter(start_index=99)
