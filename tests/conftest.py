"""Shared fixtures.

Two simulation profiles:

* ``fast_phy`` — 16 samples/chip, used by tests that need sample-level
  chains but not statistical depth;
* deterministic links built on :class:`ToneSource` with zero noise, for
  exact (non-statistical) end-to-end assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ambient import OfdmLikeSource, ToneSource
from repro.channel import ChannelModel, Scene
from repro.phy import PhyConfig


@pytest.fixture
def rng():
    """Deterministic per-test generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_phy() -> PhyConfig:
    """Small sample-per-chip PHY for cheap sample-level tests."""
    return PhyConfig(sample_rate_hz=32_000.0, bit_rate_bps=1_000.0)


@pytest.fixture
def default_phy() -> PhyConfig:
    """The calibrated default operating point."""
    return PhyConfig()


@pytest.fixture
def two_device_scene() -> Scene:
    """Canonical two-tag topology at 0.5 m separation."""
    return Scene.two_device_line(device_separation_m=0.5)


@pytest.fixture
def quiet_channel() -> ChannelModel:
    """Noise-free channel for deterministic decode tests."""
    return ChannelModel(noise_power_watt=0.0)


@pytest.fixture
def default_channel() -> ChannelModel:
    """Default channel (thermal noise, static fading)."""
    return ChannelModel()


@pytest.fixture
def tone_source(fast_phy) -> ToneSource:
    """Constant-envelope source at the fast PHY rate (deterministic)."""
    return ToneSource(sample_rate_hz=fast_phy.sample_rate_hz,
                      random_phase=False)


@pytest.fixture
def ofdm_source(default_phy) -> OfdmLikeSource:
    """Calibrated TV-like source at the default PHY rate."""
    return OfdmLikeSource(sample_rate_hz=default_phy.sample_rate_hz,
                          bandwidth_hz=200e3)
