"""Full-duplex core tests: config, self-interference, feedback codec."""

import numpy as np
import pytest

from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.feedback import (
    FeedbackDecoder,
    feedback_bits_for_frame,
    feedback_waveform,
    repeat_feedback_pattern,
)
from repro.fullduplex.selfinterference import (
    compensate_envelope,
    own_off_mask,
    residual_self_interference,
    through_power_waveform,
)
from repro.hardware.reflection import ReflectionStates
from repro.phy.config import PhyConfig


class TestFullDuplexConfig:
    def test_defaults(self):
        cfg = FullDuplexConfig()
        assert cfg.asymmetry_ratio == 64
        assert cfg.samples_per_feedback_bit == 64 * cfg.phy.samples_per_bit
        assert cfg.samples_per_feedback_half * 2 == cfg.samples_per_feedback_bit
        assert cfg.feedback_rate_bps == pytest.approx(
            cfg.phy.bit_rate_bps / 64
        )

    @pytest.mark.parametrize("bad", [0, 1, 3, 7, -2])
    def test_rejects_bad_ratio(self, bad):
        with pytest.raises(ValueError):
            FullDuplexConfig(asymmetry_ratio=bad)

    def test_rejects_bad_decode_mode(self):
        with pytest.raises(ValueError):
            FullDuplexConfig(feedback_decode="psychic")


class TestSelfInterference:
    def setup_method(self):
        self.states = ReflectionStates(absorb_gamma=0.0, reflect_gamma=0.6,
                                       efficiency=1.0)

    def test_through_power_levels(self):
        chips = np.array([0, 1, 0])
        tp = through_power_waveform(chips, self.states)
        assert np.allclose(tp, [1.0, 0.64, 1.0])

    def test_compensation_exact_without_smoothing(self):
        chips = np.tile([0, 1], 50)
        field_power = np.full(100, 2.0)
        gated = field_power * through_power_waveform(chips, self.states)
        restored = compensate_envelope(gated, chips, self.states)
        assert np.allclose(restored, field_power)

    def test_compensation_with_smoothing_tracks_edges(self):
        from repro.dsp.filters import single_pole_lowpass

        chips = np.repeat(np.tile([0, 1], 10), 64)
        field_power = np.full(chips.size, 3.0)
        alpha = 0.1
        env = single_pole_lowpass(
            field_power * through_power_waveform(chips, self.states), alpha
        )
        restored = compensate_envelope(env, chips, self.states,
                                       smoothing_alpha=alpha)
        assert np.allclose(restored[32:], 3.0, rtol=1e-6)

    def test_residual_metric_zero_after_compensation(self):
        chips = np.tile([0, 1], 200)
        env = np.full(400, 1.5) * through_power_waveform(chips, self.states)
        raw = residual_self_interference(env, chips)
        fixed = residual_self_interference(
            compensate_envelope(env, chips, self.states), chips
        )
        assert raw > 0.2
        assert fixed < 1e-9

    def test_own_off_mask(self):
        mask = own_off_mask(np.array([0, 1, 1, 0]))
        assert np.array_equal(mask, [True, False, False, True])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            compensate_envelope(np.ones(4), np.ones(3), self.states)
        with pytest.raises(ValueError):
            residual_self_interference(np.ones(4), np.ones(3))


class TestFeedbackWaveform:
    def _config(self, r=4):
        phy = PhyConfig(sample_rate_hz=32_000.0)
        return FullDuplexConfig(phy=phy, asymmetry_ratio=r)

    def test_manchester_structure(self):
        cfg = self._config(r=4)
        wave = feedback_waveform(np.array([1, 0]), cfg)
        half = cfg.samples_per_feedback_half
        assert wave.size == 2 * 2 * half
        assert np.all(wave[:half] == 1) and np.all(wave[half : 2 * half] == 0)
        assert np.all(wave[2 * half : 3 * half] == 0)
        assert np.all(wave[3 * half :] == 1)

    def test_dc_balanced(self):
        cfg = self._config()
        wave = feedback_waveform(np.array([1, 0, 1, 1, 0]), cfg)
        assert wave.mean() == pytest.approx(0.5)

    def test_bits_for_frame(self):
        cfg = self._config(r=4)
        per_bit = cfg.samples_per_feedback_bit
        assert feedback_bits_for_frame(3 * per_bit + 5, cfg) == 3
        assert feedback_bits_for_frame(per_bit - 1, cfg) == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            feedback_waveform(np.array([2]), self._config())

    def test_repeat_pattern(self):
        out = repeat_feedback_pattern(np.array([1, 0]), 5)
        assert np.array_equal(out, [1, 0, 1, 0, 1])
        with pytest.raises(ValueError):
            repeat_feedback_pattern(np.empty(0), 3)


class TestFeedbackDecoder:
    def _config(self, r=4, mode="gated"):
        phy = PhyConfig(sample_rate_hz=32_000.0)
        return FullDuplexConfig(phy=phy, asymmetry_ratio=r,
                                feedback_decode=mode)

    def test_decodes_clean_envelope(self):
        cfg = self._config(mode="raw")
        bits = np.array([1, 0, 1, 1, 0, 0], dtype=np.uint8)
        # Envelope that is simply higher while the remote reflects.
        wave = feedback_waveform(bits, cfg).astype(float)
        env = 1.0 + 0.1 * wave
        decoded = FeedbackDecoder(cfg).decode(env, bits.size)
        assert np.array_equal(decoded, bits)

    def test_gated_mode_ignores_own_on_samples(self):
        cfg = self._config(mode="gated")
        bits = np.array([1, 0, 1], dtype=np.uint8)
        wave = feedback_waveform(bits, cfg).astype(float)
        env = 1.0 + 0.1 * wave
        # Corrupt exactly the samples where "own" modulator is on; the
        # gated decoder must not look at them.
        own = np.zeros(env.size, dtype=np.uint8)
        own[::3] = 1
        env_corrupted = env.copy()
        env_corrupted[own == 1] = 100.0
        decoded = FeedbackDecoder(cfg).decode(
            env_corrupted, bits.size, own_chip_waveform=own
        )
        assert np.array_equal(decoded, bits)

    def test_gated_requires_own_waveform(self):
        cfg = self._config(mode="gated")
        with pytest.raises(ValueError):
            FeedbackDecoder(cfg).decode(np.ones(10_000), 1)

    def test_envelope_too_short(self):
        cfg = self._config(mode="raw")
        with pytest.raises(ValueError):
            FeedbackDecoder(cfg).decode(np.ones(10), 4)

    def test_start_sample_offset(self):
        cfg = self._config(mode="raw")
        bits = np.array([0, 1], dtype=np.uint8)
        wave = feedback_waveform(bits, cfg).astype(float)
        env = np.concatenate([np.ones(100), 1.0 + 0.2 * wave])
        decoded = FeedbackDecoder(cfg).decode(env, bits.size, start_sample=100)
        assert np.array_equal(decoded, bits)

    def test_soft_margins_sign_matches_bits(self):
        cfg = self._config(mode="raw")
        bits = np.array([1, 0, 1, 0], dtype=np.uint8)
        env = 1.0 + 0.1 * feedback_waveform(bits, cfg).astype(float)
        margins = FeedbackDecoder(cfg).soft_margins(env, bits.size)
        assert np.all((margins > 0) == (bits == 1))
