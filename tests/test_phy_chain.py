"""Transmit/receive chain tests: modulation, sync, aligned decode and
framed reception over deterministic and statistical channels."""

import numpy as np
import pytest

from repro.ambient import ToneSource
from repro.channel import Scene
from repro.phy import (
    BackscatterReceiver,
    BackscatterTransmitter,
    PhyConfig,
)
from repro.phy.framing import random_frame
from repro.phy.modulation import bits_to_waveform, chip_waveform, chips_for_bits
from repro.phy.sync import acquire_frame_start
from repro.utils.rng import random_bits


def _transmit_over(scene, channel, config, tx_waveforms, pad_bits, source, rng,
                   device="bob", other="alice"):
    """Helper: compose the incident waveform at `device` for a padded
    transmission from `other`."""
    pad = pad_bits * config.samples_per_bit
    g0 = tx_waveforms_states_gamma0 = None
    gamma = np.concatenate([
        np.full(pad, 0.045),  # idle absorb-state residual reflection
        tx_waveforms.reflection_waveform,
        np.full(pad, 0.045),
    ])
    gains = channel.realize(scene, rng)
    ambient = source.samples(gamma.size, rng)
    return gains.received(device, ambient, {other: gamma}, rng=rng), pad


class TestModulation:
    def test_chip_waveform_expansion(self, fast_phy):
        chips = np.array([1, 0], dtype=np.uint8)
        wave = chip_waveform(chips, fast_phy)
        assert wave.size == 2 * fast_phy.samples_per_chip
        assert np.all(wave[: fast_phy.samples_per_chip] == 1)

    def test_bits_to_waveform_length(self, fast_phy):
        bits = random_bits(0, 10)
        wave = bits_to_waveform(bits, fast_phy)
        assert wave.size == 10 * fast_phy.samples_per_bit

    def test_chips_match_coding(self, fast_phy):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        chips = chips_for_bits(bits, fast_phy)
        assert chips.size == bits.size * fast_phy.chips_per_bit


class TestTransmitter:
    def test_frame_waveform_lengths_consistent(self, fast_phy):
        tx = BackscatterTransmitter(fast_phy)
        frame = random_frame(8, rng=0)
        wf = tx.transmit(frame)
        assert wf.chip_waveform.size == wf.reflection_waveform.size
        assert wf.num_samples == wf.chips.size * fast_phy.samples_per_chip

    def test_reflection_levels_match_states(self, fast_phy):
        tx = BackscatterTransmitter(fast_phy)
        wf = tx.transmit_bits(np.array([1, 0], dtype=np.uint8))
        levels = set(np.round(np.unique(wf.reflection_waveform), 9))
        expected = {
            round(tx.states.gamma_for(0), 9),
            round(tx.states.gamma_for(1), 9),
        }
        assert levels == expected


class TestSyncDeterministic:
    """Sync over a constant-envelope source with zero noise: exact."""

    def test_finds_frame_start(self, fast_phy, tone_source, quiet_channel):
        scene = Scene.two_device_line(0.3)
        tx = BackscatterTransmitter(fast_phy)
        frame = random_frame(4, rng=1)
        wf = tx.transmit(frame)
        wave, pad = _transmit_over(
            scene, quiet_channel, fast_phy, wf, 6, tone_source,
            np.random.default_rng(0),
        )
        rx = BackscatterReceiver(fast_phy)
        env = rx.envelope(wave)
        sync = acquire_frame_start(env, fast_phy)
        assert sync.found
        assert abs(sync.start_sample - (pad + fast_phy.detector_delay_samples)) <= 2

    def test_no_false_sync_on_idle_channel(self, fast_phy, tone_source,
                                           quiet_channel):
        scene = Scene.two_device_line(0.3)
        gains = quiet_channel.realize(scene, rng=0)
        ambient = tone_source.samples(8000, rng=0)
        wave = gains.received("bob", ambient, rng=1)
        rx = BackscatterReceiver(fast_phy)
        sync = acquire_frame_start(rx.envelope(wave), fast_phy)
        assert not sync.found

    def test_search_limit_respected(self, fast_phy):
        env = np.random.default_rng(0).uniform(0.5, 1.5, 4000)
        res = acquire_frame_start(env, fast_phy, search_limit=500)
        assert res.start_sample < 500

    def test_rejects_bad_threshold(self, fast_phy):
        with pytest.raises(ValueError):
            acquire_frame_start(np.ones(100), fast_phy, threshold=0.0)


class TestAlignedDecode:
    def test_perfect_decode_on_clean_channel(self, fast_phy, tone_source,
                                             quiet_channel):
        scene = Scene.two_device_line(0.3)
        tx = BackscatterTransmitter(fast_phy)
        bits = random_bits(2, 64)
        wf = tx.transmit_bits(bits)
        wave, pad = _transmit_over(
            scene, quiet_channel, fast_phy, wf, 4, tone_source,
            np.random.default_rng(3),
        )
        rx = BackscatterReceiver(fast_phy)
        decoded = rx.decode_aligned_bits(wave, bits.size, start_sample=pad)
        assert np.array_equal(decoded, bits)

    def test_all_codings_decode_clean(self, tone_source, quiet_channel):
        # Manchester decodes differentially (exact everywhere).  FM0 and
        # NRZ slice against the moving-average threshold, which needs a
        # settling window, and NRZ additionally cannot survive long
        # same-bit runs (it is the unbalanced strawman) — so FM0 is
        # checked after the threshold window and NRZ on a run-limited
        # pattern.
        scene = Scene.two_device_line(0.3)
        patterns = {
            "manchester": random_bits(4, 32),
            "fm0": random_bits(4, 32),
            "nrz": np.tile([1, 0, 1, 1, 0, 0], 6).astype(np.uint8)[:32],
        }
        for coding, bits in patterns.items():
            cfg = PhyConfig(sample_rate_hz=32_000.0, coding=coding)
            src = ToneSource(sample_rate_hz=cfg.sample_rate_hz,
                             random_phase=False)
            tx = BackscatterTransmitter(cfg)
            wf = tx.transmit_bits(bits)
            wave, pad = _transmit_over(
                scene, quiet_channel, cfg, wf, 4, src,
                np.random.default_rng(4),
            )
            rx = BackscatterReceiver(cfg)
            decoded = rx.decode_aligned_bits(wave, bits.size, start_sample=pad)
            skip = 0 if coding == "manchester" else cfg.threshold_window_bits
            assert np.array_equal(decoded[skip:], bits[skip:]), coding

    def test_too_short_waveform_raises(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        with pytest.raises(ValueError):
            rx.decode_aligned_bits(np.ones(10, dtype=complex), 100)


class TestFramedReception:
    def test_end_to_end_delivery_default_config(self, default_phy,
                                                ofdm_source,
                                                default_channel):
        scene = Scene.two_device_line(0.5)
        tx = BackscatterTransmitter(default_phy)
        rng = np.random.default_rng(7)
        delivered = 0
        for _ in range(5):
            frame = random_frame(8, rng)
            wf = tx.transmit(frame)
            pad = 4 * default_phy.samples_per_bit
            gamma = np.concatenate([
                np.full(pad, tx.states.gamma_for(0)),
                wf.reflection_waveform,
                np.full(pad, tx.states.gamma_for(0)),
            ])
            gains = default_channel.realize(scene, rng)
            ambient = ofdm_source.samples(gamma.size, rng)
            wave = gains.received("bob", ambient, {"alice": gamma}, rng=rng)
            res = BackscatterReceiver(default_phy).receive_frame(wave)
            if res.delivered and np.array_equal(
                res.frame.payload_bits, frame.payload_bits
            ):
                delivered += 1
        assert delivered == 5

    def test_sync_failure_returns_gracefully(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        noise = np.random.default_rng(0).standard_normal(6000) * 1e-6
        res = rx.receive_frame(noise.astype(complex))
        assert res.frame is None and not res.crc_ok

    def test_fixed_threshold_ablation_object(self, fast_phy):
        rx = BackscatterReceiver(fast_phy, adaptive=False)
        soft = np.tile([1.0, 3.0], 32)
        thr = rx.chip_threshold(soft)
        assert np.allclose(thr, 2.0)
