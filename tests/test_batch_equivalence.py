"""Golden equivalence: ``backend="vectorized"`` reproduces ``"serial"``.

This is the contract the batched trial engine is built on (see
:mod:`repro.experiments.batch`): lane *i* of a vectorized run consumes
the same ``SeedSequence.spawn``-derived child streams as serial trial
*i*.  For the sample-level kinds (the BER/frame trials and the energy
exchange) the per-trial records must match — exactly for integer
tallies (bit/error counts), and to ``atol=1e-12`` for derived floats.

The ``mac`` kind runs on the slotted engine
(:class:`repro.mac.batch.SlottedMacEngine`), whose timeline is
quantised to feedback-slot granularity, so its goldens are
*statistical*: lane *i* replays serial trial *i*'s workload realisation
exactly (``offered_packets`` is bitwise), while the contention outcomes
must agree within pinned tolerances — paired-seed Wilson-interval
overlap on pooled delivery plus relative caps on attempts, energy and
latency (DESIGN §7 records the contract).

The full scenario × trial-kind matrix is heavy (every cell stages
sample-level exchanges twice), so it carries the ``slow`` marker and
runs in the full CI job; cheap smoke cells stay in the fast tier-1
suite.
"""

import math

import pytest

from repro.experiments import (
    ExperimentRunner,
    energy_trial,
    error_budget,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
    get_scenario,
    mac_trial,
)

#: Registry scenarios the golden suite sweeps (ISSUE requires >= 4).
#: Chosen to cover every batched code path: OFDM-like and tone ambient,
#: static and faded channels, compensation on and off, and a non-default
#: asymmetry ratio.
GOLDEN_SCENARIOS = [
    "calibrated-default",
    "fast-short-range",
    "rayleigh-mobile",
    "tone-source",
    "uncompensated",
    "fine-feedback",
]

#: The bitwise-equivalent trial kinds (every kind except ``mac``).
TRIALS = [forward_ber_trial, feedback_ber_trial, frame_delivery_trial,
          energy_trial]

#: The cheapest sample-level registry scenario (4 kbps → fewest samples
#: per bit), used for the fast smoke cell.
SMOKE_SCENARIO = "fast-short-range"


def assert_records_equivalent(serial, vectorized):
    """Per-trial record equality at the acceptance-criteria tolerance."""
    assert len(serial) == len(vectorized), (
        f"record counts differ: {len(serial)} serial vs "
        f"{len(vectorized)} vectorized"
    )
    for i, (s, v) in enumerate(zip(serial, vectorized)):
        assert set(s) == set(v), f"trial {i}: key sets differ"
        for key, sval in s.items():
            vval = v[key]
            if isinstance(sval, float) or isinstance(vval, float):
                assert math.isclose(sval, vval, rel_tol=0.0, abs_tol=1e-12), (
                    f"trial {i}, {key}: {sval!r} != {vval!r}"
                )
            else:
                assert sval == vval, f"trial {i}, {key}: {sval!r} != {vval!r}"


def run_both(trial, spec, seed, max_trials, **kwargs):
    serial = ExperimentRunner(
        trial=trial, max_trials=max_trials, **kwargs
    ).run(spec, seed=seed)
    vectorized = ExperimentRunner(
        trial=trial, max_trials=max_trials, backend="vectorized", **kwargs
    ).run(spec, seed=seed)
    return serial, vectorized


@pytest.mark.parametrize("trial", TRIALS, ids=lambda t: t.__name__)
def test_smoke_equivalence(trial):
    """Tier-1 cell: one cheap scenario, every trial kind."""
    serial, vectorized = run_both(
        trial, get_scenario(SMOKE_SCENARIO), seed=2024, max_trials=3
    )
    assert_records_equivalent(serial.records, vectorized.records)


@pytest.mark.slow
@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
@pytest.mark.parametrize("trial", TRIALS, ids=lambda t: t.__name__)
def test_golden_equivalence_matrix(name, trial):
    """Full matrix: every golden scenario × every standard trial kind."""
    serial, vectorized = run_both(
        trial, get_scenario(name), seed=1337, max_trials=6
    )
    assert serial.metadata["backend"] == "serial"
    assert vectorized.metadata["backend"] == "vectorized"
    assert_records_equivalent(serial.records, vectorized.records)


@pytest.mark.slow
def test_equivalence_survives_early_stop_and_chunking():
    """The stop rule truncates both backends at the same trial, and the
    vectorized chunk size never leaks into the records."""
    spec = get_scenario(SMOKE_SCENARIO).replace(distance_m=1.5)
    kwargs = dict(min_trials=2, stop_when=error_budget(5))
    serial, vectorized = run_both(
        forward_ber_trial, spec, seed=77, max_trials=60,
        chunk_size=7, **kwargs
    )
    assert_records_equivalent(serial.records, vectorized.records)
    rechunked = ExperimentRunner(
        trial=forward_ber_trial, max_trials=60, backend="vectorized",
        chunk_size=3, **kwargs
    ).run(spec, seed=77)
    assert_records_equivalent(serial.records, rechunked.records)


@pytest.mark.slow
def test_vectorized_matches_parallel_too():
    """All three backends agree — vectorized vs parallel closes the
    triangle the serial/parallel suite already covers."""
    spec = get_scenario(SMOKE_SCENARIO)
    parallel = ExperimentRunner(
        trial=forward_ber_trial, max_trials=6, workers=2
    ).run(spec, seed=31)
    vectorized = ExperimentRunner(
        trial=forward_ber_trial, max_trials=6, backend="vectorized"
    ).run(spec, seed=31)
    assert_records_equivalent(parallel.records, vectorized.records)


# ---------------------------------------------------------------------------
# Slotted MAC engine: statistical goldens (DESIGN §7).
# ---------------------------------------------------------------------------

#: (contention preset, policy arm) golden cells — the four contention
#: presets each paired with a distinct policy, so every LinkPolicy code
#: path crosses a different contention regime shape (light load, the
#: collision knee, heavy channel loss, skewed per-link load).
MAC_GOLDEN_CELLS = [
    ("sparse-mac", "hd-arq"),
    ("dense-bursty-mac", "fd-abort"),
    ("lossy-channel-mac", "fd-resume"),
    ("asymmetric-load-mac", "no-arq"),
]

#: Pinned statistical tolerances.  Calibrated against the measured
#: serial/slotted gap on the golden cells at seed 424 (worst observed:
#: attempts +3.7 %, total energy +9.9 %, mean latency +21 %, pooled
#: delivery gap 0.83 pp) with headroom so legitimate refactors don't
#: trip them, but a broken collision/backoff path does.
MAC_ATTEMPTS_REL_TOL = 0.06
MAC_ENERGY_REL_TOL = 0.13
MAC_LATENCY_REL_TOL = 0.30
#: Absolute dilation of each arm's 95 % Wilson interval on pooled
#: delivery before the overlap check — the budget for the slotted
#: engine's collision-geometry bias (a slotted timeline slightly
#: narrows the pairwise vulnerability window, so deep saturation shows
#: a small but systematic delivery offset).
MAC_DELIVERY_SLACK = 0.01


def _pool(table, key):
    return sum(r[key] for r in table.records)


def _rel_close(a, b, tol):
    return abs(b - a) <= tol * max(abs(a), 1e-12)


def assert_mac_statistically_equivalent(serial, vectorized):
    """The slotted-engine contract: exact workload, bounded outcomes."""
    from repro.analysis.theory import wilson_interval

    assert len(serial) == len(vectorized)
    # The workload realisation is replayed bitwise, lane for lane.
    for i, (s, v) in enumerate(zip(serial.records, vectorized.records)):
        assert set(s) == set(v), f"trial {i}: key sets differ"
        assert s["offered_packets"] == v["offered_packets"], f"trial {i}"
        assert s["duration_seconds"] == v["duration_seconds"], f"trial {i}"
    # Pooled contention outcomes agree within the pinned tolerances.
    att_s, att_v = _pool(serial, "attempts"), _pool(vectorized, "attempts")
    assert _rel_close(att_s, att_v, MAC_ATTEMPTS_REL_TOL), (att_s, att_v)
    off = _pool(serial, "offered_packets")
    lo_s, hi_s = wilson_interval(_pool(serial, "delivered_packets"), off)
    lo_v, hi_v = wilson_interval(_pool(vectorized, "delivered_packets"), off)
    assert (max(lo_s, lo_v) - MAC_DELIVERY_SLACK
            <= min(hi_s, hi_v) + MAC_DELIVERY_SLACK), (
        "pooled delivery intervals too far apart: "
        f"serial [{lo_s:.4f}, {hi_s:.4f}] vs "
        f"vectorized [{lo_v:.4f}, {hi_v:.4f}]"
    )
    en_s = _pool(serial, "total_energy_joule")
    en_v = _pool(vectorized, "total_energy_joule")
    assert _rel_close(en_s, en_v, MAC_ENERGY_REL_TOL), (en_s, en_v)
    lat_s = _pool(serial, "latency_sum_seconds")
    lat_v = _pool(vectorized, "latency_sum_seconds")
    if lat_s > 0:
        assert _rel_close(lat_s, lat_v, MAC_LATENCY_REL_TOL), (lat_s, lat_v)


def test_mac_smoke_statistical_equivalence():
    """Tier-1 cell: light contention, short horizon — runs in ~0.1 s."""
    spec = get_scenario("sparse-mac").replace(mac_horizon_seconds=60.0)
    serial, vectorized = run_both(mac_trial, spec, seed=99, max_trials=8)
    assert_mac_statistically_equivalent(serial, vectorized)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,policy", MAC_GOLDEN_CELLS, ids=lambda v: str(v)
)
def test_mac_golden_matrix(name, policy):
    """Full matrix: each contention preset × a rotated policy arm."""
    spec = get_scenario(name).replace(mac_policy=policy)
    serial, vectorized = run_both(mac_trial, spec, seed=424, max_trials=24)
    assert serial.metadata["backend"] == "serial"
    assert vectorized.metadata["backend"] == "vectorized"
    assert_mac_statistically_equivalent(serial, vectorized)


# ---------------------------------------------------------------------------
# Store round-trip: vectorized tables land on serial's result keys.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("trial_name", ["mac", "energy"])
def test_store_round_trip_shares_result_keys(tmp_path, trial_name):
    """Backend is an execution detail: the content address is the same
    whichever backend produced the table, so a vectorized campaign can
    serve (and be served by) serially-stored results."""
    from repro.store import ResultStore
    from repro.store.cache import cached_run

    if trial_name == "mac":
        trial = mac_trial
        spec = get_scenario("sparse-mac").replace(mac_horizon_seconds=30.0)
        n = 3
    else:
        trial = energy_trial
        spec = get_scenario(SMOKE_SCENARIO)
        n = 2
    serial_store = ResultStore(tmp_path / "serial")
    vec_store = ResultStore(tmp_path / "vectorized")
    done_s = cached_run(
        serial_store,
        ExperimentRunner(trial=trial, max_trials=n),
        spec, seed=5,
    )
    done_v = cached_run(
        vec_store,
        ExperimentRunner(trial=trial, max_trials=n, backend="vectorized"),
        spec, seed=5,
    )
    assert done_s.key == done_v.key
    assert done_s.outcome == done_v.outcome == "miss"
    # Each store now satisfies the *other* backend's request as a hit.
    again = cached_run(
        serial_store,
        ExperimentRunner(trial=trial, max_trials=n, backend="vectorized"),
        spec, seed=5,
    )
    assert again.outcome == "hit"
    assert again.table.records == done_s.table.records
    if trial_name == "energy":  # bitwise kinds: identical stored bytes
        assert done_s.table.records == done_v.table.records


# ---------------------------------------------------------------------------
# Engine caches are LRU-bounded.
# ---------------------------------------------------------------------------


def test_engine_caches_are_lru_bounded():
    from collections import OrderedDict

    from repro.experiments import batch

    # The shared helper: bounded, evicting least-recently-used first.
    cache = OrderedDict()
    built = []
    for i in range(batch.MAX_CACHED_ENGINES + 4):
        batch._cached_engine(cache, i, lambda s: built.append(s) or s)
    assert len(built) == batch.MAX_CACHED_ENGINES + 4
    assert len(cache) == batch.MAX_CACHED_ENGINES
    assert 0 not in cache and 3 not in cache  # oldest four evicted
    # A hit refreshes recency: key 4 survives the next eviction, the
    # untouched key 5 does not.
    batch._cached_engine(cache, 4, lambda s: pytest.fail("hit rebuilt"))
    batch._cached_engine(cache, -1, lambda s: s)
    assert 4 in cache and 5 not in cache

    # The real MAC-engine cache goes through the same helper and stays
    # bounded across a grid of distinct specs (construction is cheap —
    # no staging — so this sweeps well past the cap).
    base = get_scenario("sparse-mac")
    batch._MAC_ENGINE_CACHE.clear()
    for links in range(2, batch.MAX_CACHED_ENGINES + 10):
        batch._mac_engine_for(base.replace(mac_num_links=links))
    assert len(batch._MAC_ENGINE_CACHE) == batch.MAX_CACHED_ENGINES
    batch._MAC_ENGINE_CACHE.clear()
