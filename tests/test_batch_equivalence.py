"""Golden equivalence: ``backend="vectorized"`` reproduces ``"serial"``.

This is the contract the batched trial engine is built on (see
:mod:`repro.experiments.batch`): lane *i* of a vectorized run consumes
the same ``SeedSequence.spawn``-derived child streams as serial trial
*i*, so the per-trial records must match — exactly for integer tallies
(bit/error counts), and to ``atol=1e-12`` for derived floats.

The full scenario × trial-kind matrix is heavy (every cell stages
sample-level exchanges twice), so it carries the ``slow`` marker and
runs in the full CI job; a single cheap-scenario smoke cell stays in
the fast tier-1 suite.
"""

import math

import pytest

from repro.experiments import (
    ExperimentRunner,
    error_budget,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
    get_scenario,
)

#: Registry scenarios the golden suite sweeps (ISSUE requires >= 4).
#: Chosen to cover every batched code path: OFDM-like and tone ambient,
#: static and faded channels, compensation on and off, and a non-default
#: asymmetry ratio.
GOLDEN_SCENARIOS = [
    "calibrated-default",
    "fast-short-range",
    "rayleigh-mobile",
    "tone-source",
    "uncompensated",
    "fine-feedback",
]

TRIALS = [forward_ber_trial, feedback_ber_trial, frame_delivery_trial]

#: The cheapest sample-level registry scenario (4 kbps → fewest samples
#: per bit), used for the fast smoke cell.
SMOKE_SCENARIO = "fast-short-range"


def assert_records_equivalent(serial, vectorized):
    """Per-trial record equality at the acceptance-criteria tolerance."""
    assert len(serial) == len(vectorized), (
        f"record counts differ: {len(serial)} serial vs "
        f"{len(vectorized)} vectorized"
    )
    for i, (s, v) in enumerate(zip(serial, vectorized)):
        assert set(s) == set(v), f"trial {i}: key sets differ"
        for key, sval in s.items():
            vval = v[key]
            if isinstance(sval, float) or isinstance(vval, float):
                assert math.isclose(sval, vval, rel_tol=0.0, abs_tol=1e-12), (
                    f"trial {i}, {key}: {sval!r} != {vval!r}"
                )
            else:
                assert sval == vval, f"trial {i}, {key}: {sval!r} != {vval!r}"


def run_both(trial, spec, seed, max_trials, **kwargs):
    serial = ExperimentRunner(
        trial=trial, max_trials=max_trials, **kwargs
    ).run(spec, seed=seed)
    vectorized = ExperimentRunner(
        trial=trial, max_trials=max_trials, backend="vectorized", **kwargs
    ).run(spec, seed=seed)
    return serial, vectorized


@pytest.mark.parametrize("trial", TRIALS, ids=lambda t: t.__name__)
def test_smoke_equivalence(trial):
    """Tier-1 cell: one cheap scenario, every trial kind."""
    serial, vectorized = run_both(
        trial, get_scenario(SMOKE_SCENARIO), seed=2024, max_trials=3
    )
    assert_records_equivalent(serial.records, vectorized.records)


@pytest.mark.slow
@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
@pytest.mark.parametrize("trial", TRIALS, ids=lambda t: t.__name__)
def test_golden_equivalence_matrix(name, trial):
    """Full matrix: every golden scenario × every standard trial kind."""
    serial, vectorized = run_both(
        trial, get_scenario(name), seed=1337, max_trials=6
    )
    assert serial.metadata["backend"] == "serial"
    assert vectorized.metadata["backend"] == "vectorized"
    assert_records_equivalent(serial.records, vectorized.records)


@pytest.mark.slow
def test_equivalence_survives_early_stop_and_chunking():
    """The stop rule truncates both backends at the same trial, and the
    vectorized chunk size never leaks into the records."""
    spec = get_scenario(SMOKE_SCENARIO).replace(distance_m=1.5)
    kwargs = dict(min_trials=2, stop_when=error_budget(5))
    serial, vectorized = run_both(
        forward_ber_trial, spec, seed=77, max_trials=60,
        chunk_size=7, **kwargs
    )
    assert_records_equivalent(serial.records, vectorized.records)
    rechunked = ExperimentRunner(
        trial=forward_ber_trial, max_trials=60, backend="vectorized",
        chunk_size=3, **kwargs
    ).run(spec, seed=77)
    assert_records_equivalent(serial.records, rechunked.records)


@pytest.mark.slow
def test_vectorized_matches_parallel_too():
    """All three backends agree — vectorized vs parallel closes the
    triangle the serial/parallel suite already covers."""
    spec = get_scenario(SMOKE_SCENARIO)
    parallel = ExperimentRunner(
        trial=forward_ber_trial, max_trials=6, workers=2
    ).run(spec, seed=31)
    vectorized = ExperimentRunner(
        trial=forward_ber_trial, max_trials=6, backend="vectorized"
    ).run(spec, seed=31)
    assert_records_equivalent(parallel.records, vectorized.records)
