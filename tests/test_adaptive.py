"""Adaptive trial allocation across campaign grid cells.

The scheduler's contract, pinned on a synthetic 3-cell Bernoulli grid
with deliberately unequal variance (p = 0.02 / 0.1 / 0.5):

* every cell converges to the target Wilson half-width;
* the high-variance cell gets the most trials, and the total spend is
  well below the fixed-``n_trials`` baseline reaching the same max
  width;
* an adaptive run interrupted by a budget cap and then resumed lands
  on bitwise-identical stored tables (the store replays the grant
  sequence as cache hits).
"""

import pytest

import repro.experiments as experiments
from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    adaptive_run,
)
from repro.campaigns.adaptive import (
    WILSON_COUNTS,
    _ratio_counts,
    adaptive_checkpoint_path,
)
from repro.experiments.runner import ber_aggregate
from repro.store import ResultStore

#: Grid of success probabilities — variance p(1-p) spans 25×.
PROBS = (0.02, 0.1, 0.5)

#: Target Wilson half-width for the convergence tests.
PRECISION = 0.08


def _bernoulli_trial(spec, rng) -> dict:
    """One Bernoulli draw; ``mac_loss_probability`` is the knob."""
    return {
        "errors": int(rng.random() < spec.mac_loss_probability),
        "bits": 1,
    }


@pytest.fixture
def bernoulli_kind(monkeypatch):
    monkeypatch.setitem(
        experiments.TRIAL_KINDS, "bernoulli-test", _bernoulli_trial
    )
    monkeypatch.setitem(
        experiments.TRIAL_AGGREGATES, "bernoulli-test", ber_aggregate
    )
    monkeypatch.setitem(
        WILSON_COUNTS, "bernoulli-test", _ratio_counts("errors", "bits")
    )
    return "bernoulli-test"


def _campaign(kind, floor=8):
    return CampaignSpec(
        name="adaptive-test",
        kinds=(kind,),
        grid={"mac_loss_probability": PROBS},
        n_trials=floor,
        seed=1,
    )


class TestAdaptiveConvergence:
    def test_converges_with_fewer_trials_than_fixed(
        self, tmp_path, bernoulli_kind
    ):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        result = adaptive_run(
            runner, _campaign(bernoulli_kind), precision=PRECISION
        )
        assert result.converged
        assert result.max_width <= 2.0 * PRECISION
        budgets = [cell.n_trials for cell in result.cells]
        # budget follows variance: the p=0.5 cell outspends the p=0.02
        # cell
        assert budgets[-1] > budgets[0]
        # the fixed baseline reaching the same max width runs every
        # cell at the budget the worst cell needed
        fixed_total = len(budgets) * max(budgets)
        assert result.total_trials <= 0.7 * fixed_total
        assert result.trials_computed == result.total_trials

    def test_rerun_is_pure_cache_hits(self, tmp_path, bernoulli_kind):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        camp = _campaign(bernoulli_kind)
        first = adaptive_run(runner, camp, precision=PRECISION)
        again = adaptive_run(runner, camp, precision=PRECISION)
        assert again.trials_computed == 0
        assert [c.n_trials for c in again.cells] == [
            c.n_trials for c in first.cells
        ]
        assert [c.width for c in again.cells] == [
            c.width for c in first.cells
        ]

    def test_resumed_run_bitwise_identical(self, tmp_path, bernoulli_kind):
        camp = _campaign(bernoulli_kind)
        straight = CampaignRunner(store=ResultStore(tmp_path / "a"))
        full = adaptive_run(straight, camp, precision=PRECISION)

        resumed = CampaignRunner(store=ResultStore(tmp_path / "b"))
        partial = adaptive_run(
            resumed, camp, precision=PRECISION, budget=40
        )
        assert not partial.converged  # the cap interrupted it
        after = adaptive_run(resumed, camp, precision=PRECISION)
        assert after.converged
        assert [c.n_trials for c in after.cells] == [
            c.n_trials for c in full.cells
        ]
        for a, b in zip(full.cells, after.cells):
            assert (
                straight.store.path_for(a.unit.key()).read_bytes()
                == resumed.store.path_for(b.unit.key()).read_bytes()
            )
        # the resume computed strictly less than the uninterrupted run
        assert after.trials_computed < full.trials_computed

    def test_budget_only_mode_grows_widest_cell(
        self, tmp_path, bernoulli_kind
    ):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        result = adaptive_run(
            runner, _campaign(bernoulli_kind), budget=60
        )
        assert not result.converged
        assert result.total_trials <= 60
        budgets = [cell.n_trials for cell in result.cells]
        assert max(budgets) > min(budgets)

    def test_report_carries_granted_budgets(self, tmp_path, bernoulli_kind):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        camp = _campaign(bernoulli_kind)
        result = adaptive_run(runner, camp, precision=PRECISION)
        tables = runner.report(camp, units=result.units())
        assert tables[bernoulli_kind].column("n_trials") == [
            cell.n_trials for cell in result.cells
        ]

    def test_checkpoint_written(self, tmp_path, bernoulli_kind):
        import json

        runner = CampaignRunner(store=ResultStore(tmp_path))
        camp = _campaign(bernoulli_kind)
        result = adaptive_run(runner, camp, precision=PRECISION)
        text = adaptive_checkpoint_path(runner, camp).read_text()
        state = json.loads(text)
        assert state["converged"] is True
        assert state["rounds"] == result.rounds
        assert [c["n_trials"] for c in state["cells"]] == [
            cell.n_trials for cell in result.cells
        ]
        # Canonical bytes: sorted keys, strict-finite (lint SER rules).
        assert text == (
            json.dumps(state, indent=2, sort_keys=True, allow_nan=False)
            + "\n"
        )


class TestAdaptiveValidation:
    def test_needs_precision_or_budget(self, tmp_path, bernoulli_kind):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        with pytest.raises(ValueError, match="needs a target"):
            adaptive_run(runner, _campaign(bernoulli_kind))

    def test_rejects_unsupported_kind(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            experiments.TRIAL_KINDS, "no-counts", _bernoulli_trial
        )
        runner = CampaignRunner(store=ResultStore(tmp_path))
        with pytest.raises(ValueError, match="no Wilson count extractor"):
            adaptive_run(
                runner, _campaign("no-counts"), precision=PRECISION
            )

    def test_rejects_nonpositive_targets(self, tmp_path, bernoulli_kind):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        with pytest.raises(ValueError):
            adaptive_run(
                runner, _campaign(bernoulli_kind), precision=0.0
            )
        with pytest.raises(ValueError):
            adaptive_run(runner, _campaign(bernoulli_kind), budget=0)

    def test_max_rounds_bounds_unreachable_targets(
        self, tmp_path, bernoulli_kind
    ):
        runner = CampaignRunner(store=ResultStore(tmp_path))
        result = adaptive_run(
            runner,
            _campaign(bernoulli_kind, floor=1),
            precision=1e-6,
            max_rounds=3,
        )
        assert not result.converged
        assert result.rounds == 3


def _cheap_cli_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="tiny-adaptive-test",
        description="two-point adaptive smoke campaign",
        scenario="calibrated-default",
        overrides={
            # 16 samples/chip: cheap sample-level trials
            "sample_rate_hz": 32_000.0,
            "source_bandwidth_hz": 20e3,
        },
        grid={"distance_m": (0.4, 0.8)},
        kinds=("forward-ber",),
        n_trials=2,
        seed=11,
    )


class TestAdaptiveCli:
    def test_run_adaptive(self, tmp_path, capsys, monkeypatch):
        from repro.campaigns import builtin
        from repro.cli import main

        monkeypatch.setitem(
            builtin._CAMPAIGNS, "tiny-adaptive-test", _cheap_cli_campaign
        )
        code = main([
            "campaign", "run", "tiny-adaptive-test",
            "--store", str(tmp_path),
            "--adaptive", "--precision", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "(adaptive)" in out
        assert "wilson_width" in out

    def test_precision_without_adaptive_rejected(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "fig-ber-vs-distance",
                "--store", str(tmp_path), "--precision", "0.05",
            ])
        assert "--adaptive" in capsys.readouterr().err

    def test_adaptive_without_target_rejected(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "fig-ber-vs-distance",
                "--store", str(tmp_path), "--adaptive",
            ])
        assert "precision" in capsys.readouterr().err
