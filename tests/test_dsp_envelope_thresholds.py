"""Envelope detection and threshold tests."""

import numpy as np
import pytest

from repro.dsp.envelope import envelope_power, square_law_detector
from repro.dsp.thresholds import (
    AdaptiveThreshold,
    FixedThreshold,
    adaptive_threshold,
    slice_bits,
)


class TestEnvelopePower:
    def test_complex_magnitude_squared(self):
        x = np.array([1 + 1j, 2j, -3.0])
        assert np.allclose(envelope_power(x), [2.0, 4.0, 9.0])

    def test_real_input_squares(self):
        assert np.allclose(envelope_power(np.array([2.0, -2.0])), [4.0, 4.0])

    def test_output_real_nonnegative(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        p = envelope_power(x)
        assert p.dtype.kind == "f"
        assert np.all(p >= 0)


class TestSquareLawDetector:
    def test_no_smoothing_equals_power(self):
        x = np.array([1.0, 2j, 3.0])
        out = square_law_detector(x, 1e4, None)
        assert np.allclose(out, envelope_power(x))

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(5000) + 1j * rng.standard_normal(5000)
        raw = square_law_detector(x, 1e5, None)
        smooth = square_law_detector(x, 1e5, 1e-3)
        assert smooth[500:].std() < 0.3 * raw[500:].std()

    def test_preserves_mean_power(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(20_000) + 1j * rng.standard_normal(20_000)
        smooth = square_law_detector(x, 1e5, 5e-4)
        assert smooth.mean() == pytest.approx(envelope_power(x).mean(), rel=0.05)


class TestFixedThreshold:
    def test_explicit_level(self):
        thr = FixedThreshold(level=2.0)(np.array([1.0, 3.0]))
        assert np.allclose(thr, 2.0)

    def test_default_uses_mean(self):
        env = np.array([1.0, 3.0])
        assert np.allclose(FixedThreshold()(env), 2.0)


class TestAdaptiveThreshold:
    def test_tracks_slow_steps(self):
        # A step much slower than the window is tracked out: the
        # threshold ends up at the local level on both sides.
        env = np.concatenate([np.ones(200), 3 * np.ones(200)])
        thr = AdaptiveThreshold(window=20)(env)
        assert thr[150] == pytest.approx(1.0)
        assert thr[399] == pytest.approx(3.0)

    def test_sits_at_midpoint_of_balanced_data(self):
        env = np.tile([0.0, 2.0], 200)  # DC-balanced chip pattern
        thr = AdaptiveThreshold(window=40)(env)
        assert thr[100:].mean() == pytest.approx(1.0, abs=0.05)

    def test_scale(self):
        env = np.ones(50)
        thr = AdaptiveThreshold(window=5, scale=1.1)(env)
        assert np.allclose(thr, 1.1)

    def test_functional_shorthand(self):
        env = np.arange(10.0)
        assert np.allclose(
            adaptive_threshold(env, 3), AdaptiveThreshold(window=3)(env)
        )

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AdaptiveThreshold(window=0)


class TestSliceBits:
    def test_basic(self):
        env = np.array([0.5, 2.0, 1.0])
        thr = np.array([1.0, 1.0, 1.0])
        assert np.array_equal(slice_bits(env, thr), [0, 1, 0])

    def test_equality_slices_low(self):
        assert slice_bits(np.array([1.0]), np.array([1.0]))[0] == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            slice_bits(np.ones(3), np.ones(4))

    def test_dtype(self):
        out = slice_bits(np.array([2.0]), np.array([1.0]))
        assert out.dtype == np.uint8
