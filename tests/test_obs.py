"""Unit tests for ``repro.obs``: clock, metrics, traces, sessions, reports.

The contracts pinned here are the ones the instrumented stack leans
on: the disabled path allocates nothing and returns one shared no-op
span, span events nest via ids and serialise canonically, metrics
snapshots are strict-finite JSON, and a run report is a pure function
of the trace it reads.
"""

import json
import logging
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport, load_trace
from repro.obs.trace import TraceWriter, encode_event, sanitize


@pytest.fixture(autouse=True)
def _no_session_leak():
    """Every test starts and ends with observability disabled."""
    obs.stop()
    yield
    obs.stop()


class TestClock:
    def test_monotonic_s_advances(self):
        a = clock.monotonic_s()
        b = clock.monotonic_s()
        assert isinstance(a, float)
        assert b >= a

    def test_monotonic_ns_advances(self):
        a = clock.monotonic_ns()
        b = clock.monotonic_ns()
        assert isinstance(a, int)
        assert b >= a


class TestMetricsRegistry:
    def test_counter_lazy_and_incrementing(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 4)
        assert reg.snapshot()["counters"] == {"a.b": 5}

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.inc("a", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 3)
        reg.set_gauge("g", 7.5)
        assert reg.snapshot()["gauges"] == {"g": 7.5}

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        edges = (1.0, 10.0)
        for v in (0.5, 1.0, 2.0, 100.0):
            reg.observe("h", v, edges=edges)
        h = reg.snapshot()["histograms"]["h"]
        # bucket rule: value <= edge; last bucket is overflow
        assert h["edges"] == [1.0, 10.0]
        assert h["counts"] == [2, 1, 1]
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(103.5)

    def test_histogram_edges_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", edges=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one edge"):
            reg.histogram("h2", edges=())

    def test_histogram_redeclare_different_edges_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1.0,))
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("h", edges=(2.0,))

    def test_name_cannot_change_kind(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError, match="already a counter"):
            reg.set_gauge("x", 1)

    def test_nonfinite_observation_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="finite"):
            reg.observe("h", float("nan"))
        with pytest.raises(ValueError, match="finite"):
            reg.observe("h", float("inf"))

    def test_numpy_scalars_coerced(self):
        reg = MetricsRegistry()
        reg.inc("c", np.int64(3))
        reg.set_gauge("g", np.float64(1.5))
        reg.observe("h", np.float32(0.25), edges=(1.0,))
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        # the snapshot must be plain-python JSON-able
        json.loads(reg.to_json())

    def test_non_numeric_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError, match="numeric"):
            reg.set_gauge("g", "fast")

    def test_to_json_canonical(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        text = reg.to_json()
        assert json.loads(text) == reg.snapshot()
        assert text.index('"a"') < text.index('"b"')

    def test_thread_safety_no_lost_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["n"] == 4000


class TestSanitize:
    def test_scalars_pass_through(self):
        assert sanitize(None) is None
        assert sanitize(True) is True
        assert sanitize("s") == "s"
        assert sanitize(3) == 3
        assert sanitize(1.5) == 1.5

    def test_numpy_scalars_become_python(self):
        assert sanitize(np.int64(3)) == 3
        assert type(sanitize(np.int64(3))) is int
        assert sanitize(np.float64(0.5)) == 0.5
        assert type(sanitize(np.float64(0.5))) is float
        assert sanitize(np.bool_(True)) in (True, 1)

    def test_nonfinite_sentinels(self):
        assert sanitize(float("nan")) == {"$nonfinite": "nan"}
        assert sanitize(float("inf")) == {"$nonfinite": "inf"}
        assert sanitize(float("-inf")) == {"$nonfinite": "-inf"}

    def test_containers_recurse(self):
        out = sanitize({"a": [np.int64(1), float("inf")], 2: "x"})
        assert out == {"a": [1, {"$nonfinite": "inf"}], "2": "x"}

    def test_unknown_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert sanitize(Weird()) == "<weird>"

    def test_encode_event_canonical_compact(self):
        line = encode_event({"b": 1, "a": float("nan")})
        assert line == '{"a":{"$nonfinite":"nan"},"b":1}'


class TestTraceWriter:
    def test_meta_line_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        w = TraceWriter(path)
        w.write({"type": "span", "id": 1})
        w.close()
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta == {"clock": "monotonic", "type": "meta", "version": 1}
        assert json.loads(lines[1])["id"] == 1

    def test_in_memory_mode(self):
        w = TraceWriter(None)
        w.write({"type": "span", "id": 1})
        assert [e["type"] for e in w.events] == ["meta", "span"]
        w.close()

    def test_write_after_close_raises(self, tmp_path):
        w = TraceWriter(tmp_path / "t.jsonl")
        w.close()
        w.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            w.write({"type": "span"})

    def test_parent_dirs_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        TraceWriter(path).close()
        assert path.is_file()


class TestSessionApi:
    def test_disabled_by_default(self):
        assert obs.current_session() is None
        assert obs.span("anything", k=1) is obs.NOOP_SPAN

    def test_noop_span_is_shared_and_inert(self):
        a = obs.span("x")
        b = obs.span("y")
        assert a is b is obs.NOOP_SPAN
        with a as sp:
            sp.note(whatever=1)  # swallowed

    def test_disabled_metric_calls_are_noops(self):
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 2)  # nothing raises, nothing recorded

    def test_start_stop_round_trip(self):
        session = obs.start(collect_events=True)
        assert obs.current_session() is session
        assert obs.stop() is session
        assert obs.current_session() is None
        assert obs.stop() is None

    def test_span_nesting_ids(self):
        session = obs.start(collect_events=True)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.stop()
        spans = {e["name"]: e for e in session.writer.events
                 if e["type"] == "span"}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["inner"]["id"] != spans["outer"]["id"]

    def test_children_emitted_before_parents(self):
        session = obs.start(collect_events=True)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.stop()
        names = [e["name"] for e in session.writer.events
                 if e["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_span_attrs_and_note(self):
        session = obs.start(collect_events=True)
        with obs.span("s", static=1) as sp:
            sp.note(outcome="hit")
        obs.stop()
        (event,) = [e for e in session.writer.events if e["type"] == "span"]
        assert event["attrs"] == {"static": 1, "outcome": "hit"}
        assert event["dur_s"] >= 0.0
        assert event["t0_s"] >= 0.0

    def test_span_records_exception_and_propagates(self):
        session = obs.start(collect_events=True)
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("no")
        obs.stop()
        (event,) = [e for e in session.writer.events if e["type"] == "span"]
        assert event["attrs"]["error"] == "RuntimeError"

    def test_spans_feed_metrics(self):
        session = obs.start()
        with obs.span("work"):
            pass
        with obs.span("work"):
            pass
        obs.stop()
        snap = session.metrics.snapshot()
        assert snap["counters"]["span.work"] == 2
        assert snap["histograms"]["span.work.s"]["count"] == 2

    def test_metrics_only_session_has_no_writer(self):
        session = obs.start()
        with obs.span("x"):
            pass
        obs.stop()
        assert session.writer is None

    def test_thread_local_nesting(self):
        session = obs.start(collect_events=True)
        ready = threading.Barrier(2)
        done = []

        def worker(name):
            ready.wait()
            with obs.span(name):
                done.append(name)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(2)
        ]
        with obs.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        obs.stop()
        spans = {e["name"]: e for e in session.writer.events
                 if e["type"] == "span"}
        # worker spans run on their own threads: no parent, never
        # children of "main" (which lives on the pytest thread)
        assert spans["t0"]["parent"] is None
        assert spans["t1"]["parent"] is None
        assert len({spans[n]["id"] for n in ("main", "t0", "t1")}) == 3

    def test_traced_decorator(self):
        @obs.traced("math.add", flavor="test")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3  # disabled: plain call
        session = obs.start(collect_events=True)
        assert add(3, 4) == 7
        obs.stop()
        (event,) = [e for e in session.writer.events if e["type"] == "span"]
        assert event["name"] == "math.add"
        assert event["attrs"] == {"flavor": "test"}

    def test_traced_default_name(self):
        @obs.traced()
        def helper():
            return 1

        session = obs.start(collect_events=True)
        helper()
        obs.stop()
        (event,) = [e for e in session.writer.events if e["type"] == "span"]
        assert "helper" in event["name"]

    def test_restart_replaces_and_closes_previous(self, tmp_path):
        first = obs.start(trace_path=tmp_path / "a.jsonl")
        second = obs.start(trace_path=tmp_path / "b.jsonl")
        assert obs.current_session() is second
        # first's writer was closed by the replacement
        with pytest.raises(ValueError, match="closed"):
            first.writer.write({"type": "span"})
        obs.stop()


class TestRunReport:
    def _events(self):
        return [
            {"type": "meta", "version": 1, "clock": "monotonic"},
            {"type": "span", "id": 1, "parent": None, "name": "a",
             "t0_s": 0.0, "dur_s": 0.5, "attrs": {}},
            {"type": "span", "id": 2, "parent": None, "name": "a",
             "t0_s": 1.0, "dur_s": 1.5, "attrs": {}},
            {"type": "span", "id": 3, "parent": None, "name": "b",
             "t0_s": 2.0, "dur_s": 0.25, "attrs": {}},
        ]

    def test_span_aggregation(self):
        report = RunReport(self._events())
        doc = report.to_dict()
        assert doc["n_spans"] == 3
        a = doc["spans"]["a"]
        assert a["count"] == 2
        assert a["total_s"] == pytest.approx(2.0)
        assert a["mean_s"] == pytest.approx(1.0)
        assert a["min_s"] == pytest.approx(0.5)
        assert a["max_s"] == pytest.approx(1.5)

    def test_no_campaign_section_without_units(self):
        report = RunReport(self._events())
        assert report.campaign is None
        assert "campaign" not in report.to_dict()

    def test_campaign_reconciliation(self):
        events = self._events() + [
            {"type": "span", "id": 4, "parent": None,
             "name": "campaign.unit", "t0_s": 0, "dur_s": 0.1,
             "attrs": {"outcome": "hit", "trials_computed": 0}},
            {"type": "span", "id": 5, "parent": None,
             "name": "campaign.unit", "t0_s": 0, "dur_s": 0.1,
             "attrs": {"outcome": "truncated", "trials_computed": 0}},
            {"type": "span", "id": 6, "parent": None,
             "name": "campaign.unit", "t0_s": 0, "dur_s": 0.1,
             "attrs": {"outcome": "topup", "trials_computed": 40}},
            {"type": "span", "id": 7, "parent": None,
             "name": "campaign.unit", "t0_s": 0, "dur_s": 0.1,
             "attrs": {"outcome": "miss", "trials_computed": 100}},
        ]
        c = RunReport(events).campaign
        assert c["units"] == 4
        assert c["outcome_counts"] == {
            "hit": 1, "truncated": 1, "topup": 1, "miss": 1,
        }
        assert c["trials_computed"] == 140
        # hits + truncations are store hits; top-ups compute work
        assert c["store_hit_rate"] == pytest.approx(0.5)

    def test_text_and_json_renderings(self):
        report = RunReport(self._events())
        text = report.to_text()
        assert "3 spans" in text
        assert "a" in text and "b" in text
        doc = json.loads(report.to_json())
        assert doc == report.to_dict()

    def test_load_trace_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.start(trace_path=path)
        with obs.span("x"):
            pass
        obs.stop()
        events = load_trace(path)
        assert events[0]["type"] == "meta"
        assert events[1]["name"] == "x"

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not a JSON trace line"):
            load_trace(path)

    def test_load_trace_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "no-meta.jsonl"
        path.write_text('{"type":"span","id":1}\n')
        with pytest.raises(ValueError, match="missing meta"):
            load_trace(path)

    def test_load_trace_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "vnext.jsonl"
        path.write_text('{"type":"meta","version":999}\n')
        with pytest.raises(ValueError, match="version 999"):
            load_trace(path)


class TestLogConfig:
    def test_verbosity_mapping(self):
        from repro.obs import verbosity_to_level

        assert verbosity_to_level(-2) == logging.ERROR
        assert verbosity_to_level(-1) == logging.ERROR
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_configure_is_idempotent(self):
        from repro.obs import configure_logging
        from repro.obs.logconfig import _HANDLER_TAG

        logger = configure_logging(1)
        logger = configure_logging(0)
        ours = [
            h for h in logger.handlers if getattr(h, _HANDLER_TAG, False)
        ]
        assert len(ours) == 1
        assert logger.level == logging.WARNING
        # caplog compatibility: propagation must stay on
        assert logger.propagate
