"""Golden regression fixtures: frozen `ResultTable` aggregates.

Each fixture under ``tests/golden/`` is a small JSON snapshot of the
aggregate statistics (error/bit tallies and mean rates) of the three
standard trial kinds for one registry scenario at a fixed seed.  The
test recomputes them and fails on *any* numeric drift — integer tallies
must match exactly, derived floats to 1e-12 — so an unintended change
anywhere in the synthesis → channel → DSP → decode chain shows up as a
diff against a checked-in number, not as a silent shift in a plot.

The snapshots run on the vectorized backend for speed; the golden-
equivalence suite (``tests/test_batch_equivalence.py``) independently
pins ``vectorized == serial``, so this file effectively freezes both.

Regenerate (after an *intended* physics/DSP change) with::

    PYTHONPATH=src python benchmarks/regenerate_golden.py

and commit the diff alongside the change that explains it.
"""

import json
import math
import pathlib

import numpy
import pytest
import scipy

from repro.experiments import (
    ExperimentRunner,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
    get_scenario,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Fixed root seed for every snapshot (arbitrary, never changes).
GOLDEN_SEED = 20260729

#: The three snapshotted registry scenarios.
GOLDEN_SCENARIOS = ["calibrated-default", "fast-short-range",
                    "rayleigh-mobile"]

#: Trial kind → (trial function, trial count).
GOLDEN_TRIALS = {
    "forward_ber": (forward_ber_trial, 6),
    "feedback_ber": (feedback_ber_trial, 6),
    "frame_delivery": (frame_delivery_trial, 4),
}


def compute_golden(name: str) -> dict:
    """The aggregate snapshot for one scenario (shared with the
    regeneration script under ``benchmarks/``)."""
    spec = get_scenario(name)
    aggregates = {}
    for kind, (trial, max_trials) in GOLDEN_TRIALS.items():
        table = ExperimentRunner(
            trial=trial, max_trials=max_trials, backend="vectorized"
        ).run(spec, seed=GOLDEN_SEED)
        agg = {
            "n_trials": len(table),
            "errors": int(table.sum("errors")),
            "bits": int(table.sum("bits")),
        }
        for column in ("ber", "delivered"):
            if column in table.columns:
                agg[f"mean_{column}"] = float(table.mean(column))
        aggregates[kind] = agg
    return {
        "scenario": name,
        "seed": GOLDEN_SEED,
        "trial_counts": {k: n for k, (_, n) in GOLDEN_TRIALS.items()},
        # Exact tallies are only reproducible under the numerics stack
        # that generated them (BLAS accumulation order can flip a
        # marginal comparator decision); the test skips on mismatch.
        "environment": {
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
        },
        "aggregates": aggregates,
    }


def _assert_no_drift(expected, actual, path):
    if isinstance(expected, dict):
        assert isinstance(actual, dict) and set(expected) == set(actual), (
            f"{path}: key sets differ "
            f"({sorted(expected)} vs {sorted(actual)})"
        )
        for key in expected:
            _assert_no_drift(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, float):
        assert math.isclose(expected, actual, rel_tol=0.0, abs_tol=1e-12), (
            f"{path}: {actual!r} drifted from golden {expected!r}"
        )
    else:
        assert expected == actual, (
            f"{path}: {actual!r} drifted from golden {expected!r}"
        )


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
def test_golden_results(name):
    fixture = GOLDEN_DIR / f"{name}.json"
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        "`PYTHONPATH=src python benchmarks/regenerate_golden.py`"
    )
    expected = json.loads(fixture.read_text())
    current = {"numpy": numpy.__version__, "scipy": scipy.__version__}
    if expected["environment"] != current:
        pytest.skip(
            f"golden fixture generated under {expected['environment']}, "
            f"running under {current}; regenerate with "
            "benchmarks/regenerate_golden.py to compare here"
        )
    _assert_no_drift(expected, compute_golden(name), name)
