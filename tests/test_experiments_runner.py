"""Experiments layer: ExperimentRunner and ResultTable.

The serial-vs-parallel equivalence tests are the load-bearing ones: the
runner's contract is that worker count never changes the records.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    ResultTable,
    ScenarioSpec,
    error_budget,
    forward_ber_trial,
)

#: A cheap operating point for sample-level trials (16 samples/chip).
FAST_SPEC = ScenarioSpec(name="fast-test", sample_rate_hz=32_000.0,
                         source_bandwidth_hz=20e3, distance_m=2.0)


def _counting_trial(spec: ScenarioSpec, rng) -> dict:
    """Module-level (hence picklable) synthetic trial."""
    value = float(rng.normal())
    return {"value": value, "errors": int(abs(value) > 1.0), "bits": 1}


class TestRunnerSerial:
    def test_runs_max_trials_without_stop_rule(self):
        table = ExperimentRunner(trial=_counting_trial, max_trials=9).run(
            ScenarioSpec(), seed=0
        )
        assert len(table) == 9
        assert table.column("trial") == list(range(9))
        assert table.metadata["trials_run"] == 9
        assert not table.metadata["stopped_early"]

    def test_reproducible_for_same_seed(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=6)
        a = runner.run(ScenarioSpec(), seed=7)
        b = runner.run(ScenarioSpec(), seed=7)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=6)
        a = runner.run(ScenarioSpec(), seed=1)
        b = runner.run(ScenarioSpec(), seed=2)
        assert a.records != b.records

    def test_error_budget_stops_early(self):
        runner = ExperimentRunner(
            trial=_counting_trial, max_trials=200, min_trials=3,
            stop_when=error_budget(5),
        )
        table = runner.run(ScenarioSpec(), seed=0)
        assert 3 <= len(table) < 200
        assert sum(table.column("errors")) >= 5
        assert table.metadata["stopped_early"]

    def test_huge_trial_ceiling_is_cheap(self):
        # Seeds are spawned lazily, so a bench-style "no ceiling" value
        # must not allocate max_trials sequences up front.
        runner = ExperimentRunner(
            trial=_counting_trial, max_trials=10**9, min_trials=2,
            stop_when=error_budget(3),
        )
        table = runner.run(ScenarioSpec(), seed=0)
        assert 2 <= len(table) < 100

    def test_min_trials_floor_respected(self):
        runner = ExperimentRunner(
            trial=_counting_trial, max_trials=50, min_trials=10,
            stop_when=lambda records: True,
        )
        assert len(runner.run(ScenarioSpec(), seed=0)) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(trial=_counting_trial, max_trials=0)
        with pytest.raises(ValueError):
            ExperimentRunner(trial=_counting_trial, max_trials=2,
                             min_trials=5)


class TestSerialParallelEquivalence:
    def test_synthetic_trial_bitwise_identical(self):
        kwargs = dict(trial=_counting_trial, max_trials=13, min_trials=2,
                      stop_when=error_budget(4))
        serial = ExperimentRunner(workers=1, **kwargs).run(
            ScenarioSpec(), seed=123
        )
        parallel = ExperimentRunner(workers=3, **kwargs).run(
            ScenarioSpec(), seed=123
        )
        assert serial.records == parallel.records
        assert parallel.metadata["workers"] == 3

    def test_link_trial_bitwise_identical(self):
        kwargs = dict(trial=forward_ber_trial, max_trials=4)
        serial = ExperimentRunner(workers=1, **kwargs).run(FAST_SPEC, seed=5)
        parallel = ExperimentRunner(workers=2, **kwargs).run(FAST_SPEC, seed=5)
        assert serial.records == parallel.records

    def test_chunking_does_not_change_records(self):
        kwargs = dict(trial=_counting_trial, max_trials=12, min_trials=2,
                      stop_when=error_budget(4))
        small = ExperimentRunner(workers=2, chunk_size=2, **kwargs).run(
            ScenarioSpec(), seed=9
        )
        large = ExperimentRunner(workers=2, chunk_size=12, **kwargs).run(
            ScenarioSpec(), seed=9
        )
        assert small.records == large.records


class TestRunnerSweep:
    def test_sweep_one_record_per_value(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=5)
        table = runner.sweep(ScenarioSpec(), "distance_m", [0.5, 1.0, 2.0],
                             seed=0)
        assert table.column("distance_m") == [0.5, 1.0, 2.0]
        assert len(table) == 3
        assert table.metadata["parameter"] == "distance_m"

    def test_sweep_custom_aggregate(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=4)
        table = runner.sweep(
            ScenarioSpec(), "distance_m", [1.0], seed=0,
            aggregate=lambda t: {"total_errors": int(t.sum("errors"))},
        )
        # n_trials is stamped by the sweep driver itself, so a custom
        # aggregate cannot hide the realised per-point trial count.
        assert table.columns == ["distance_m", "total_errors", "n_trials"]
        assert table.column("n_trials") == [4]

    def test_sweep_records_n_trials_per_point(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=6)
        table = runner.sweep(ScenarioSpec(), "distance_m", [0.5, 1.0], seed=0)
        assert table.column("n_trials") == [6, 6]
        assert table.metadata["point_trials"] == [6, 6]

    def test_sweep_early_stop_visible_in_n_trials(self):
        # An error-budget stop that truncates one point must be visible
        # in that point's n_trials, not silently averaged away.
        runner = ExperimentRunner(
            trial=_counting_trial, max_trials=200, min_trials=2,
            stop_when=error_budget(3),
        )
        table = runner.sweep(ScenarioSpec(), "distance_m", [0.5, 1.0], seed=1)
        counts = table.column("n_trials")
        assert counts == table.metadata["point_trials"]
        for n in counts:
            assert 2 <= n < 200

    def test_sweep_aggregate_may_override_n_trials(self):
        # setdefault semantics: an aggregate that reports its own count
        # wins, but the metadata trail still records the realised one.
        runner = ExperimentRunner(trial=_counting_trial, max_trials=4)
        table = runner.sweep(
            ScenarioSpec(), "distance_m", [1.0], seed=0,
            aggregate=lambda t: {"n_trials": -1},
        )
        assert table.column("n_trials") == [-1]
        assert table.metadata["point_trials"] == [4]

    def test_sweep_reproducible(self):
        runner = ExperimentRunner(trial=_counting_trial, max_trials=4)
        a = runner.sweep(ScenarioSpec(), "distance_m", [0.5, 1.5], seed=3)
        b = runner.sweep(ScenarioSpec(), "distance_m", [0.5, 1.5], seed=3)
        assert a.records == b.records


class TestVectorizedBackend:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentRunner(trial=_counting_trial, backend="gpu")

    def test_resolved_backend_inference(self):
        assert ExperimentRunner(trial=_counting_trial).resolved_backend() \
            == "serial"
        assert ExperimentRunner(
            trial=_counting_trial, workers=4
        ).resolved_backend() == "parallel"
        assert ExperimentRunner(
            trial=_counting_trial, backend="vectorized"
        ).resolved_backend() == "vectorized"
        # An explicit backend wins over the worker-count inference.
        assert ExperimentRunner(
            trial=_counting_trial, workers=4, backend="serial"
        ).resolved_backend() == "serial"

    def test_unbatched_trial_raises_clear_error(self):
        runner = ExperimentRunner(
            trial=_counting_trial, max_trials=2, backend="vectorized"
        )
        with pytest.raises(ValueError, match="no batched implementation"):
            runner.run(ScenarioSpec(), seed=0)

    def test_vectorized_matches_serial_records(self):
        kwargs = dict(trial=forward_ber_trial, max_trials=4)
        serial = ExperimentRunner(**kwargs).run(FAST_SPEC, seed=5)
        vector = ExperimentRunner(backend="vectorized", **kwargs).run(
            FAST_SPEC, seed=5
        )
        assert serial.records == vector.records
        assert vector.metadata["backend"] == "vectorized"
        assert serial.metadata["backend"] == "serial"

    def test_vectorized_chunking_does_not_change_records(self):
        kwargs = dict(trial=forward_ber_trial, max_trials=5)
        small = ExperimentRunner(
            backend="vectorized", chunk_size=2, **kwargs
        ).run(FAST_SPEC, seed=9)
        large = ExperimentRunner(
            backend="vectorized", chunk_size=5, **kwargs
        ).run(FAST_SPEC, seed=9)
        assert small.records == large.records

    def test_vectorized_error_budget_stops_early(self):
        runner = ExperimentRunner(
            trial=forward_ber_trial, max_trials=50, min_trials=2,
            stop_when=error_budget(1), backend="vectorized", chunk_size=4,
        )
        serial = ExperimentRunner(
            trial=forward_ber_trial, max_trials=50, min_trials=2,
            stop_when=error_budget(1),
        )
        v = runner.run(FAST_SPEC, seed=11)
        s = serial.run(FAST_SPEC, seed=11)
        assert v.records == s.records


class TestForwardBerTrial:
    def test_record_shape(self):
        rng = np.random.default_rng(0)
        record = forward_ber_trial(FAST_SPEC, rng)
        assert set(record) == {"errors", "bits", "ber"}
        assert record["bits"] == 256
        assert 0.0 <= record["ber"] <= 1.0


class TestResultTable:
    def test_append_locks_columns(self):
        table = ResultTable()
        table.append({"a": 1, "b": 2})
        with pytest.raises(ValueError, match="extra"):
            table.append({"a": 1, "b": 2, "c": 3})
        with pytest.raises(ValueError, match="missing"):
            table.append({"a": 1})

    def test_column_and_stats(self):
        table = ResultTable()
        table.extend([{"x": 1.0}, {"x": 3.0}])
        assert table.column("x") == [1.0, 3.0]
        assert table.sum("x") == pytest.approx(4.0)
        assert table.mean("x") == pytest.approx(2.0)
        with pytest.raises(KeyError):
            table.column("y")

    def test_json_round_trip(self):
        table = ResultTable(metadata={"seed": 3})
        table.extend([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}])
        clone = ResultTable.from_json(table.to_json())
        assert clone.columns == table.columns
        assert clone.records == table.records
        assert clone.metadata == table.metadata

    def test_csv(self):
        table = ResultTable()
        table.extend([{"x": 1, "y": 2.5}])
        lines = table.to_csv().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"

    def test_format_renders_table(self):
        table = ResultTable()
        table.extend([{"x": 1, "y": 2.0}])
        out = table.format()
        assert out.splitlines()[0].startswith("x")

    def test_from_json_preserves_metadata_and_column_order(self):
        # The store round-trips tables through this path, so column
        # *order* (not just the set) and nested metadata must survive.
        table = ResultTable(
            metadata={"scenario": {"name": "x", "distance_m": 0.5},
                      "seed": [1, 2], "note": "z"}
        )
        table.extend([{"zeta": 1, "alpha": 2.5, "mid": "m"}])
        clone = ResultTable.from_json(table.to_json())
        assert clone.columns == ["zeta", "alpha", "mid"]
        assert clone.metadata == table.metadata
        assert clone.to_json() == table.to_json()

    def test_from_json_empty_table(self):
        empty = ResultTable(metadata={"why": "nothing ran"})
        clone = ResultTable.from_json(empty.to_json())
        assert clone.columns == []
        assert clone.records == []
        assert clone.metadata == {"why": "nothing ran"}
        # columns declared but no records is also a legal table
        headed = ResultTable(columns=["a", "b"])
        clone = ResultTable.from_json(headed.to_json())
        assert clone.columns == ["a", "b"]
        assert len(clone) == 0

    def test_from_json_rejects_mismatched_records(self):
        doc = {
            "columns": ["a", "b"],
            "records": [{"a": 1, "b": 2}, {"a": 1, "c": 3}],
            "metadata": {},
        }
        import json as json_mod

        with pytest.raises(ValueError, match="extra"):
            ResultTable.from_json(json_mod.dumps(doc))
        doc["records"] = [{"a": 1}]
        with pytest.raises(ValueError, match="missing"):
            ResultTable.from_json(json_mod.dumps(doc))

    def test_from_json_missing_required_key(self):
        with pytest.raises(KeyError):
            ResultTable.from_json("{}")

    def test_from_sweep(self):
        from repro.analysis.sweep import sweep1d

        sweep = sweep1d("d", [1, 2], lambda d: {"y": d * 10})
        table = ResultTable.from_sweep(sweep)
        assert table.columns == ["d", "y"]
        assert table.column("y") == [10, 20]


class TestAggregates:
    def test_ber_aggregate_pools_counts_exactly(self):
        from repro.experiments import ber_aggregate

        table = ResultTable()
        table.extend([{"errors": 3, "bits": 100},
                      {"errors": 1, "bits": 100}])
        assert ber_aggregate(table) == {
            "errors": 4, "bits": 200, "rate": 0.02
        }
        assert ber_aggregate(ResultTable()) == {
            "errors": 0, "bits": 0, "rate": 0.0
        }

    def test_energy_aggregate_duty_cycle_economics(self):
        from repro.experiments import energy_aggregate

        table = ResultTable()
        table.extend([
            {"delivered": 1.0, "harvested_a_joule": 2e-9,
             "harvested_b_joule": 1e-9, "tx_energy_joule": 4e-8,
             "airtime_seconds": 0.2},
            {"delivered": 0.0, "harvested_a_joule": 4e-9,
             "harvested_b_joule": 3e-9, "tx_energy_joule": 4e-8,
             "airtime_seconds": 0.2},
        ])
        out = energy_aggregate(table)
        assert out["delivered"] == pytest.approx(0.5)
        # cost per delivered frame doubles at 50 % delivery
        assert out["energy_per_delivered_joule"] == pytest.approx(8e-8)
        assert out["harvest_rate_watt"] == pytest.approx(3e-9 / 0.2)
        assert out["sustainable_reports_per_hour"] == pytest.approx(
            (3e-9 / 0.2) / 8e-8 * 3600.0
        )

    def test_energy_aggregate_dead_link_sustains_nothing(self):
        from repro.experiments import energy_aggregate

        table = ResultTable()
        table.append({"delivered": 0.0, "harvested_a_joule": 1e-9,
                      "harvested_b_joule": 1e-9,
                      "tx_energy_joule": 4e-8, "airtime_seconds": 0.2})
        out = energy_aggregate(table)
        assert out["energy_per_delivered_joule"] == 0.0
        assert out["sustainable_reports_per_hour"] == 0.0
        assert energy_aggregate(ResultTable())[
            "sustainable_reports_per_hour"
        ] == 0.0
