"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import integrate_and_dump, moving_average
from repro.dsp.ops import bit_errors, repeat_samples
from repro.dsp.resample import hold_resample
from repro.fullduplex.protocol import FeedbackProtocol
from repro.fullduplex.config import FullDuplexConfig
from repro.hardware.energy import EnergyModel
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.phy import coding as lc
from repro.phy.crc import append_crc16, check_crc16
from repro.phy.framing import Frame, frame_body_bits, parse_frame

bits_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=256).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
nonempty_bits = st.lists(st.integers(0, 1), min_size=1, max_size=256).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestCodingProperties:
    @given(bits=bits_arrays)
    def test_manchester_roundtrip(self, bits):
        assert np.array_equal(
            lc.manchester_decode(lc.manchester_encode(bits)), bits
        )

    @given(bits=bits_arrays, initial=st.integers(0, 1))
    def test_fm0_roundtrip(self, bits, initial):
        chips = lc.fm0_encode(bits, initial_level=initial)
        assert np.array_equal(lc.fm0_decode(chips, initial_level=initial),
                              bits)

    @given(bits=nonempty_bits)
    def test_manchester_exact_dc_balance(self, bits):
        chips = lc.manchester_encode(bits)
        assert int(chips.sum()) == bits.size

    @given(bits=nonempty_bits, initial=st.integers(0, 1))
    def test_fm0_transition_at_every_boundary(self, bits, initial):
        chips = lc.fm0_encode(bits, initial_level=initial)
        level = initial
        for i in range(bits.size):
            assert chips[2 * i] != level
            level = int(chips[2 * i + 1])


class TestCrcProperties:
    @given(bits=bits_arrays)
    def test_roundtrip(self, bits):
        assert check_crc16(append_crc16(bits))

    @given(bits=nonempty_bits, data=st.data())
    def test_any_single_flip_detected(self, bits, data):
        framed = append_crc16(bits)
        pos = data.draw(st.integers(0, framed.size - 1))
        framed[pos] ^= 1
        assert not check_crc16(framed)


class TestFramingProperties:
    @given(payload=st.binary(min_size=0, max_size=64))
    def test_frame_roundtrip(self, payload):
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        frame = Frame(payload_bits=bits)
        parsed, ok = parse_frame(frame_body_bits(frame))
        assert ok
        assert np.array_equal(parsed.payload_bits, bits)


class TestDspProperties:
    @given(
        xs=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
        window=st.integers(1, 50),
    )
    def test_moving_average_bounded_by_extremes(self, xs, window):
        arr = np.asarray(xs)
        out = moving_average(arr, window)
        assert np.all(out >= arr.min() - 1e-6)
        assert np.all(out <= arr.max() + 1e-6)

    @given(
        xs=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=100),
        period=st.integers(1, 20),
    )
    def test_integrate_and_dump_preserves_block_sums(self, xs, period):
        arr = np.asarray(xs)
        out = integrate_and_dump(arr, period)
        n = arr.size // period
        if n:
            assert np.allclose(out.sum() * period,
                               arr[: n * period].sum(), atol=1e-6)

    @given(bits=nonempty_bits, factor=st.integers(1, 16))
    def test_repeat_samples_inverse_of_decimation(self, bits, factor):
        wave = repeat_samples(bits, factor)
        back = integrate_and_dump(wave.astype(float), factor)
        assert np.array_equal((back > 0.5).astype(np.uint8), bits)

    @given(
        symbols=st.lists(st.integers(0, 5), min_size=1, max_size=40),
        total=st.integers(1, 500),
    )
    def test_hold_resample_length_and_order(self, symbols, total):
        arr = np.asarray(symbols)
        if total < arr.size:
            return  # fewer samples than symbols: some symbols vanish
        out = hold_resample(arr, total)
        assert out.size == total
        # order preserved: first sample is first symbol, last is last.
        assert out[0] == arr[0]
        assert out[-1] == arr[-1]

    @given(a=nonempty_bits)
    def test_bit_errors_identity_and_symmetry(self, a):
        b = 1 - a
        assert bit_errors(a, a) == 0
        assert bit_errors(a, b) == a.size


class TestProtocolProperties:
    @given(
        onset=st.integers(0, 4999),
        packet=st.integers(128, 5000),
        r=st.sampled_from([2, 8, 32, 64, 128]),
        latency=st.integers(0, 64),
    )
    @settings(max_examples=200)
    def test_abort_bit_invariants(self, onset, packet, r, latency):
        if onset >= packet:
            onset = packet - 1
        policy = FullDuplexAbortPolicy(asymmetry_ratio=r,
                                       detection_latency_bits=latency)
        stop = policy.abort_bit(onset, packet)
        if stop is not None:
            assert stop < packet
            assert stop % r == 0
            assert stop > onset  # cannot stop before corruption starts

    @given(
        packet=st.integers(64, 4096),
        onset=st.integers(0, 4095),
        corrupted=st.booleans(),
    )
    @settings(max_examples=200)
    def test_verdict_energy_never_exceeds_full_packet(self, packet, onset,
                                                      corrupted):
        cfg = FullDuplexConfig()
        proto = FeedbackProtocol(config=cfg, energy=EnergyModel())
        detection = min(onset, packet - 1) if corrupted else None
        v = proto.verdict(packet, corrupted, detection)
        assert 0 < v.bits_transmitted <= packet
        assert v.tx_energy_joule <= proto.energy.tx_cost(packet) + 1e-18
        assert v.delivered == (not corrupted)

    @given(slots=st.integers(0, 64), detection=st.integers(0, 10_000))
    def test_feedback_stream_is_ack_prefix_nack_suffix(self, slots, detection):
        cfg = FullDuplexConfig()
        proto = FeedbackProtocol(config=cfg, energy=EnergyModel())
        stream = proto.feedback_stream(slots, detection)
        assert stream.size == slots
        # monotone: once NACK, always NACK
        diffs = np.diff(stream.astype(int))
        assert np.all(diffs <= 0) or stream.size < 2


class TestEnergyLedgerProperties:
    @given(
        amounts=st.lists(st.floats(0, 1e-3), min_size=0, max_size=30),
    )
    def test_net_is_harvest_minus_spend(self, amounts):
        from repro.hardware.energy import EnergyLedger

        led = EnergyLedger()
        total_spent = total_harvested = 0.0
        for i, a in enumerate(amounts):
            if i % 2:
                led.spend("op", a)
                total_spent += a
            else:
                led.harvest(a)
                total_harvested += a
        assert led.net_joule == np.float64(total_harvested) - total_spent
