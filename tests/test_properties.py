"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import (
    integrate_and_dump,
    moving_average,
    single_pole_lowpass,
)
from repro.dsp.ops import bit_errors, repeat_samples
from repro.dsp.resample import hold_resample
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.protocol import FeedbackProtocol
from repro.hardware.energy import EnergyModel
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.phy import coding as lc
from repro.phy.crc import append_crc16, check_crc16
from repro.phy.framing import Frame, frame_body_bits, parse_frame

bits_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=256).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)
nonempty_bits = st.lists(st.integers(0, 1), min_size=1, max_size=256).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestCodingProperties:
    @given(bits=bits_arrays)
    def test_manchester_roundtrip(self, bits):
        assert np.array_equal(
            lc.manchester_decode(lc.manchester_encode(bits)), bits
        )

    @given(bits=bits_arrays, initial=st.integers(0, 1))
    def test_fm0_roundtrip(self, bits, initial):
        chips = lc.fm0_encode(bits, initial_level=initial)
        assert np.array_equal(lc.fm0_decode(chips, initial_level=initial),
                              bits)

    @given(bits=nonempty_bits)
    def test_manchester_exact_dc_balance(self, bits):
        chips = lc.manchester_encode(bits)
        assert int(chips.sum()) == bits.size

    @given(bits=nonempty_bits, initial=st.integers(0, 1))
    def test_fm0_transition_at_every_boundary(self, bits, initial):
        chips = lc.fm0_encode(bits, initial_level=initial)
        level = initial
        for i in range(bits.size):
            assert chips[2 * i] != level
            level = int(chips[2 * i + 1])


class TestCrcProperties:
    @given(bits=bits_arrays)
    def test_roundtrip(self, bits):
        assert check_crc16(append_crc16(bits))

    @given(bits=nonempty_bits, data=st.data())
    def test_any_single_flip_detected(self, bits, data):
        framed = append_crc16(bits)
        pos = data.draw(st.integers(0, framed.size - 1))
        framed[pos] ^= 1
        assert not check_crc16(framed)


class TestFramingProperties:
    @given(payload=st.binary(min_size=0, max_size=64))
    def test_frame_roundtrip(self, payload):
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        frame = Frame(payload_bits=bits)
        parsed, ok = parse_frame(frame_body_bits(frame))
        assert ok
        assert np.array_equal(parsed.payload_bits, bits)


class TestDspProperties:
    @given(
        xs=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
        window=st.integers(1, 50),
    )
    def test_moving_average_bounded_by_extremes(self, xs, window):
        arr = np.asarray(xs)
        out = moving_average(arr, window)
        assert np.all(out >= arr.min() - 1e-6)
        assert np.all(out <= arr.max() + 1e-6)

    @given(
        xs=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=100),
        period=st.integers(1, 20),
    )
    def test_integrate_and_dump_preserves_block_sums(self, xs, period):
        arr = np.asarray(xs)
        out = integrate_and_dump(arr, period)
        n = arr.size // period
        if n:
            assert np.allclose(out.sum() * period,
                               arr[: n * period].sum(), atol=1e-6)

    @given(bits=nonempty_bits, factor=st.integers(1, 16))
    def test_repeat_samples_inverse_of_decimation(self, bits, factor):
        wave = repeat_samples(bits, factor)
        back = integrate_and_dump(wave.astype(float), factor)
        assert np.array_equal((back > 0.5).astype(np.uint8), bits)

    @given(
        symbols=st.lists(st.integers(0, 5), min_size=1, max_size=40),
        total=st.integers(1, 500),
    )
    def test_hold_resample_length_and_order(self, symbols, total):
        arr = np.asarray(symbols)
        if total < arr.size:
            return  # fewer samples than symbols: some symbols vanish
        out = hold_resample(arr, total)
        assert out.size == total
        # order preserved: first sample is first symbol, last is last.
        assert out[0] == arr[0]
        assert out[-1] == arr[-1]

    @given(a=nonempty_bits)
    def test_bit_errors_identity_and_symmetry(self, a):
        b = 1 - a
        assert bit_errors(a, a) == 0
        assert bit_errors(a, b) == a.size


class TestProtocolProperties:
    @given(
        onset=st.integers(0, 4999),
        packet=st.integers(128, 5000),
        r=st.sampled_from([2, 8, 32, 64, 128]),
        latency=st.integers(0, 64),
    )
    @settings(max_examples=200)
    def test_abort_bit_invariants(self, onset, packet, r, latency):
        if onset >= packet:
            onset = packet - 1
        policy = FullDuplexAbortPolicy(asymmetry_ratio=r,
                                       detection_latency_bits=latency)
        stop = policy.abort_bit(onset, packet)
        if stop is not None:
            assert stop < packet
            assert stop % r == 0
            assert stop > onset  # cannot stop before corruption starts

    @given(
        packet=st.integers(64, 4096),
        onset=st.integers(0, 4095),
        corrupted=st.booleans(),
    )
    @settings(max_examples=200)
    def test_verdict_energy_never_exceeds_full_packet(self, packet, onset,
                                                      corrupted):
        cfg = FullDuplexConfig()
        proto = FeedbackProtocol(config=cfg, energy=EnergyModel())
        detection = min(onset, packet - 1) if corrupted else None
        v = proto.verdict(packet, corrupted, detection)
        assert 0 < v.bits_transmitted <= packet
        assert v.tx_energy_joule <= proto.energy.tx_cost(packet) + 1e-18
        assert v.delivered == (not corrupted)

    @given(slots=st.integers(0, 64), detection=st.integers(0, 10_000))
    def test_feedback_stream_is_ack_prefix_nack_suffix(self, slots, detection):
        cfg = FullDuplexConfig()
        proto = FeedbackProtocol(config=cfg, energy=EnergyModel())
        stream = proto.feedback_stream(slots, detection)
        assert stream.size == slots
        # monotone: once NACK, always NACK
        diffs = np.diff(stream.astype(int))
        assert np.all(diffs <= 0) or stream.size < 2


#: (lanes, samples) batches of finite floats for the batched kernels.
float_batches = st.tuples(
    st.integers(1, 5), st.integers(1, 64), st.integers(0, 2**32 - 1)
).map(
    lambda t: np.random.default_rng(t[2]).uniform(-1e3, 1e3, (t[0], t[1]))
)

#: (lanes, bits) batches of bits.
bit_batches = st.tuples(
    st.integers(1, 5), st.integers(1, 32), st.integers(0, 2**32 - 1)
).map(
    lambda t: np.random.default_rng(t[2]).integers(
        0, 2, (t[0], t[1]), dtype=np.uint8
    )
)

codings = st.sampled_from(["nrz", "manchester", "fm0"])


class TestBatchedFilterProperties:
    """The 2-D filter paths: batch-of-1 == scalar, permutation
    invariance, and shape/dtype preservation — the invariants the
    batched trial engine's equivalence guarantee decomposes into."""

    @given(batch=float_batches, window=st.integers(1, 16))
    def test_moving_average_batch_of_one_and_rows(self, batch, window):
        out = moving_average(batch, window)
        assert out.shape == batch.shape and out.dtype == np.float64
        for row in range(batch.shape[0]):
            scalar = moving_average(batch[row], window)
            assert np.array_equal(out[row], scalar)
            assert np.array_equal(
                moving_average(batch[row][None, :], window)[0], scalar
            )

    @given(batch=float_batches, seed=st.integers(0, 2**16))
    def test_moving_average_lane_permutation(self, batch, seed):
        perm = np.random.default_rng(seed).permutation(batch.shape[0])
        assert np.array_equal(
            moving_average(batch[perm], 4), moving_average(batch, 4)[perm]
        )

    @given(batch=float_batches, alpha_pct=st.integers(1, 100))
    @settings(deadline=None)  # first example pays the scipy import
    def test_single_pole_batch_of_one_and_rows(self, batch, alpha_pct):
        alpha = alpha_pct / 100.0
        out = single_pole_lowpass(batch, alpha)
        assert out.shape == batch.shape and out.dtype == np.float64
        for row in range(batch.shape[0]):
            assert np.array_equal(
                out[row], single_pole_lowpass(batch[row], alpha)
            )

    @given(batch=float_batches, period=st.integers(1, 8))
    def test_integrate_and_dump_batch_of_one_and_rows(self, batch, period):
        out = integrate_and_dump(batch, period)
        assert out.shape == (batch.shape[0], batch.shape[1] // period)
        assert out.dtype == np.float64
        for row in range(batch.shape[0]):
            assert np.array_equal(
                out[row], integrate_and_dump(batch[row], period)
            )


class TestBatchedCodingProperties:
    @given(bits=bit_batches, coding=codings)
    def test_encode_batch_rows_match_scalar(self, bits, coding):
        chips = lc.encode_batch(bits, coding)
        assert chips.dtype == np.uint8
        assert chips.shape == (
            bits.shape[0], bits.shape[1] * lc.CHIPS_PER_BIT[coding]
        )
        for row in range(bits.shape[0]):
            assert np.array_equal(chips[row], lc.encode(bits[row], coding))

    @given(bits=bit_batches, coding=codings, seed=st.integers(0, 2**16))
    def test_encode_batch_lane_permutation(self, bits, coding, seed):
        perm = np.random.default_rng(seed).permutation(bits.shape[0])
        assert np.array_equal(
            lc.encode_batch(bits[perm], coding),
            lc.encode_batch(bits, coding)[perm],
        )


class TestBatchedDecodeProperties:
    @given(bits=bit_batches, coding=codings, seed=st.integers(0, 2**32 - 1))
    def test_soft_decode_batch_rows_match_receiver(self, bits, coding, seed):
        from repro.phy.config import PhyConfig
        from repro.phy.receiver import BackscatterReceiver
        from repro.phy.softdecode import soft_decode_bits_batch

        config = PhyConfig(coding=coding)
        rng = np.random.default_rng(seed)
        chips = lc.encode_batch(bits, coding).astype(float)
        # Noisy-but-positive soft integrals around the chip levels.
        soft = 1.0 + chips + 0.2 * rng.uniform(-1, 1, chips.shape)
        polarity = rng.choice([1, -1], size=bits.shape[0])
        decoded = soft_decode_bits_batch(soft, config, polarity)
        assert decoded.dtype == np.uint8
        assert decoded.shape == bits.shape
        receiver = BackscatterReceiver(config=config)
        for row in range(bits.shape[0]):
            assert np.array_equal(
                decoded[row],
                receiver.soft_decode_bits(soft[row], int(polarity[row])),
            )

    @given(bits=bit_batches, lanes=st.integers(1, 5))
    def test_clean_manchester_chips_resolve_positive_polarity(
        self, bits, lanes
    ):
        # The pilot is a shared prefix: every lane transmits the same
        # pilot bits, so tile one row across the lanes.
        from repro.phy.config import PhyConfig
        from repro.phy.softdecode import resolve_polarity_batch

        config = PhyConfig(coding="manchester")
        pilot = bits[0]
        tiled = np.tile(pilot, (lanes, 1))
        soft = 1.0 + lc.encode_batch(tiled, "manchester").astype(float)
        polarity = resolve_polarity_batch(soft, pilot, config)
        assert polarity.shape == (lanes,)
        assert np.all(polarity == 1)

    @given(bits=bit_batches)
    def test_inverted_manchester_lane_resolves_negative(self, bits):
        from repro.phy.config import PhyConfig
        from repro.phy.softdecode import resolve_polarity_batch

        config = PhyConfig(coding="manchester")
        pilot = bits[0]
        tiled = np.tile(pilot, (bits.shape[0], 1))
        soft = 1.0 + lc.encode_batch(tiled, "manchester").astype(float)
        soft[0] = 3.0 - soft[0]  # reflect lane 0's chips about the mean
        polarity = resolve_polarity_batch(soft, pilot, config)
        assert polarity[0] == -1
        assert np.all(polarity[1:] == 1)

    @given(bits=bit_batches, lanes=st.integers(1, 4))
    def test_fm0_polarity_prefers_positive_on_tie(self, bits, lanes):
        # FM0 is transition-coded: flipping every hard chip preserves
        # the transitions, so both polarities decode identically and
        # the tie must resolve to +1.
        from repro.phy.config import PhyConfig
        from repro.phy.softdecode import resolve_polarity_batch

        config = PhyConfig(coding="fm0")
        pilot = bits[0]
        tiled = np.tile(pilot, (lanes, 1))
        soft = 1.0 + lc.encode_batch(tiled, "fm0").astype(float)
        polarity = resolve_polarity_batch(soft, pilot, config)
        assert np.all(polarity == 1)


class TestBatchedWaveformProperties:
    @given(bits=bit_batches)
    def test_feedback_waveform_rows_match_scalar(self, bits):
        from repro.fullduplex.batch import feedback_waveform_batch
        from repro.fullduplex.config import FullDuplexConfig
        from repro.fullduplex.feedback import feedback_waveform

        config = FullDuplexConfig()
        waves = feedback_waveform_batch(bits, config)
        assert waves.dtype == np.uint8
        assert waves.shape == (
            bits.shape[0],
            bits.shape[1] * config.samples_per_feedback_bit,
        )
        for row in range(bits.shape[0]):
            assert np.array_equal(
                waves[row], feedback_waveform(bits[row], config)
            )

    @given(
        seeds=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=4),
        count=st.integers(0, 256),
    )
    @settings(max_examples=25)
    def test_ambient_batch_rows_match_scalar(self, seeds, count):
        from repro.ambient import OfdmLikeSource, ToneSource

        for source in (
            OfdmLikeSource(sample_rate_hz=32_000.0, bandwidth_hz=20e3,
                           subcarriers=8),
            ToneSource(sample_rate_hz=32_000.0),
            ToneSource(sample_rate_hz=32_000.0, offset_hz=500.0),
        ):
            batch = source.batch_samples(
                count, [np.random.default_rng(s) for s in seeds]
            )
            assert batch.shape == (len(seeds), count)
            for row, seed in enumerate(seeds):
                assert np.array_equal(
                    batch[row],
                    source.samples(count, np.random.default_rng(seed)),
                )


class TestEnergyLedgerProperties:
    @given(
        amounts=st.lists(st.floats(0, 1e-3), min_size=0, max_size=30),
    )
    def test_net_is_harvest_minus_spend(self, amounts):
        from repro.hardware.energy import EnergyLedger

        led = EnergyLedger()
        total_spent = total_harvested = 0.0
        for i, a in enumerate(amounts):
            if i % 2:
                led.spend("op", a)
                total_spent += a
            else:
                led.harvest(a)
                total_harvested += a
        assert led.net_joule == np.float64(total_harvested) - total_spent
