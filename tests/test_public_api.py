"""Public-API surface tests: the contract downstream users rely on."""

import importlib
import inspect

import numpy as np
import pytest

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted(self):
        # A sorted __all__ keeps diffs reviewable.
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.utils", "repro.dsp", "repro.ambient", "repro.channel",
        "repro.hardware", "repro.phy", "repro.fullduplex", "repro.mac",
        "repro.analysis", "repro.cli",
    ])
    def test_subpackages_import_cleanly(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} needs a module docstring"

    @pytest.mark.parametrize("module", [
        "repro.utils", "repro.dsp", "repro.ambient", "repro.channel",
        "repro.hardware", "repro.phy", "repro.fullduplex", "repro.mac",
        "repro.analysis",
    ])
    def test_exported_names_have_docstrings(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module}.{name} lacks a docstring"


class TestDocstringExample:
    def test_package_quickstart_runs(self):
        """The example in repro/__init__'s docstring must stay true."""
        from repro import (
            ChannelModel,
            FullDuplexConfig,
            FullDuplexLink,
            OfdmLikeSource,
            Scene,
            random_bits,
            random_frame,
        )

        cfg = FullDuplexConfig()
        source = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                                bandwidth_hz=200e3)
        link = FullDuplexLink(cfg, source)
        scene = Scene.two_device_line(device_separation_m=1.0)
        gains = ChannelModel().realize(scene, rng=np.random.default_rng(0))
        exchange = link.run(gains, random_frame(16, rng=0),
                            feedback_bits=random_bits(0, 4), rng=1)
        assert exchange.data_delivered
        assert exchange.feedback_errors == 0


class TestReadmeSnippet:
    def test_readme_quickstart_runs(self):
        from repro import (
            ChannelModel,
            FullDuplexConfig,
            FullDuplexLink,
            OfdmLikeSource,
            Scene,
            random_bits,
            random_frame,
        )

        cfg = FullDuplexConfig()
        src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                             bandwidth_hz=200e3)
        link = FullDuplexLink(cfg, src)
        scene = Scene.two_device_line(device_separation_m=0.5)
        gains = ChannelModel().realize(scene,
                                       rng=np.random.default_rng(0))
        exchange = link.run(gains, random_frame(64, rng=0),
                            feedback_bits=random_bits(0, 6), rng=1)
        assert exchange.data_delivered
        assert exchange.feedback_sent.size == 6
