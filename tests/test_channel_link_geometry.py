"""Scene geometry, noise and composite channel tests."""

import numpy as np
import pytest

from repro.channel.geometry import Node, Scene
from repro.channel.link import ChannelModel
from repro.channel.noise import awgn, complex_awgn


class TestNodeScene:
    def test_distance(self):
        a = Node("a", 0.0, 0.0)
        b = Node("b", 3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_floor(self):
        a = Node("a", 0.0, 0.0)
        assert a.distance_to(Node("b", 0.0, 0.0)) == pytest.approx(1e-3)

    def test_add_and_lookup(self):
        scene = Scene()
        scene.place("source", 0, 10)
        scene.place("t1", 0, 0)
        assert scene.distance("source", "t1") == pytest.approx(10.0)

    def test_duplicate_name_rejected(self):
        scene = Scene()
        scene.place("x", 0, 0)
        with pytest.raises(ValueError):
            scene.place("x", 1, 1)

    def test_move(self):
        scene = Scene()
        scene.place("x", 0, 0)
        scene.move("x", 5, 0)
        scene.place("y", 0, 0)
        assert scene.distance("x", "y") == pytest.approx(5.0)

    def test_move_missing(self):
        with pytest.raises(KeyError):
            Scene().move("ghost", 0, 0)

    def test_missing_distance(self):
        with pytest.raises(KeyError):
            Scene().distance("a", "b")

    def test_device_names_excludes_source(self):
        scene = Scene.two_device_line(1.0)
        assert sorted(scene.device_names()) == ["alice", "bob"]

    def test_two_device_line_geometry(self):
        scene = Scene.two_device_line(2.0, source_distance_m=100.0)
        assert scene.distance("alice", "bob") == pytest.approx(2.0)
        assert scene.distance("source", "alice") == pytest.approx(
            scene.distance("source", "bob")
        )

    def test_cluster_count_and_radius(self):
        scene = Scene.cluster(10, radius_m=3.0, rng=0)
        assert len(scene.device_names()) == 10
        for name in scene.device_names():
            node = scene.nodes[name]
            assert np.hypot(node.x, node.y) <= 3.0 + 1e-9

    def test_bad_construction_args(self):
        with pytest.raises(ValueError):
            Scene.two_device_line(0.0)
        with pytest.raises(ValueError):
            Scene.cluster(0, 1.0)


class TestNoise:
    def test_power(self):
        n = complex_awgn(100_000, 2e-9, rng=0)
        assert np.mean(np.abs(n) ** 2) == pytest.approx(2e-9, rel=0.05)

    def test_zero_power_is_silent(self):
        assert np.all(complex_awgn(10, 0.0) == 0)

    def test_awgn_adds(self):
        x = np.ones(1000, dtype=complex)
        y = awgn(x, 1e-2, rng=1)
        assert not np.allclose(y, x)
        assert np.mean(np.abs(y - x) ** 2) == pytest.approx(1e-2, rel=0.2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            complex_awgn(10, -1.0)


class TestChannelModel:
    def test_requires_source(self):
        scene = Scene()
        scene.place("t1", 0, 0)
        with pytest.raises(ValueError, match="source"):
            ChannelModel().realize(scene)

    def test_reciprocity(self):
        gains = ChannelModel().realize(Scene.two_device_line(1.0), rng=0)
        assert gains.gain("alice", "bob") == gains.gain("bob", "alice")
        assert gains.gain("source", "alice") == gains.gain("alice", "source")

    def test_missing_path(self):
        gains = ChannelModel().realize(Scene.two_device_line(1.0), rng=0)
        with pytest.raises(KeyError):
            gains.gain("alice", "carol")

    def test_direct_power_scales_with_source_power(self):
        scene = Scene.two_device_line(1.0)
        g1 = ChannelModel(source_power_watt=1e3).realize(scene, rng=0)
        g2 = ChannelModel(source_power_watt=2e3).realize(scene, rng=0)
        assert g2.direct_power("bob") == pytest.approx(
            2 * g1.direct_power("bob")
        )

    def test_backscatter_is_dyadic_product(self):
        gains = ChannelModel().realize(Scene.two_device_line(1.0), rng=0)
        expected = gains.source_power_watt * abs(
            gains.gain("source", "alice") * gains.gain("alice", "bob")
        ) ** 2
        assert gains.backscatter_power("alice", "bob") == pytest.approx(expected)

    def test_backscatter_much_weaker_than_direct(self):
        gains = ChannelModel().realize(Scene.two_device_line(1.0), rng=0)
        assert gains.backscatter_power("alice", "bob") < (
            0.01 * gains.direct_power("bob")
        )


class TestReceivedComposition:
    def setup_method(self):
        self.scene = Scene.two_device_line(0.5)
        self.model = ChannelModel(noise_power_watt=0.0)
        self.gains = self.model.realize(self.scene, rng=0)

    def test_direct_only(self):
        x = np.ones(64, dtype=complex)
        y = self.gains.received("bob", x, include_noise=False)
        expected = np.sqrt(self.gains.source_power_watt) * self.gains.gain(
            "source", "bob"
        )
        assert np.allclose(y, expected)

    def test_reflection_adds_dyadic_term(self):
        x = np.ones(64, dtype=complex)
        gamma = np.full(64, 0.5)
        y = self.gains.received(
            "bob", x, {"alice": gamma}, include_noise=False
        )
        direct = np.sqrt(self.gains.source_power_watt) * self.gains.gain(
            "source", "bob"
        )
        dyadic = (
            np.sqrt(self.gains.source_power_watt)
            * self.gains.gain("source", "alice")
            * self.gains.gain("alice", "bob")
            * 0.5
        )
        assert np.allclose(y, direct + dyadic)

    def test_own_reflection_ignored(self):
        x = np.ones(32, dtype=complex)
        y0 = self.gains.received("bob", x, include_noise=False)
        y1 = self.gains.received(
            "bob", x, {"bob": np.ones(32)}, include_noise=False
        )
        assert np.allclose(y0, y1)

    def test_reflection_shape_mismatch(self):
        with pytest.raises(ValueError):
            self.gains.received(
                "bob", np.ones(32, dtype=complex), {"alice": np.ones(16)}
            )

    def test_noise_included_by_default(self):
        model = ChannelModel(noise_power_watt=1e-9)
        gains = model.realize(self.scene, rng=0)
        x = np.ones(256, dtype=complex)
        y1 = gains.received("bob", x, rng=1)
        y2 = gains.received("bob", x, rng=2)
        assert not np.allclose(y1, y2)
