"""Observability woven through the stack: the do-no-harm contract.

The load-bearing acceptance property: **instrumentation never changes
the science**.  An instrumented run must produce bitwise-identical
records, store bytes and result keys to an uninstrumented one, on
every backend — spans read clocks and bump counters, nothing else.
The rest of the suite checks the instrumentation itself: the corrupt
store entry's counter + warning, engine-cache churn accounting, the
campaign trace reconciling exactly with ``CampaignRunResult``, and
the CLI's ``--trace``/``--metrics``/``obs report`` surface.
"""

import json
import logging

import pytest

from repro import obs
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments import (
    ExperimentRunner,
    ScenarioSpec,
    forward_ber_trial,
)
from repro.store import ResultStore, cached_run, result_key

#: Cheap sample-level operating point (16 samples/chip).
FAST_SPEC = ScenarioSpec(name="fast-obs-test", sample_rate_hz=32_000.0,
                         source_bandwidth_hz=20e3, distance_m=0.6)

TINY_CAMPAIGN = CampaignSpec(
    name="tiny-obs-test",
    description="two-point campaign for trace reconciliation",
    scenario="calibrated-default",
    overrides={"sample_rate_hz": 32_000.0, "source_bandwidth_hz": 20e3},
    grid={"distance_m": (0.4, 0.8)},
    kinds=("forward-ber",),
    n_trials=3,
    seed=11,
)


@pytest.fixture(autouse=True)
def _no_session_leak():
    obs.stop()
    yield
    obs.stop()


class TestBitwiseEquivalence:
    """Instrumented == uninstrumented, byte for byte."""

    @pytest.mark.parametrize("backend", ["serial", "parallel", "vectorized"])
    def test_runner_records_identical(self, backend, tmp_path):
        runner = ExperimentRunner(
            trial=forward_ber_trial, max_trials=4,
            workers=2 if backend == "parallel" else 1,
            backend=backend,
        )
        plain = runner.run(FAST_SPEC, seed=123).to_json()

        obs.start(trace_path=tmp_path / f"{backend}.jsonl")
        traced = runner.run(FAST_SPEC, seed=123).to_json()
        session = obs.stop()

        assert traced == plain
        # the run really was traced, not silently skipped
        assert session.metrics.snapshot()["counters"]["runner.trials"] == 4

    def test_store_bytes_and_keys_identical(self, tmp_path):
        runner = ExperimentRunner(trial=forward_ber_trial, max_trials=3)

        plain_store = ResultStore(tmp_path / "plain")
        plain_out = cached_run(plain_store, runner, FAST_SPEC, seed=7)

        obs.start(trace_path=tmp_path / "trace.jsonl")
        traced_store = ResultStore(tmp_path / "traced")
        traced_out = cached_run(traced_store, runner, FAST_SPEC, seed=7)
        obs.stop()

        assert traced_out.key == plain_out.key
        assert traced_out.outcome == plain_out.outcome == "miss"
        plain_bytes = plain_store.path_for(plain_out.key).read_bytes()
        traced_bytes = traced_store.path_for(traced_out.key).read_bytes()
        assert traced_bytes == plain_bytes

    def test_trace_never_reaches_record_bytes(self, tmp_path):
        # Same store, cold (traced) then warm (untraced): the warm hit
        # must return the very bytes the traced run stored.
        store = ResultStore(tmp_path / "store")
        runner = ExperimentRunner(trial=forward_ber_trial, max_trials=3)
        obs.start(trace_path=tmp_path / "t.jsonl")
        cold = cached_run(store, runner, FAST_SPEC, seed=9)
        obs.stop()
        warm = cached_run(store, runner, FAST_SPEC, seed=9)
        assert warm.outcome == "hit"
        assert warm.table.to_json() == cold.table.to_json()


class TestCorruptEntryPath:
    def test_corrupt_entry_counts_and_warns_with_key(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=forward_ber_trial, max_trials=2)
        out = cached_run(store, runner, FAST_SPEC, seed=3)
        path = store.path_for(out.key)
        path.write_bytes(b"garbage, not a codec payload")

        session = obs.start()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get(out.key) is None
        obs.stop()

        counters = session.metrics.snapshot()["counters"]
        assert counters["store.corrupt"] == 1
        record = next(
            r for r in caplog.records if "treating as a miss" in r.message
        )
        assert out.key.digest in record.getMessage()
        assert record.name == "repro.store"

    def test_corrupt_legacy_entry_counts_too(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 2, 0)
        legacy = store.legacy_path_for(key)
        legacy.parent.mkdir(parents=True)
        legacy.write_text("{not json")

        session = obs.start()
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.get(key) is None
        obs.stop()
        assert session.metrics.snapshot()["counters"]["store.corrupt"] == 1
        assert any(key.digest in r.getMessage() for r in caplog.records)


class TestEngineCacheChurn:
    def test_lru_eviction_order_and_metrics(self, monkeypatch):
        from collections import OrderedDict

        from repro.experiments import batch

        monkeypatch.setattr(batch, "MAX_CACHED_ENGINES", 2)
        cache = OrderedDict()
        specs = [FAST_SPEC.replace(distance_m=d) for d in (0.4, 0.5, 0.6)]
        built = []

        def build(spec):
            built.append(spec.distance_m)
            return object()

        session = obs.start()
        # fill: build A, B; hit A (refreshes A over B)
        batch._cached_engine(cache, specs[0], build, label="phy_engine")
        batch._cached_engine(cache, specs[1], build, label="phy_engine")
        a = batch._cached_engine(cache, specs[0], build, label="phy_engine")
        # C overflows the cap: B is LRU and must be evicted, A survives
        batch._cached_engine(cache, specs[2], build, label="phy_engine")
        obs.stop()

        assert built == [0.4, 0.5, 0.6]
        assert list(cache) == [specs[0], specs[2]]
        # A evicted? no: the refreshed A is still cached
        assert batch._cached_engine(
            cache, specs[0], build, label="phy_engine"
        ) is a
        counters = session.metrics.snapshot()["counters"]
        assert counters["batch.phy_engine.build"] == 3
        assert counters["batch.phy_engine.hit"] == 1
        assert counters["batch.phy_engine.evict"] == 1

    def test_rebuild_after_eviction_counts_as_build(self, monkeypatch):
        from collections import OrderedDict

        from repro.experiments import batch

        monkeypatch.setattr(batch, "MAX_CACHED_ENGINES", 1)
        cache = OrderedDict()
        specs = [FAST_SPEC.replace(distance_m=d) for d in (0.4, 0.5)]

        session = obs.start()
        for spec in (specs[0], specs[1], specs[0], specs[1]):
            batch._cached_engine(
                cache, spec, lambda s: object(), label="mac_engine"
            )
        obs.stop()
        counters = session.metrics.snapshot()["counters"]
        # every call misses: the single slot thrashes
        assert counters["batch.mac_engine.build"] == 4
        assert counters["batch.mac_engine.evict"] == 3
        assert counters.get("batch.mac_engine.hit", 0) == 0


class TestCampaignTraceReconciliation:
    def test_trace_report_matches_run_result(self, tmp_path):
        runner = CampaignRunner(store=ResultStore(tmp_path / "store"))

        obs.start(trace_path=tmp_path / "cold.jsonl")
        cold = runner.run(TINY_CAMPAIGN)
        obs.stop()
        cold_report = obs.report_from_trace(tmp_path / "cold.jsonl")
        c = cold_report.campaign
        assert c["units"] == len(cold.units)
        assert c["outcome_counts"] == cold.outcome_counts()
        assert c["trials_computed"] == cold.trials_computed
        assert c["store_hit_rate"] == 0.0

        obs.start(trace_path=tmp_path / "warm.jsonl")
        warm = runner.run(TINY_CAMPAIGN)
        obs.stop()
        w = obs.report_from_trace(tmp_path / "warm.jsonl").campaign
        assert warm.trials_computed == 0
        assert w["trials_computed"] == 0
        assert w["outcome_counts"] == {"hit": len(warm.units)}
        assert w["store_hit_rate"] == 1.0

    def test_span_tree_nests_units_under_run(self, tmp_path):
        runner = CampaignRunner(store=ResultStore(tmp_path / "store"))
        obs.start(trace_path=tmp_path / "t.jsonl")
        runner.run(TINY_CAMPAIGN)
        obs.stop()
        events = obs.load_trace(tmp_path / "t.jsonl")
        spans = [e for e in events if e["type"] == "span"]
        run = next(s for s in spans if s["name"] == "campaign.run")
        units = [s for s in spans if s["name"] == "campaign.unit"]
        assert all(u["parent"] == run["id"] for u in units)
        gets = [s for s in spans if s["name"] == "store.cached_run"]
        unit_ids = {u["id"] for u in units}
        assert all(g["parent"] in unit_ids for g in gets)


class TestCliObservability:
    def test_sweep_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "sweep.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "sweep", "--values", "0.5", "--trials", "2",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        assert f"wrote {metrics}" in out
        events = obs.load_trace(trace)
        assert any(e.get("name") == "runner.run" for e in events)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["runner.trials"] == 2

    def test_quiet_suppresses_write_notices(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "sweep.jsonl"
        code = main([
            "-q", "sweep", "--values", "0.5", "--trials", "2",
            "--trace", str(trace),
        ])
        assert code == 0
        assert "wrote" not in capsys.readouterr().out
        assert trace.is_file()

    def test_campaign_trace_flag_and_obs_report(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        trace = tmp_path / "campaign.jsonl"
        for _ in range(2):  # cold, then warm over the same store
            code = main([
                "-q", "campaign", "run", "fig-ber-vs-distance",
                "--store", str(store), "--trials", "2",
                "--trace", str(trace),
            ])
            assert code == 0
        capsys.readouterr()
        code = main(["obs", "report", str(trace),
                     "--json", str(tmp_path / "report.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "store hit rate  100.0%" in out
        assert "trials computed 0" in out
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["campaign"]["store_hit_rate"] == 1.0
        assert doc["campaign"]["trials_computed"] == 0

    def test_obs_report_does_not_clobber_its_input(self, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        main(["-q", "sweep", "--values", "0.5", "--trials", "2",
              "--trace", str(trace)])
        before = trace.read_bytes()
        assert main(["obs", "report", str(trace)]) == 0
        assert trace.read_bytes() == before

    def test_obs_report_bad_trace_is_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("junk\n")
        with pytest.raises(SystemExit) as exc:
            main(["obs", "report", str(bad)])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_verbosity_flags_set_logger_levels(self, capsys):
        from repro.cli import main

        assert main(["-v", "scenario", "list"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
        assert main(["-q", "scenario", "list"]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        assert main(["scenario", "list"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING
        capsys.readouterr()
