"""The content-addressed result store: keys, disk layout, cached_run.

The load-bearing property is the prefix contract: for a fixed budget and
root seed, trial ``i``'s record is independent of how many trials run
and of the backend — so an exact hit, a truncation of a larger cached
run and a top-up of a smaller one must all serialise to the very bytes
a cold run would have stored.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    ResultTable,
    ScenarioSpec,
    error_budget,
    forward_ber_trial,
)
from repro.store import (
    CODE_VERSION,
    ResultStore,
    cached_run,
    canonical_json,
    canonical_seed,
    result_key,
    trial_kind_of,
)

#: Cheap sample-level operating point (16 samples/chip).
FAST_SPEC = ScenarioSpec(name="fast-test", sample_rate_hz=32_000.0,
                         source_bandwidth_hz=20e3, distance_m=2.0)


def _synthetic_trial(spec: ScenarioSpec, rng) -> dict:
    """Module-level (picklable) trial: one normal draw per trial."""
    value = float(rng.normal())
    return {"value": value, "errors": int(abs(value) > 1.0), "bits": 1}


class TestCanonicalJson:
    def test_sorted_keys_and_no_whitespace(self):
        text = canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
        assert text == '{"a":{"c":3,"d":2},"b":1}'

    def test_key_order_irrelevant(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )

    def test_floats_round_trip_exactly(self):
        import json

        doc = {"v": 0.1 + 0.2, "w": 1e-13, "x": 256000.0}
        text = canonical_json(doc)
        assert canonical_json(json.loads(text)) == text

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"v": float("nan")})


class TestResultKey:
    def test_stable_for_equal_inputs(self):
        a = result_key(FAST_SPEC, "forward-ber", 10, 0)
        b = result_key(FAST_SPEC.replace(), "forward-ber", 10, 0)
        assert a == b

    @pytest.mark.parametrize(
        "change",
        [
            dict(trial_kind="feedback-ber"),
            dict(n_trials=11),
            dict(seed=1),
            dict(code_version="0.0.0-test"),
        ],
    )
    def test_every_component_changes_the_digest(self, change):
        base = dict(trial_kind="forward-ber", n_trials=10, seed=0,
                    code_version=CODE_VERSION)
        a = result_key(FAST_SPEC, **base)
        b = result_key(FAST_SPEC, **{**base, **change})
        assert a.digest != b.digest

    def test_spec_changes_the_base(self):
        a = result_key(FAST_SPEC, "forward-ber", 10, 0)
        b = result_key(FAST_SPEC.replace(distance_m=1.0),
                       "forward-ber", 10, 0)
        assert a.base != b.base

    def test_budget_shares_the_base(self):
        a = result_key(FAST_SPEC, "forward-ber", 10, 0)
        b = result_key(FAST_SPEC, "forward-ber", 500, 0)
        assert a.base == b.base
        assert a.digest != b.digest
        assert a.at_budget(500) == b

    def test_trial_callable_resolves_to_kind_name(self):
        by_fn = result_key(FAST_SPEC, forward_ber_trial, 10, 0)
        by_name = result_key(FAST_SPEC, "forward-ber", 10, 0)
        assert by_fn == by_name

    def test_custom_trial_uses_dotted_path(self):
        kind = trial_kind_of(_synthetic_trial)
        assert kind == f"{__name__}._synthetic_trial"

    def test_seed_canonicalisation(self):
        assert canonical_seed(7) == 7
        assert canonical_seed(np.random.SeedSequence(7)) == 7
        with pytest.raises(TypeError):
            canonical_seed("7")
        assert (
            result_key(FAST_SPEC, "forward-ber", 5, 7).digest
            == result_key(
                FAST_SPEC, "forward-ber", 5, np.random.SeedSequence(7)
            ).digest
        )

    def test_seed_spawn_state_changes_the_key(self):
        # Same entropy, different trial streams: a spawned child and a
        # root that has already spawned children must not share the
        # pristine root's cache address (the runner would produce
        # different records for each, so a shared key would serve
        # wrong tables as exact hits).
        pristine = result_key(FAST_SPEC, "forward-ber", 5,
                              np.random.SeedSequence(7))
        child = result_key(FAST_SPEC, "forward-ber", 5,
                           np.random.SeedSequence(7).spawn(1)[0])
        used = np.random.SeedSequence(7)
        used.spawn(3)
        drained = result_key(FAST_SPEC, "forward-ber", 5, used)
        digests = {pristine.digest, child.digest, drained.digest}
        assert len(digests) == 3
        assert canonical_seed(np.random.SeedSequence(7).spawn(1)[0]) == {
            "entropy": 7, "spawn_key": [0], "children_spawned": 0
        }


class TestResultStore:
    def _table(self, key, n):
        table = ResultTable(metadata={"n_trials": n})
        table.extend({"trial": i, "v": float(i)} for i in range(n))
        return table

    def test_get_put_has_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        assert not store.has(key)
        assert store.get(key) is None
        path = store.put(key, self._table(key, 3))
        assert path.is_file()
        assert store.has(key)
        loaded = store.get(key)
        assert loaded.records == self._table(key, 3).records
        assert loaded.metadata == {"n_trials": 3}

    def test_put_rejects_mislabelled_table(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 5, 0)
        with pytest.raises(ValueError, match="2 records"):
            store.put(key, self._table(key, 2))

    def test_stored_budgets_and_best_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 10, 0)
        assert store.stored_budgets(key) == []
        assert store.best_prefix(key) is None
        for n in (4, 20):
            store.put(key.at_budget(n), self._table(key, n))
        assert store.stored_budgets(key) == [4, 20]
        # exact budget wins
        store.put(key, self._table(key, 10))
        assert len(store.best_prefix(key)) == 10
        # smallest superset beats any subset
        assert len(store.best_prefix(key.at_budget(15))) == 20
        # largest prefix when nothing bigger exists
        assert len(store.best_prefix(key.at_budget(50))) == 20

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        assert ResultStore().root == tmp_path / "envstore"

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 2, 0)
        store.put(key, self._table(key, 2))
        assert not list(tmp_path.rglob("*.tmp"))


class TestCachedRun:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=6)
        first = cached_run(store, runner, FAST_SPEC, seed=0)
        again = cached_run(store, runner, FAST_SPEC, seed=0)
        assert (first.outcome, first.trials_computed) == ("miss", 6)
        assert (again.outcome, again.trials_computed) == ("hit", 0)
        assert again.table.to_json() == first.table.to_json()

    def test_topup_matches_cold_run_bitwise(self, tmp_path):
        small = ExperimentRunner(trial=_synthetic_trial, max_trials=5)
        large = ExperimentRunner(trial=_synthetic_trial, max_trials=20)
        warm = ResultStore(tmp_path / "warm")
        cached_run(warm, small, FAST_SPEC, seed=3)
        topped = cached_run(warm, large, FAST_SPEC, seed=3)
        cold = cached_run(
            ResultStore(tmp_path / "cold"), large, FAST_SPEC, seed=3
        )
        assert topped.outcome == "topup"
        assert topped.trials_computed == 15
        assert topped.table.to_json() == cold.table.to_json()
        # and the stored bytes agree too
        assert (
            warm.path_for(topped.key).read_bytes()
            == ResultStore(tmp_path / "cold").path_for(cold.key).read_bytes()
        )

    def test_truncation_matches_cold_run_bitwise(self, tmp_path):
        small = ExperimentRunner(trial=_synthetic_trial, max_trials=4)
        large = ExperimentRunner(trial=_synthetic_trial, max_trials=16)
        warm = ResultStore(tmp_path / "warm")
        cached_run(warm, large, FAST_SPEC, seed=3)
        sliced = cached_run(warm, small, FAST_SPEC, seed=3)
        cold = cached_run(
            ResultStore(tmp_path / "cold"), small, FAST_SPEC, seed=3
        )
        assert (sliced.outcome, sliced.trials_computed) == ("truncated", 0)
        assert sliced.table.to_json() == cold.table.to_json()

    @pytest.mark.integration
    def test_vectorized_topup_matches_serial_cold(self, tmp_path):
        # Cross-backend: a vectorized top-up continues a serial prefix
        # and still reproduces a serial cold run byte for byte.
        store = ResultStore(tmp_path)
        cached_run(
            store,
            ExperimentRunner(trial=forward_ber_trial, max_trials=3),
            FAST_SPEC, seed=0,
        )
        topped = cached_run(
            store,
            ExperimentRunner(trial=forward_ber_trial, max_trials=8,
                             backend="vectorized"),
            FAST_SPEC, seed=0,
        )
        cold = ExperimentRunner(
            trial=forward_ber_trial, max_trials=8
        ).run(FAST_SPEC, seed=0)
        assert topped.outcome == "topup"
        assert topped.table.records == cold.records

    def test_adaptive_stopping_refused(self, tmp_path):
        runner = ExperimentRunner(
            trial=_synthetic_trial, max_trials=50,
            stop_when=error_budget(5),
        )
        with pytest.raises(ValueError, match="fixed trial budget"):
            cached_run(ResultStore(tmp_path), runner, FAST_SPEC)

    def test_metadata_is_canonical(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=2)
        out = cached_run(store, runner, FAST_SPEC, seed=5)
        assert out.table.metadata == {
            "kind": f"{__name__}._synthetic_trial",
            "n_trials": 2,
            "scenario": FAST_SPEC.to_dict(),
            "seed": 5,
            "code_version": CODE_VERSION,
            "store_key": out.key.digest,
        }

    def test_code_version_partitions_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=2)
        cached_run(store, runner, FAST_SPEC, seed=0)
        bumped = cached_run(
            store, runner, FAST_SPEC, seed=0, code_version="999.0.0"
        )
        assert bumped.outcome == "miss"


class TestRunnerStoreHooks:
    def test_run_with_store_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=4)
        first = runner.run(FAST_SPEC, seed=0, store=store)
        again = runner.run(FAST_SPEC, seed=0, store=store)
        assert again.to_json() == first.to_json()
        assert store.has(result_key(FAST_SPEC, _synthetic_trial, 4, 0))

    def test_store_and_first_trial_exclusive(self, tmp_path):
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=4)
        with pytest.raises(ValueError, match="mutually exclusive"):
            runner.run(FAST_SPEC, store=ResultStore(tmp_path),
                       first_trial=2)

    def test_first_trial_resumes_the_seed_chunks(self):
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=10)
        full = runner.run(FAST_SPEC, seed=9)
        tail = runner.run(FAST_SPEC, seed=9, first_trial=6)
        assert tail.records == full.records[6:]
        assert tail.metadata["first_trial"] == 6
        assert tail.metadata["trials_run"] == 4
        assert not tail.metadata["stopped_early"]

    def test_first_trial_parallel_matches_serial(self):
        serial = ExperimentRunner(trial=_synthetic_trial, max_trials=9)
        parallel = ExperimentRunner(
            trial=_synthetic_trial, max_trials=9, workers=2
        )
        assert (
            parallel.run(FAST_SPEC, seed=4, first_trial=5).records
            == serial.run(FAST_SPEC, seed=4, first_trial=5).records
        )

    def test_first_trial_bounds_checked(self):
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=5)
        with pytest.raises(ValueError, match="first_trial"):
            runner.run(FAST_SPEC, first_trial=6)
        with pytest.raises(ValueError, match="first_trial"):
            runner.run(FAST_SPEC, first_trial=-1)

    def test_first_trial_incompatible_with_stop_rule(self):
        runner = ExperimentRunner(
            trial=_synthetic_trial, max_trials=50,
            stop_when=error_budget(3),
        )
        with pytest.raises(ValueError, match="stop_when"):
            runner.run(FAST_SPEC, first_trial=5)


class TestStoreCodec:
    """Binary payload format: round trips, migration, damage tolerance."""

    def _table(self, key, n):
        table = ResultTable(metadata={"n_trials": n})
        table.extend({"trial": i, "v": float(i)} for i in range(n))
        return table

    def test_payloads_are_binary_rpt(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        path = store.put(key, self._table(key, 3))
        assert path.suffix == ".rpt"
        blob = path.read_bytes()
        from repro.store.codec import MAGIC

        assert blob[:4] == MAGIC

    def test_nan_bearing_record_round_trips(self, tmp_path):
        import math

        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 2, 0)
        table = ResultTable(metadata={"worst_latency": math.inf})
        table.extend([
            {"trial": 0, "latency": 0.25, "tag": "ok"},
            {"trial": 1, "latency": math.nan, "tag": "timeout"},
        ])
        store.put(key, table)
        loaded = store.get(key)
        assert loaded.records[0] == table.records[0]
        assert math.isnan(loaded.records[1]["latency"])
        assert loaded.records[1]["tag"] == "timeout"
        assert loaded.metadata["worst_latency"] == math.inf

    def test_corrupt_payload_is_a_logged_miss(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        path = store.put(key, self._table(key, 3))
        path.write_bytes(b"RPT1 this is not a valid payload")
        with caplog.at_level("WARNING", logger="repro.store"):
            assert store.get(key) is None
        assert "treating as a miss" in caplog.text
        assert store.best_prefix(key) is None

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        path = store.put(key, self._table(key, 3))
        path.write_bytes(path.read_bytes()[:-7])
        assert store.get(key) is None

    def test_empty_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        path = store.put(key, self._table(key, 3))
        path.write_bytes(b"")
        assert store.get(key) is None

    def test_wrong_codec_version_is_a_miss(self, tmp_path, caplog):
        import struct

        from repro.store.codec import MAGIC

        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        path = store.put(key, self._table(key, 3))
        blob = path.read_bytes()
        future = struct.pack("<4sH", MAGIC, 999) + blob[6:]
        path.write_bytes(future)
        with caplog.at_level("WARNING", logger="repro.store"):
            assert store.get(key) is None
        assert "codec version 999" in caplog.text

    def test_corruption_never_reaches_cached_run(self, tmp_path):
        # A damaged store entry costs a recompute, not a campaign crash.
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(trial=_synthetic_trial, max_trials=4)
        first = cached_run(store, runner, FAST_SPEC, seed=2)
        store.path_for(first.key).write_bytes(b"\x00garbage")
        again = cached_run(store, runner, FAST_SPEC, seed=2)
        assert again.outcome == "miss"
        assert again.table.to_json() == first.table.to_json()
        # the recompute repaired the entry
        assert cached_run(store, runner, FAST_SPEC, seed=2).outcome == "hit"

    def test_best_prefix_skips_damaged_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 10, 0)
        for n in (4, 12):
            store.put(key.at_budget(n), self._table(key, n))
        store.path_for(key.at_budget(12)).write_bytes(b"broken")
        best = store.best_prefix(key)
        assert best is not None and len(best) == 4

    def test_legacy_json_entry_is_read_and_migrated(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        table = self._table(key, 3)
        legacy = store.legacy_path_for(key)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(table.to_json() + "\n")
        assert store.has(key)
        assert store.stored_budgets(key) == [3]
        loaded = store.get(key)
        assert loaded == table
        # migrated to the binary format on first read
        assert store.path_for(key).is_file()
        assert store.get(key) == table

    def test_corrupt_legacy_json_is_a_miss(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        legacy = store.legacy_path_for(key)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text("{not json")
        with caplog.at_level("WARNING", logger="repro.store"):
            assert store.get(key) is None
        assert "treating as a miss" in caplog.text

    def test_budget_in_both_formats_counted_once(self, tmp_path):
        store = ResultStore(tmp_path)
        key = result_key(FAST_SPEC, "forward-ber", 3, 0)
        table = self._table(key, 3)
        store.put(key, table)
        legacy = store.legacy_path_for(key)
        legacy.write_text(table.to_json() + "\n")
        assert store.stored_budgets(key) == [3]

    def test_encode_is_deterministic(self):
        from repro.store.codec import decode, encode

        key = result_key(FAST_SPEC, "forward-ber", 5, 0)
        table = self._table(key, 5)
        blob = encode(table)
        assert encode(decode(blob)) == blob
