"""Mobility trajectory tests."""

import pytest

from repro.channel.geometry import Scene
from repro.channel.mobility import Waypoint, WaypointMobility


class TestWaypointMobility:
    def _traj(self):
        return WaypointMobility([
            Waypoint(0.0, 0.0, 0.0),
            Waypoint(10.0, 10.0, 0.0),
            Waypoint(20.0, 10.0, 5.0),
        ])

    def test_holds_before_first(self):
        assert self._traj().position(-5.0) == (0.0, 0.0)

    def test_holds_after_last(self):
        assert self._traj().position(99.0) == (10.0, 5.0)

    def test_interpolates_linearly(self):
        assert self._traj().position(5.0) == (5.0, 0.0)
        assert self._traj().position(15.0) == (10.0, 2.5)

    def test_exact_waypoints(self):
        traj = self._traj()
        assert traj.position(0.0) == (0.0, 0.0)
        assert traj.position(10.0) == (10.0, 0.0)
        assert traj.position(20.0) == (10.0, 5.0)

    def test_distance_to(self):
        traj = self._traj()
        assert traj.distance_to((0.0, 0.0), 5.0) == pytest.approx(5.0)

    def test_apply_moves_scene_node(self):
        scene = Scene.two_device_line(1.0)
        traj = self._traj()
        traj.apply(scene, "bob", 10.0)
        assert scene.nodes["bob"].x == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaypointMobility([])
        with pytest.raises(ValueError):
            WaypointMobility([Waypoint(1.0, 0, 0), Waypoint(0.0, 1, 1)])
        with pytest.raises(ValueError):
            WaypointMobility([Waypoint(0.0, 0, 0), Waypoint(0.0, 1, 1)])


class TestBackAndForth:
    def test_symmetric_swing(self):
        traj = WaypointMobility.back_and_forth(near_m=0.5, far_m=2.0,
                                               period_s=60.0)
        assert traj.position(0.0) == (0.5, 0.0)
        assert traj.position(30.0) == (2.0, 0.0)
        assert traj.position(60.0) == (0.5, 0.0)
        assert traj.position(15.0)[0] == pytest.approx(1.25)

    def test_along_y(self):
        traj = WaypointMobility.back_and_forth(near_m=1.0, far_m=3.0,
                                               period_s=10.0, along_x=False)
        assert traj.position(5.0) == (0.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaypointMobility.back_and_forth(2.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            WaypointMobility.back_and_forth(1.0, 2.0, 0.0)
