"""Experiments layer: ScenarioSpec building/serialisation + registry."""

import json

import pytest

from repro.ambient import FilteredNoiseSource, OfdmLikeSource, ToneSource
from repro.channel import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    NoFading,
    RayleighFading,
    RicianFading,
    TwoRayGroundPathLoss,
)
from repro.experiments import (
    ScenarioSpec,
    ScenarioStack,
    get_scenario,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.experiments.registry import describe_scenarios


class TestScenarioSpecBuild:
    def test_build_returns_full_stack(self):
        stack = ScenarioSpec().build()
        assert isinstance(stack, ScenarioStack)
        assert stack.link.config is stack.config
        assert stack.link.source is stack.source
        assert stack.scene.distance("alice", "bob") == pytest.approx(0.5)

    def test_phy_and_fullduplex_knobs_propagate(self):
        spec = ScenarioSpec(bit_rate_bps=2_000.0, asymmetry_ratio=32,
                            self_compensation=False)
        config = spec.build_config()
        assert config.phy.bit_rate_bps == 2_000.0
        assert config.asymmetry_ratio == 32
        assert not config.self_compensation

    @pytest.mark.parametrize("kind,cls", [
        ("ofdm", OfdmLikeSource),
        ("tone", ToneSource),
        ("noise", FilteredNoiseSource),
    ])
    def test_source_kinds(self, kind, cls):
        assert isinstance(
            ScenarioSpec(source_kind=kind).build_source(), cls
        )

    @pytest.mark.parametrize("kind,cls", [
        ("static", NoFading),
        ("rayleigh", RayleighFading),
        ("rician", RicianFading),
    ])
    def test_fading_kinds(self, kind, cls):
        channel = ScenarioSpec(device_fading=kind).build_channel()
        assert isinstance(channel.device_fading, cls)

    @pytest.mark.parametrize("kind,cls", [
        ("free-space", FreeSpacePathLoss),
        ("log-distance", LogDistancePathLoss),
        ("two-ray", TwoRayGroundPathLoss),
    ])
    def test_pathloss_kinds(self, kind, cls):
        channel = ScenarioSpec(device_pathloss=kind).build_channel()
        assert isinstance(channel.device_pathloss, cls)

    def test_mac_config(self):
        cfg = ScenarioSpec(mac_num_links=3, mac_loss_probability=0.25,
                           bit_rate_bps=2_000.0).build_mac_config()
        assert cfg.num_links == 3
        assert cfg.bit_rate_bps == 2_000.0
        assert cfg.loss.loss_probability == pytest.approx(0.25)

    def test_scene_distance_override(self):
        scene = ScenarioSpec(distance_m=0.5).build_scene(2.0)
        assert scene.distance("alice", "bob") == pytest.approx(2.0)

    def test_replace_revalidates(self):
        spec = ScenarioSpec()
        assert spec.replace(distance_m=1.0).distance_m == 1.0
        with pytest.raises(ValueError):
            spec.replace(asymmetry_ratio=7)

    @pytest.mark.parametrize("field,value", [
        ("source_kind", "laser"),
        ("device_fading", "nakagami"),
        ("source_pathloss", "vacuum"),
        ("device_pathloss", "vacuum"),
        ("distance_m", -1.0),
        ("mac_loss_probability", 1.5),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            ScenarioSpec(**{field: value})


class TestScenarioSpecSerialisation:
    def test_round_trip_defaults(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_modified(self):
        spec = ScenarioSpec(
            name="x", source_kind="tone", bit_rate_bps=500.0,
            asymmetry_ratio=16, device_fading="rician",
            fading_k_factor=2.0, distance_m=3.0, mac_num_links=2,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json(self):
        spec = ScenarioSpec(device_fading="rayleigh")
        text = json.dumps(spec.to_dict())
        assert ScenarioSpec.from_dict(json.loads(text)) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec"):
            ScenarioSpec.from_dict({"warp_factor": 9})

    def test_partial_dict_uses_defaults(self):
        spec = ScenarioSpec.from_dict({"distance_m": 1.25})
        assert spec.distance_m == 1.25
        assert spec.asymmetry_ratio == 64


class TestCanonicalSerialisation:
    """The to_dict/from_dict round trip feeds the result store's hash.

    These tests lock the canonical-JSON form of a spec down: stable
    under round-tripping (no float drift), key-order independent, and —
    for the default spec — pinned to an exact digest so any schema or
    default change is a *conscious* cache invalidation.
    """

    def test_round_trip_is_canonical_fixed_point(self):
        from repro.store import canonical_json

        spec = ScenarioSpec(
            distance_m=0.1 + 0.2,          # classic repr-sensitive float
            source_power_watt=1.0e3,
            noise_power_watt=1.0e-13,
            bit_rate_bps=500.0,
        )
        text = canonical_json(spec.to_dict())
        clone = ScenarioSpec.from_dict(json.loads(text))
        assert clone == spec
        assert canonical_json(clone.to_dict()) == text

    def test_canonical_json_sorts_keys(self):
        from repro.store import canonical_json

        text = canonical_json(ScenarioSpec().to_dict())
        keys = [
            part.split(":")[0].strip('"')
            for part in text.strip("{}").split(",")
            if '":' in part
        ]
        assert keys == sorted(keys)

    def test_default_spec_digest_pinned(self):
        # The content address of every stored result starts from this
        # hash.  If this test fails you changed the spec schema or a
        # default value: that is a legitimate store invalidation, so
        # update the pin (and bump repro.__version__) deliberately.
        import hashlib

        from repro.store import canonical_json

        text = canonical_json(ScenarioSpec().to_dict())
        digest = hashlib.sha256(text.encode("ascii")).hexdigest()
        assert digest == (
            "4ba9bebf5a990325dcb71b841fb3deb694e320d93bbaf0522dc29e02a6f8cfde"
        )

    def test_field_order_of_to_dict_does_not_matter(self):
        from repro.store import canonical_json

        doc = ScenarioSpec().to_dict()
        shuffled = dict(sorted(doc.items(), reverse=True))
        assert canonical_json(shuffled) == canonical_json(doc)


class TestRegistry:
    def test_known_presets_exist(self):
        names = scenario_names()
        for expected in ("calibrated-default", "near-field", "far-edge",
                         "rayleigh-mobile", "dense-mac", "tone-source"):
            assert expected in names

    def test_all_presets_build(self):
        for name in scenario_names():
            stack = get_scenario(name).build()
            assert isinstance(stack, ScenarioStack), name

    def test_preset_names_match_spec_names(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="calibrated-default"):
            get_scenario("no-such-scene")

    def test_get_returns_fresh_instance(self):
        assert get_scenario("near-field") is not get_scenario("near-field")

    def test_describe_covers_every_name(self):
        rows = describe_scenarios()
        assert [name for name, _ in rows] == scenario_names()
        assert all(desc for _, desc in rows)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("calibrated-default", ScenarioSpec)

    def test_decorator_registers_and_returns_factory(self):
        @scenario("test-only-preset")
        def factory() -> ScenarioSpec:
            return ScenarioSpec(name="test-only-preset")

        try:
            assert factory() == get_scenario("test-only-preset")
        finally:
            from repro.experiments import registry

            registry._REGISTRY.pop("test-only-preset")
