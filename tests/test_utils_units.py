"""Unit-conversion tests."""

import math

import numpy as np
import pytest

from repro.utils.units import (
    SPEED_OF_LIGHT,
    amplitude_from_power,
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    snr_db,
    thermal_noise_power,
    watt_to_dbm,
    wavelength,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_three_db_doubles(self):
        assert db_to_linear(10 * math.log10(2)) == pytest.approx(2.0)

    def test_roundtrip(self):
        for value in (0.001, 1.0, 42.0, 1e6):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_array_input(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)


class TestAbsolutePower:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        for dbm in (-100.0, -30.0, 0.0, 20.0):
            assert watt_to_dbm(dbm_to_watt(dbm)) == pytest.approx(dbm)

    def test_watt_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)


class TestWavelength:
    def test_tv_band(self):
        # 539 MHz TV channel -> ~0.556 m.
        assert wavelength(539e6) == pytest.approx(0.556, abs=1e-3)

    def test_relation_to_c(self):
        assert wavelength(1.0) == pytest.approx(SPEED_OF_LIGHT)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestNoiseAndSnr:
    def test_thermal_floor_minus_174dbm_per_hz(self):
        p = thermal_noise_power(1.0)
        assert watt_to_dbm(p) == pytest.approx(-173.98, abs=0.1)

    def test_noise_figure_adds_db(self):
        base = thermal_noise_power(1e3)
        raised = thermal_noise_power(1e3, noise_figure_db=6.0)
        assert linear_to_db(raised / base) == pytest.approx(6.0)

    def test_bandwidth_scales_linearly(self):
        assert thermal_noise_power(2e3) == pytest.approx(
            2 * thermal_noise_power(1e3)
        )

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_power(0.0)

    def test_snr_db(self):
        assert snr_db(1e-6, 1e-9) == pytest.approx(30.0)

    def test_snr_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            snr_db(0.0, 1.0)


class TestAmplitude:
    def test_amplitude_squares_to_power(self):
        assert amplitude_from_power(4.0) == pytest.approx(2.0)

    def test_vectorised(self):
        out = amplitude_from_power(np.array([1.0, 9.0]))
        assert np.allclose(out, [1.0, 3.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            amplitude_from_power(-1.0)
