"""Backscatter polarity recovery tests.

Depending on the relative phase of the direct and dyadic paths,
"reflect" can lower the received envelope.  These tests force both
polarities explicitly (via channel phase) and check that every decode
path resolves the sign from its preamble/pilot.
"""

import numpy as np
import pytest

from repro.ambient import ToneSource
from repro.channel import ChannelModel, NoFading, RayleighFading, Scene
from repro.fullduplex import FullDuplexConfig, FullDuplexLink
from repro.fullduplex.link import DATA_PILOT_BITS
from repro.phy import (
    BackscatterReceiver,
    BackscatterTransmitter,
    PhyConfig,
)
from repro.phy.framing import random_frame
from repro.phy.sync import acquire_frame_start
from repro.utils.rng import random_bits


def _inverted_channel() -> ChannelModel:
    """A channel whose device-device path is phase-flipped relative to
    the direct path, so reflecting *lowers* the envelope."""
    return ChannelModel(
        device_fading=NoFading(phase_rad=np.pi),
        noise_power_watt=0.0,
    )


def _normal_channel() -> ChannelModel:
    return ChannelModel(noise_power_watt=0.0)


class TestSyncPolarity:
    @pytest.mark.parametrize("inverted", [False, True])
    def test_sync_finds_frame_under_both_polarities(self, inverted):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        src = ToneSource(sample_rate_hz=cfg.sample_rate_hz,
                         random_phase=False)
        channel = _inverted_channel() if inverted else _normal_channel()
        scene = Scene.two_device_line(0.3)
        gains = channel.realize(scene, rng=0)
        tx = BackscatterTransmitter(cfg)
        frame = random_frame(4, rng=1)
        wf = tx.transmit(frame)
        pad = 4 * cfg.samples_per_bit
        gamma = np.concatenate([
            np.full(pad, tx.states.gamma_for(0)),
            wf.reflection_waveform,
            np.full(pad, tx.states.gamma_for(0)),
        ])
        ambient = src.samples(gamma.size, rng=2)
        wave = gains.received("bob", ambient, {"alice": gamma},
                              include_noise=False)
        rx = BackscatterReceiver(cfg)
        sync = acquire_frame_start(rx.envelope(wave), cfg)
        assert sync.found
        assert sync.polarity == (-1 if inverted else 1)

    @pytest.mark.parametrize("inverted", [False, True])
    def test_frame_decodes_under_both_polarities(self, inverted):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        src = ToneSource(sample_rate_hz=cfg.sample_rate_hz,
                         random_phase=False)
        channel = _inverted_channel() if inverted else _normal_channel()
        scene = Scene.two_device_line(0.3)
        gains = channel.realize(scene, rng=0)
        tx = BackscatterTransmitter(cfg)
        frame = random_frame(6, rng=3)
        wf = tx.transmit(frame)
        pad = 4 * cfg.samples_per_bit
        gamma = np.concatenate([
            np.full(pad, tx.states.gamma_for(0)),
            wf.reflection_waveform,
            np.full(pad, tx.states.gamma_for(0)),
        ])
        ambient = src.samples(gamma.size, rng=4)
        wave = gains.received("bob", ambient, {"alice": gamma},
                              include_noise=False)
        res = BackscatterReceiver(cfg).receive_frame(wave)
        assert res.crc_ok
        assert np.array_equal(res.frame.payload_bits, frame.payload_bits)


class TestSoftDecodePolarity:
    def test_manchester_polarity_flip(self):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        rx = BackscatterReceiver(cfg)
        soft = np.array([2.0, 1.0, 1.0, 2.0])  # bits [1, 0] at +1
        assert np.array_equal(rx.soft_decode_bits(soft, polarity=1), [1, 0])
        assert np.array_equal(rx.soft_decode_bits(soft, polarity=-1), [0, 1])

    def test_fm0_polarity_invariant(self):
        from repro.phy.coding import fm0_encode

        cfg = PhyConfig(sample_rate_hz=32_000.0, coding="fm0")
        rx = BackscatterReceiver(cfg)
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        chips = fm0_encode(bits).astype(float)
        soft = chips * 2.0 + 1.0
        assert np.array_equal(rx.soft_decode_bits(soft, polarity=1), bits)
        assert np.array_equal(rx.soft_decode_bits(soft, polarity=-1), bits)

    def test_rejects_bad_polarity(self):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        with pytest.raises(ValueError):
            BackscatterReceiver(cfg).soft_decode_bits(np.ones(4), polarity=0)


class TestPilotDecode:
    @pytest.mark.parametrize("inverted", [False, True])
    def test_aligned_decode_with_pilot(self, inverted):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        src = ToneSource(sample_rate_hz=cfg.sample_rate_hz,
                         random_phase=False)
        channel = _inverted_channel() if inverted else _normal_channel()
        scene = Scene.two_device_line(0.3)
        gains = channel.realize(scene, rng=0)
        pilot = DATA_PILOT_BITS
        data = random_bits(5, 48)
        stream = np.concatenate([pilot, data])
        tx = BackscatterTransmitter(cfg)
        wf = tx.transmit_bits(stream)
        pad = 4 * cfg.samples_per_bit
        gamma = np.concatenate([
            np.full(pad, tx.states.gamma_for(0)),
            wf.reflection_waveform,
            np.full(pad, tx.states.gamma_for(0)),
        ])
        ambient = src.samples(gamma.size, rng=6)
        wave = gains.received("bob", ambient, {"alice": gamma},
                              include_noise=False)
        rx = BackscatterReceiver(cfg)
        decoded = rx.decode_aligned_bits(
            wave, stream.size, start_sample=pad, pilot_bits=pilot
        )
        assert np.array_equal(decoded[pilot.size:], data)

    def test_pilot_validation(self):
        cfg = PhyConfig(sample_rate_hz=32_000.0)
        rx = BackscatterReceiver(cfg)
        wave = np.ones(cfg.samples_per_bit * 8, dtype=complex)
        with pytest.raises(ValueError):
            rx.decode_aligned_bits(wave, 4,
                                   pilot_bits=np.ones(10, dtype=np.uint8))


class TestFullDuplexUnderFading:
    def test_raw_exchange_recovers_polarity_per_block(self):
        # Rayleigh device fading randomises the polarity per block.  The
        # envelope modulation is first-order proportional to cos(phi) of
        # the dyadic-vs-direct phase: blocks near quadrature are genuine
        # dead spots (no modulation to decode, any polarity), but every
        # block with a usable phase must decode cleanly at 0.3 m — in
        # BOTH polarities.
        cfg = FullDuplexConfig()
        from repro.ambient import OfdmLikeSource

        src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                             bandwidth_hz=200e3)
        link = FullDuplexLink(cfg, src)
        channel = ChannelModel(device_fading=RayleighFading())
        scene = Scene.two_device_line(0.3)
        inverted_clean = 0
        positive_clean = 0
        for t in range(12):
            rng = np.random.default_rng(900 + t)
            gains = channel.realize(scene, rng)
            cross = (gains.gain("source", "alice")
                     * gains.gain("alice", "bob")
                     * np.conj(gains.gain("source", "bob")))
            phase_quality = abs(np.cos(np.angle(cross)))
            data = random_bits(rng, 256)
            fb = random_bits(rng, 4)
            decoded, _, _ = link.run_raw_bits(gains, data, fb, rng=rng)
            errors = int(np.count_nonzero(decoded != data))
            if phase_quality > 0.5:
                assert errors == 0, (t, phase_quality)
                if cross.real < 0:
                    inverted_clean += 1
                else:
                    positive_clean += 1
        # The sweep must have exercised clean decodes in both signs.
        assert inverted_clean > 0
        assert positive_clean > 0
