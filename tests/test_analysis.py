"""Analysis-layer tests: theory, measurement harnesses, sweeps, reports."""

import math

import numpy as np
import pytest

from repro.analysis.ber import BerEstimate, measure_forward_ber
from repro.analysis.montecarlo import mean_and_stderr, run_trials
from repro.analysis.reporting import format_series, format_sweep, format_table
from repro.analysis.sweep import Sweep1D, sweep1d
from repro.analysis.theory import (
    aloha_success_probability,
    aloha_throughput,
    expected_abort_savings_fraction,
    ook_envelope_ber,
    q_function,
    wilson_interval,
)
from repro.analysis.throughput import (
    expected_attempts,
    expected_energy_per_delivered_fd,
    expected_energy_per_delivered_hd,
    goodput_ratio_fd_over_hd,
)
from repro.hardware.energy import EnergyModel


class TestTheory:
    def test_q_function_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.6449) == pytest.approx(0.05, abs=1e-3)
        assert q_function(-1.0) + q_function(1.0) == pytest.approx(1.0)

    def test_ook_ber_decreases_with_separation(self):
        bers = [ook_envelope_ber(s, 1.0) for s in (0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(bers, bers[1:]))

    def test_ook_ber_half_at_zero_separation(self):
        assert ook_envelope_ber(0.0, 1.0) == pytest.approx(0.5)

    def test_aloha_peak(self):
        assert aloha_throughput(0.5) == pytest.approx(1 / (2 * math.e))
        assert aloha_throughput(0.5) > aloha_throughput(0.2)
        assert aloha_throughput(0.5) > aloha_throughput(1.0)

    def test_aloha_success_probability(self):
        assert aloha_success_probability(0.0) == pytest.approx(1.0)
        assert aloha_success_probability(1.0) == pytest.approx(math.exp(-2))

    def test_wilson_contains_point_estimate(self):
        lo, hi = wilson_interval(10, 100)
        assert lo < 0.1 < hi

    def test_wilson_zero_errors(self):
        lo, hi = wilson_interval(0, 1000)
        assert lo == 0.0 and 0 < hi < 0.01

    def test_wilson_degenerate(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_abort_savings_bounds(self):
        s = expected_abort_savings_fraction(64, 8, 1024)
        assert 0.0 < s < 1.0

    def test_abort_savings_grow_with_packet_size(self):
        small = expected_abort_savings_fraction(64, 8, 256)
        large = expected_abort_savings_fraction(64, 8, 4096)
        assert large > small

    def test_abort_savings_shrink_with_ratio(self):
        fine = expected_abort_savings_fraction(16, 8, 1024)
        coarse = expected_abort_savings_fraction(256, 8, 1024)
        assert fine > coarse


class TestThroughputEconomics:
    def test_expected_attempts(self):
        assert expected_attempts(0.0) == pytest.approx(1.0)
        assert expected_attempts(0.5) == pytest.approx(2.0)
        assert expected_attempts(1.0) == float("inf")

    def test_fd_cheaper_than_hd_under_loss(self):
        energy = EnergyModel()
        for p in (0.1, 0.3, 0.5):
            hd = expected_energy_per_delivered_hd(p, 557, 45, energy)
            fd = expected_energy_per_delivered_fd(p, 557, 64, 8, energy)
            assert fd < hd, p

    def test_fd_hd_converge_at_zero_loss(self):
        energy = EnergyModel()
        hd = expected_energy_per_delivered_hd(0.0, 557, 45, energy)
        fd = expected_energy_per_delivered_fd(0.0, 557, 64, 8, energy)
        assert fd == pytest.approx(hd, rel=0.15)

    def test_goodput_ratio_grows_with_loss(self):
        # At zero loss the two protocols are near-parity (FD's trailing
        # feedback slot vs HD's ACK exchange); FD pulls ahead as loss
        # grows and aborts start saving airtime.
        ratios = [
            goodput_ratio_fd_over_hd(p, 557, 45, 8, 64, 8)
            for p in (0.0, 0.2, 0.4)
        ]
        assert ratios[0] == pytest.approx(1.0, abs=0.05)
        assert ratios[1] > 1.0
        assert ratios[2] > ratios[1] > ratios[0]


class TestBerEstimate:
    def test_rate(self):
        est = BerEstimate(errors=5, trials=100)
        assert est.rate == pytest.approx(0.05)

    def test_empty(self):
        assert BerEstimate(0, 0).rate == 0.0

    def test_zero_trials_confidence_is_vacuous(self):
        # Regression: an empty estimate must advertise total uncertainty
        # — wilson_interval(0, 0) is the full unit interval, never a
        # division error or a confident-looking (0, 0).
        assert BerEstimate(0, 0).confidence == (0.0, 1.0)
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_confidence_brackets_rate(self):
        est = BerEstimate(errors=20, trials=400)
        lo, hi = est.confidence
        assert lo < est.rate < hi


class TestMeasurementHarness:
    def test_forward_ber_zero_at_close_range(self):
        from repro.ambient import OfdmLikeSource
        from repro.channel import ChannelModel, Scene
        from repro.fullduplex import FullDuplexConfig, FullDuplexLink

        cfg = FullDuplexConfig()
        src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                             bandwidth_hz=200e3)
        link = FullDuplexLink(cfg, src)
        est = measure_forward_ber(
            link, ChannelModel(), Scene.two_device_line(0.3),
            bits_per_trial=128, max_trials=3, min_trials=3, rng=0,
        )
        assert est.trials == 3 * 128
        assert est.rate == 0.0

    def test_early_stop_on_error_budget(self):
        from repro.ambient import OfdmLikeSource
        from repro.channel import ChannelModel, Scene
        from repro.fullduplex import FullDuplexConfig, FullDuplexLink

        cfg = FullDuplexConfig()
        src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                             bandwidth_hz=200e3)
        link = FullDuplexLink(cfg, src)
        est = measure_forward_ber(
            link, ChannelModel(), Scene.two_device_line(6.0),
            bits_per_trial=128, min_errors=10, max_trials=50,
            min_trials=2, rng=0,
        )
        # Distant link: errors plentiful, should stop well short of max.
        assert est.errors >= 10
        assert est.trials < 50 * 128

    def test_frame_delivery_feedback_has_its_own_stream(self, monkeypatch):
        """Regression: the frame payload and the feedback bits must come
        from *separate* spawned streams (the DESIGN §7 lane layout), so
        the feedback realisation cannot depend on the payload length."""
        import repro.analysis.ber as ber_mod
        from repro.ambient import ToneSource
        from repro.channel import ChannelModel, Scene
        from repro.fullduplex import FullDuplexConfig, FullDuplexLink
        from repro.phy import PhyConfig
        from repro.utils.rng import spawn_rngs

        phy = PhyConfig(sample_rate_hz=32_000.0, bit_rate_bps=1_000.0)
        cfg = FullDuplexConfig(phy=phy)
        link = FullDuplexLink(cfg, ToneSource(sample_rate_hz=phy.sample_rate_hz))

        frame_rngs, bit_rngs, frames = [], [], []
        real_frame, real_bits = ber_mod.random_frame, ber_mod.random_bits

        def spy_frame(payload_bytes, rng):
            frame_rngs.append(rng)
            frames.append(real_frame(payload_bytes, rng))
            return frames[-1]

        def spy_bits(rng, count):
            bit_rngs.append(rng)
            return real_bits(rng, count)

        monkeypatch.setattr(ber_mod, "random_frame", spy_frame)
        monkeypatch.setattr(ber_mod, "random_bits", spy_bits)
        ber_mod.measure_frame_delivery(
            link, ChannelModel(), Scene.two_device_line(0.5),
            payload_bytes=8, trials=2, rng=0,
        )
        assert len(frame_rngs) == 2 and len(bit_rngs) == 2
        for frame_rng, fb_rng in zip(frame_rngs, bit_rngs):
            assert frame_rng is not fb_rng
        # White-box layout check: trial i consumes children
        # (channel, frame, feedback, run) of one 4-way spawn, so a
        # shadow generator with the same seed must replay the frames.
        shadow = np.random.default_rng(0)
        for frame in frames:
            _, expected_rng, _, _ = spawn_rngs(shadow, 4)
            assert np.array_equal(
                frame.payload_bits, real_frame(8, expected_rng).payload_bits
            )


class TestMonteCarloPlumbing:
    def test_run_trials_count(self):
        out = run_trials(lambda rng: 1, trials=7, rng=0)
        assert out.trials == 7

    def test_independent_rngs(self):
        out = run_trials(lambda rng: rng.integers(0, 10**9), trials=5, rng=0)
        assert len(set(out.results)) > 1

    def test_early_stop(self):
        out = run_trials(lambda rng: 1, trials=100, rng=0,
                         stop_when=lambda rs: len(rs) >= 3)
        assert out.trials == 3

    def test_mean_and_stderr(self):
        mean, se = mean_and_stderr([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert se == pytest.approx(1.0 / math.sqrt(3))

    def test_mean_and_stderr_degenerate(self):
        assert mean_and_stderr([]) == (0.0, 0.0)
        assert mean_and_stderr([5.0]) == (5.0, 0.0)


class TestSweep:
    def test_sweep1d_collects_rows(self):
        sweep = sweep1d("x", [1, 2, 3], lambda x: {"sq": x * x})
        assert sweep.values == [1, 2, 3]
        assert sweep.column("sq") == [1, 4, 9]
        assert sweep.rows()[1] == (2, 4)
        assert sweep.header() == ["x", "sq"]

    def test_missing_metric_rejected(self):
        sweep = Sweep1D(parameter="x")
        sweep.add_point(1, a=1.0, b=2.0)
        with pytest.raises(ValueError):
            sweep.add_point(2, a=1.0)

    def test_new_metric_rejected_after_first_point(self):
        # A brand-new metric name mid-sweep would leave ragged columns.
        sweep = Sweep1D(parameter="x")
        sweep.add_point(1, a=1.0)
        with pytest.raises(ValueError, match="unknown metric"):
            sweep.add_point(2, a=1.0, b=2.0)
        # The failed call must not have mutated the sweep.
        assert sweep.values == [1]
        assert sweep.column("a") == [1.0]
        assert "b" not in sweep.columns

    def test_sweep_is_a_result_table_underneath(self):
        # Sweep1D is now a shim over the one table shape; the backing
        # table is the real container and stays in lock-step.
        from repro.experiments.results import ResultTable

        sweep = sweep1d("d", [1, 2], lambda d: {"y": d * 10})
        assert isinstance(sweep.table, ResultTable)
        assert sweep.table.columns == ["d", "y"]
        assert sweep.table.records == [{"d": 1, "y": 10},
                                       {"d": 2, "y": 20}]
        assert sweep.table.metadata == {"parameter": "d"}
        assert sweep.header() == ["d", "y"]
        assert sweep.rows() == sweep.table.rows()

    def test_sweep_shim_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="Sweep1D is deprecated"):
            Sweep1D(parameter="x")
        with pytest.warns(DeprecationWarning, match="Sweep1D is deprecated") as rec:
            sweep1d("x", [1], lambda x: {"y": x})
        # sweep1d warns once, not once per internal construction
        assert len([w for w in rec
                    if issubclass(w.category, DeprecationWarning)]) == 1

    def test_metric_colliding_with_parameter_rejected(self):
        # One flat record per point: a metric named after the swept
        # parameter would silently overwrite the swept value.
        sweep = Sweep1D(parameter="x")
        with pytest.raises(ValueError, match="collides"):
            sweep.add_point(1, x=10.0, y=1.0)
        assert sweep.values == []

    def test_empty_sweep_header_keeps_parameter(self):
        sweep = Sweep1D(parameter="x")
        assert sweep.header() == ["x"]
        assert sweep.rows() == []
        assert sweep.values == []

    def test_legacy_dataclass_constructor_still_accepted(self):
        # The pre-shim dataclass exposed values=/columns= fields; the
        # shim keeps accepting them (they seed the backing table).
        sweep = Sweep1D(parameter="x", values=[1, 2],
                        columns={"y": [10.0, 20.0]})
        assert sweep.values == [1, 2]
        assert sweep.column("y") == [10.0, 20.0]
        assert sweep.table.records == [{"x": 1, "y": 10.0},
                                       {"x": 2, "y": 20.0}]
        with pytest.raises(TypeError, match="not both"):
            Sweep1D(parameter="x", table=sweep.table, values=[1])

    def test_from_result_table(self):
        from repro.experiments.results import ResultTable

        table = ResultTable()
        table.extend([{"d": 1, "y": 2.0}])
        sweep = Sweep1D(parameter="d", table=table)
        assert sweep.values == [1]
        assert sweep.column("y") == [2.0]
        with pytest.raises(ValueError, match="first column"):
            Sweep1D(parameter="nope", table=table)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [("x", 1.0), ("long", 22.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_scientific_for_extremes(self):
        table = format_table(["v"], [(1.2e-9,)])
        assert "e-09" in table

    def test_format_series(self):
        out = format_series("BER vs d", [0.5, 1.0], [1e-3, 1e-2])
        assert "BER vs d" in out
        assert out.count("->") == 2

    def test_format_sweep(self):
        sweep = sweep1d("d", [1, 2], lambda d: {"y": d * 10})
        out = format_sweep(sweep)
        assert "d" in out.splitlines()[0]
