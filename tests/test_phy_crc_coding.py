"""CRC and line-code tests."""

import numpy as np
import pytest

from repro.phy.coding import (
    decode,
    encode,
    fm0_decode,
    fm0_encode,
    manchester_decode,
    manchester_encode,
    nrz_decode,
    nrz_encode,
)
from repro.phy.crc import append_crc16, check_crc16, crc16, crc8


class TestCrc:
    def test_crc16_known_vector(self):
        # CRC-16-CCITT(0xFFFF) of ASCII "123456789" is 0x29B1.
        data = np.unpackbits(np.frombuffer(b"123456789", dtype=np.uint8))
        reg = 0
        for b in crc16(data):
            reg = (reg << 1) | int(b)
        assert reg == 0x29B1

    def test_crc8_known_vector(self):
        # CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
        data = np.unpackbits(np.frombuffer(b"123456789", dtype=np.uint8))
        reg = 0
        for b in crc8(data):
            reg = (reg << 1) | int(b)
        assert reg == 0xF4

    def test_append_and_check_roundtrip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            bits = rng.integers(0, 2, 64, dtype=np.uint8)
            assert check_crc16(append_crc16(bits))

    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 64, dtype=np.uint8)
        framed = append_crc16(bits)
        for pos in range(framed.size):
            corrupted = framed.copy()
            corrupted[pos] ^= 1
            assert not check_crc16(corrupted)

    def test_detects_burst_errors(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 128, dtype=np.uint8)
        framed = append_crc16(bits)
        corrupted = framed.copy()
        corrupted[10:20] ^= 1
        assert not check_crc16(corrupted)

    def test_empty_payload(self):
        assert check_crc16(append_crc16(np.empty(0, dtype=np.uint8)))

    def test_too_short_fails(self):
        assert not check_crc16(np.ones(8, dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            crc16(np.array([0, 2, 1]))


class TestNrz:
    def test_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        assert np.array_equal(nrz_decode(nrz_encode(bits)), bits)

    def test_one_chip_per_bit(self):
        assert nrz_encode(np.zeros(7, dtype=np.uint8)).size == 7


class TestManchester:
    def test_encoding_pairs(self):
        chips = manchester_encode(np.array([1, 0]))
        assert np.array_equal(chips, [1, 0, 0, 1])

    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        assert np.array_equal(manchester_decode(manchester_encode(bits)), bits)

    def test_dc_balance(self):
        rng = np.random.default_rng(4)
        chips = manchester_encode(rng.integers(0, 2, 1000, dtype=np.uint8))
        assert chips.mean() == pytest.approx(0.5)

    def test_transition_every_bit(self):
        chips = manchester_encode(np.array([1, 1, 0, 0]))
        pairs = chips.reshape(-1, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_rejects_odd_chip_stream(self):
        with pytest.raises(ValueError):
            manchester_decode(np.array([1, 0, 1]))


class TestFm0:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        for initial in (0, 1):
            bits = rng.integers(0, 2, 100, dtype=np.uint8)
            chips = fm0_encode(bits, initial_level=initial)
            assert np.array_equal(fm0_decode(chips, initial_level=initial), bits)

    def test_boundary_transition_always_present(self):
        bits = np.array([1, 1, 0, 1, 0, 0], dtype=np.uint8)
        chips = fm0_encode(bits, initial_level=1)
        level = 1
        for i in range(bits.size):
            assert chips[2 * i] != level  # inversion at every boundary
            level = chips[2 * i + 1]

    def test_zero_has_mid_transition(self):
        chips = fm0_encode(np.array([0]), initial_level=1)
        assert chips[0] != chips[1]

    def test_one_has_no_mid_transition(self):
        chips = fm0_encode(np.array([1]), initial_level=1)
        assert chips[0] == chips[1]

    def test_dc_balance_over_window(self):
        rng = np.random.default_rng(6)
        chips = fm0_encode(rng.integers(0, 2, 2000, dtype=np.uint8))
        # any 8-chip window is within 2 of balance
        sums = np.convolve(chips.astype(int), np.ones(8, int), "valid")
        assert np.all(np.abs(sums - 4) <= 2)

    def test_rejects_bad_initial_level(self):
        with pytest.raises(ValueError):
            fm0_encode(np.array([1]), initial_level=2)


class TestNamedDispatch:
    @pytest.mark.parametrize("coding", ["fm0", "manchester", "nrz"])
    def test_roundtrip_by_name(self, coding):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(decode(encode(bits, coding), coding), bits)

    def test_unknown_coding(self):
        with pytest.raises(ValueError):
            encode(np.array([1]), "4b5b")
        with pytest.raises(ValueError):
            decode(np.array([1]), "4b5b")
