"""Validation helper tests."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer_multiple,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1e-12)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        check_probability("p", ok)

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("x", 1.0, 1.0, 2.0)
        check_in_range("x", 2.0, 1.0, 2.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range("x", 3.0, 1.0, 2.0)


class TestPowerOfTwo:
    @pytest.mark.parametrize("ok", [1, 2, 4, 64, 1024])
    def test_accepts(self, ok):
        check_power_of_two("n", ok)

    @pytest.mark.parametrize("bad", [0, 3, 6, -4, 2.0])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)


class TestIntegerMultiple:
    def test_accepts_exact(self):
        check_integer_multiple("fs", 256_000.0, 2_000.0)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_integer_multiple("fs", 250_001.0, 2_000.0)
