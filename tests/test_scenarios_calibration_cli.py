"""Tests for the scenario builder, calibration report and CLI."""

import numpy as np
import pytest

from repro.ambient import OfdmLikeSource
from repro.analysis.calibration import CalibrationReport, calibration_report
from repro.fullduplex import FullDuplexConfig, MarginCollapseDetector
from repro.fullduplex.scenarios import collision_scenario
from repro.phy import PhyConfig


def _stack():
    cfg = FullDuplexConfig()
    src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                         bandwidth_hz=200e3)
    return cfg, src


class TestCollisionScenario:
    def test_clean_run_decodes_and_passes_detector(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=0, onset_bit=None)
        assert obs.onset_bit is None
        assert obs.bit_errors == 0
        verdict = MarginCollapseDetector().run(np.abs(obs.margins))
        assert not verdict.detected

    def test_collided_run_corrupts_and_trips_detector(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=0, onset_bit=64)
        assert obs.bit_errors > 0
        verdict = MarginCollapseDetector().run(np.abs(obs.margins))
        assert verdict.detected
        assert verdict.detection_bit >= 64

    def test_errors_start_at_onset(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=1, onset_bit=96)
        errors_before = np.count_nonzero(
            obs.data_bits[:90] != obs.decoded_bits[:90]
        )
        assert errors_before == 0

    def test_shapes_consistent(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=2, packet_bits=128,
                                 onset_bit=32)
        assert obs.soft_chips.size == obs.data_bits.size * 2
        assert obs.margins.size == obs.data_bits.size
        assert obs.decoded_bits.size == obs.data_bits.size

    def test_onset_validation(self):
        cfg, src = _stack()
        with pytest.raises(ValueError):
            collision_scenario(cfg, src, packet_bits=100, onset_bit=100)

    def test_deterministic_given_seed(self):
        cfg, src = _stack()
        a = collision_scenario(cfg, src, rng=7, onset_bit=64)
        b = collision_scenario(cfg, src, rng=7, onset_bit=64)
        assert np.allclose(a.soft_chips, b.soft_chips)


class TestCalibrationReport:
    def test_default_stack_is_healthy(self):
        cfg, src = _stack()
        report = calibration_report(cfg.phy, src, rng=0)
        assert isinstance(report, CalibrationReport)
        assert report.healthy()
        assert report.chip_mean_rel_std < 0.05
        assert report.modulation_depth > 0.05
        assert report.ambient_over_noise_db > 40

    def test_narrow_source_fails_health(self):
        # A slowly-fluctuating ambient (long coherence) wrecks the
        # per-chip stability the receiver depends on.
        from repro.ambient import FilteredNoiseSource

        phy = PhyConfig()
        bad = FilteredNoiseSource(sample_rate_hz=phy.sample_rate_hz,
                                  coherence_samples=512)
        report = calibration_report(phy, bad, rng=0)
        assert report.chip_mean_rel_std > 0.08
        assert not report.healthy()

    def test_distance_lowers_depth(self):
        cfg, src = _stack()
        near = calibration_report(cfg.phy, src, probe_distance_m=0.3, rng=0)
        far = calibration_report(cfg.phy, src, probe_distance_m=3.0, rng=0)
        assert far.modulation_depth < near.modulation_depth


class TestCli:
    def test_parser_covers_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (["info"], ["ber"], ["mac"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_runs(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "operating point" in out
        assert "healthy" in out

    def test_mac_runs_small(self, capsys):
        from repro.cli import main

        code = main(["mac", "--links", "2", "--horizon", "20",
                     "--load", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fd-abort" in out and "goodput_bps" in out
        assert "delivery_95ci" in out  # pooled Wilson bounds column

    def test_mac_policy_subset_and_trials(self, capsys):
        from repro.cli import main

        code = main(["mac", "--links", "2", "--horizon", "15",
                     "--load", "0.2", "--policy", "no-arq,fd-abort",
                     "--trials", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no-arq" in out and "fd-abort" in out
        assert "hd-arq" not in out

    def test_mac_rejects_unknown_policy(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["mac", "--policy", "csma"])
        assert exc_info.value.code == 2
        assert "no-arq" in capsys.readouterr().err

    def test_mac_scenario_preset(self, capsys):
        from repro.cli import main

        code = main(["mac", "--scenario", "sparse-mac", "--horizon", "20",
                     "--policy", "no-arq", "--trials", "2"])
        assert code == 0
        assert "sparse-mac" in capsys.readouterr().out

    def test_sweep_mac_metric(self, capsys, tmp_path):
        import json

        from repro.cli import main

        out_json = tmp_path / "mac_sweep.json"
        code = main(["sweep", "--metric", "mac",
                     "--param", "mac_num_links", "--values", "2,3",
                     "--trials", "2", "--scenario", "sparse-mac",
                     "--json", str(out_json)])
        assert code == 0
        data = json.loads(out_json.read_text())
        assert [r["mac_num_links"] for r in data["records"]] == [2, 3]
        assert all("delivery_lo" in r and "delivery_hi" in r
                   for r in data["records"])

    def test_ber_runs_small(self, capsys):
        from repro.cli import main

        code = main(["--seed", "1", "ber", "--distance", "0.4",
                     "--trials", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "forward  BER" in out and "feedback BER" in out

    def test_scenario_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "calibrated-default" in out
        assert "rayleigh-mobile" in out

    def test_scenario_show_round_trips(self, capsys):
        import json

        from repro.cli import main
        from repro.experiments import ScenarioSpec, get_scenario

        assert main(["scenario", "show", "far-edge"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(data) == get_scenario("far-edge")

    def test_info_accepts_scenario_flag(self, capsys):
        from repro.cli import main

        assert main(["info", "--scenario", "tone-source"]) == 0
        assert "tone-source" in capsys.readouterr().out

    def test_sweep_runs_and_writes_json(self, capsys, tmp_path):
        import json

        from repro.cli import main

        out_json = tmp_path / "sweep.json"
        code = main(["sweep", "--param", "distance_m",
                     "--values", "0.4,0.6", "--trials", "2",
                     "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "distance_m" in out
        data = json.loads(out_json.read_text())
        assert [r["distance_m"] for r in data["records"]] == [0.4, 0.6]

    def test_sweep_rejects_unknown_parameter(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--param", "warp_factor", "--values", "1,2"])

    def test_sweep_parses_bool_parameters(self):
        from repro.cli import _parse_sweep_values

        assert _parse_sweep_values(
            "self_compensation", "true,false"
        ) == [True, False]
        with pytest.raises(SystemExit):
            _parse_sweep_values("self_compensation", "yes")

    def test_unknown_scenario_is_clean_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["info", "--scenario", "no-such"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "calibrated-default" in err

    def test_bad_knob_value_is_clean_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc_info:
            main(["sweep", "--param", "asymmetry_ratio", "--values", "7"])
        assert exc_info.value.code == 2
        assert "even integer" in capsys.readouterr().err

    def test_python_dash_m_repro_entrypoint(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "scenario", "list"],
            capture_output=True, text=True,
        )
        assert result.returncode == 0
        assert "calibrated-default" in result.stdout
