"""Tests for the scenario builder, calibration report and CLI."""

import numpy as np
import pytest

from repro.ambient import OfdmLikeSource
from repro.analysis.calibration import CalibrationReport, calibration_report
from repro.channel import ChannelModel
from repro.fullduplex import FullDuplexConfig, MarginCollapseDetector
from repro.fullduplex.scenarios import collision_scenario
from repro.phy import PhyConfig


def _stack():
    cfg = FullDuplexConfig()
    src = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                         bandwidth_hz=200e3)
    return cfg, src


class TestCollisionScenario:
    def test_clean_run_decodes_and_passes_detector(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=0, onset_bit=None)
        assert obs.onset_bit is None
        assert obs.bit_errors == 0
        verdict = MarginCollapseDetector().run(np.abs(obs.margins))
        assert not verdict.detected

    def test_collided_run_corrupts_and_trips_detector(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=0, onset_bit=64)
        assert obs.bit_errors > 0
        verdict = MarginCollapseDetector().run(np.abs(obs.margins))
        assert verdict.detected
        assert verdict.detection_bit >= 64

    def test_errors_start_at_onset(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=1, onset_bit=96)
        errors_before = np.count_nonzero(
            obs.data_bits[:90] != obs.decoded_bits[:90]
        )
        assert errors_before == 0

    def test_shapes_consistent(self):
        cfg, src = _stack()
        obs = collision_scenario(cfg, src, rng=2, packet_bits=128,
                                 onset_bit=32)
        assert obs.soft_chips.size == obs.data_bits.size * 2
        assert obs.margins.size == obs.data_bits.size
        assert obs.decoded_bits.size == obs.data_bits.size

    def test_onset_validation(self):
        cfg, src = _stack()
        with pytest.raises(ValueError):
            collision_scenario(cfg, src, packet_bits=100, onset_bit=100)

    def test_deterministic_given_seed(self):
        cfg, src = _stack()
        a = collision_scenario(cfg, src, rng=7, onset_bit=64)
        b = collision_scenario(cfg, src, rng=7, onset_bit=64)
        assert np.allclose(a.soft_chips, b.soft_chips)


class TestCalibrationReport:
    def test_default_stack_is_healthy(self):
        cfg, src = _stack()
        report = calibration_report(cfg.phy, src, rng=0)
        assert isinstance(report, CalibrationReport)
        assert report.healthy()
        assert report.chip_mean_rel_std < 0.05
        assert report.modulation_depth > 0.05
        assert report.ambient_over_noise_db > 40

    def test_narrow_source_fails_health(self):
        # A slowly-fluctuating ambient (long coherence) wrecks the
        # per-chip stability the receiver depends on.
        from repro.ambient import FilteredNoiseSource

        phy = PhyConfig()
        bad = FilteredNoiseSource(sample_rate_hz=phy.sample_rate_hz,
                                  coherence_samples=512)
        report = calibration_report(phy, bad, rng=0)
        assert report.chip_mean_rel_std > 0.08
        assert not report.healthy()

    def test_distance_lowers_depth(self):
        cfg, src = _stack()
        near = calibration_report(cfg.phy, src, probe_distance_m=0.3, rng=0)
        far = calibration_report(cfg.phy, src, probe_distance_m=3.0, rng=0)
        assert far.modulation_depth < near.modulation_depth


class TestCli:
    def test_parser_covers_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (["info"], ["ber"], ["mac"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_requires_subcommand(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_runs(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "operating point" in out
        assert "healthy" in out

    def test_mac_runs_small(self, capsys):
        from repro.cli import main

        code = main(["mac", "--links", "2", "--horizon", "20",
                     "--load", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fd-abort" in out and "goodput_bps" in out

    def test_ber_runs_small(self, capsys):
        from repro.cli import main

        code = main(["--seed", "1", "ber", "--distance", "0.4",
                     "--trials", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "forward  BER" in out and "feedback BER" in out
