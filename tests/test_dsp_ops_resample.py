"""Correlation, expansion and resampling tests."""

import numpy as np
import pytest

from repro.dsp.ops import (
    bit_errors,
    normalized_correlation,
    repeat_samples,
    sliding_windows,
)
from repro.dsp.resample import align_lengths, hold_resample


class TestRepeatSamples:
    def test_expansion(self):
        out = repeat_samples(np.array([1, 0, 1]), 3)
        assert np.array_equal(out, [1, 1, 1, 0, 0, 0, 1, 1, 1])

    def test_factor_one(self):
        x = np.array([1, 2, 3])
        assert np.array_equal(repeat_samples(x, 1), x)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            repeat_samples(np.array([1]), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            repeat_samples(np.ones((2, 2)), 2)


class TestNormalizedCorrelation:
    def test_perfect_match_scores_one(self):
        pattern = np.array([1.0, -1.0, 1.0, 1.0, -1.0])
        x = np.concatenate([np.zeros(3) + 0.1 * np.arange(3), pattern, np.zeros(4)])
        x[:3] = [0.3, -0.2, 0.1]
        corr = normalized_correlation(x, pattern)
        assert corr.max() == pytest.approx(1.0)
        assert int(np.argmax(corr)) == 3

    def test_scale_and_offset_invariant(self):
        pattern = np.array([1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0])
        noise = np.zeros(5) + np.random.default_rng(0).standard_normal(5)
        x = 5.0 + 0.01 * np.concatenate([noise, pattern, np.zeros(5)])
        corr = normalized_correlation(x, pattern)
        assert corr.max() > 0.99

    def test_anticorrelation_is_minus_one(self):
        pattern = np.array([1.0, -1.0, 1.0, -1.0, 1.0])
        corr = normalized_correlation(-pattern, pattern)
        assert corr[0] == pytest.approx(-1.0)

    def test_output_length(self):
        corr = normalized_correlation(np.random.default_rng(1).standard_normal(20),
                                      np.array([1.0, -1.0, 0.5]))
        assert corr.size == 18

    def test_pattern_longer_than_input(self):
        assert normalized_correlation(np.ones(2), np.array([1.0, -1.0, 1.0])).size == 0

    def test_constant_window_scores_zero(self):
        pattern = np.array([1.0, -1.0, 1.0])
        x = np.concatenate([np.full(5, 2.0), pattern])
        corr = normalized_correlation(x, pattern)
        assert corr[0] == pytest.approx(0.0)

    def test_rejects_constant_pattern(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.ones(10), np.ones(3))

    def test_bounded(self):
        rng = np.random.default_rng(3)
        corr = normalized_correlation(rng.standard_normal(200),
                                      rng.standard_normal(10))
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)


class TestBitErrors:
    def test_counts(self):
        assert bit_errors(np.array([0, 1, 1]), np.array([1, 1, 0])) == 2

    def test_zero_for_equal(self):
        bits = np.array([0, 1, 0, 1])
        assert bit_errors(bits, bits) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bit_errors(np.ones(3), np.ones(4))


class TestSlidingWindows:
    def test_shapes(self):
        out = sliding_windows(np.arange(10), 4, step=2)
        assert out.shape == (4, 4)
        assert np.array_equal(out[1], [2, 3, 4, 5])

    def test_short_input(self):
        assert sliding_windows(np.arange(3), 5).shape == (0, 5)


class TestHoldResample:
    def test_exact_division(self):
        out = hold_resample(np.array([1, 2]), 6)
        assert np.array_equal(out, [1, 1, 1, 2, 2, 2])

    def test_uneven_division_lengths_differ_by_one(self):
        out = hold_resample(np.array([1, 2, 3]), 8)
        counts = [np.count_nonzero(out == v) for v in (1, 2, 3)]
        assert sum(counts) == 8
        assert max(counts) - min(counts) <= 1

    def test_total_length(self):
        out = hold_resample(np.arange(7), 23)
        assert out.size == 23

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hold_resample(np.empty(0), 5)


class TestAlignLengths:
    def test_truncates_to_common(self):
        a, b = align_lengths(np.arange(5), np.arange(3))
        assert a.size == b.size == 3
