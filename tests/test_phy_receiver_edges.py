"""Receiver-chain edge cases and ablation behaviours."""

import numpy as np
import pytest

from repro.ambient import ToneSource
from repro.channel import ChannelModel, Scene
from repro.phy import BackscatterReceiver, BackscatterTransmitter, PhyConfig
from repro.phy.framing import random_frame
from repro.utils.rng import random_bits


def _framed_wave(cfg, frame, pad_bits=4, rng_seed=0, distance=0.3):
    src = ToneSource(sample_rate_hz=cfg.sample_rate_hz, random_phase=False)
    channel = ChannelModel(noise_power_watt=0.0)
    gains = channel.realize(Scene.two_device_line(distance), rng=0)
    tx = BackscatterTransmitter(cfg)
    wf = tx.transmit(frame)
    pad = pad_bits * cfg.samples_per_bit
    gamma = np.concatenate([
        np.full(pad, tx.states.gamma_for(0)),
        wf.reflection_waveform,
        np.full(pad, tx.states.gamma_for(0)),
    ])
    ambient = src.samples(gamma.size, rng=rng_seed)
    return gains.received("bob", ambient, {"alice": gamma},
                          include_noise=False)


class TestReceiveFrameEdges:
    def test_truncated_body_fails_gracefully(self, fast_phy):
        frame = random_frame(16, rng=0)
        wave = _framed_wave(fast_phy, frame)
        # Cut the waveform in the middle of the body.
        cut = wave[: wave.size // 2]
        res = BackscatterReceiver(fast_phy).receive_frame(cut)
        assert not res.crc_ok
        assert res.frame is None

    def test_zero_payload_frame_roundtrip(self, fast_phy):
        frame = random_frame(0, rng=1)
        wave = _framed_wave(fast_phy, frame)
        res = BackscatterReceiver(fast_phy).receive_frame(wave)
        assert res.crc_ok
        assert res.frame.payload_bytes == 0

    def test_max_payload_frame_roundtrip(self, fast_phy):
        frame = random_frame(255, rng=2)
        wave = _framed_wave(fast_phy, frame)
        res = BackscatterReceiver(fast_phy).receive_frame(wave)
        assert res.crc_ok
        assert res.frame.payload_bytes == 255

    def test_back_to_back_frames_first_wins(self, fast_phy):
        # Two frames in one capture: the sync picks (one of) them and
        # decodes it intact; the receiver never crashes.
        frame = random_frame(8, rng=3)
        wave = _framed_wave(fast_phy, frame)
        double = np.concatenate([wave, wave])
        res = BackscatterReceiver(fast_phy).receive_frame(double)
        assert res.crc_ok
        assert np.array_equal(res.frame.payload_bits, frame.payload_bits)

    def test_result_delivered_property(self, fast_phy):
        frame = random_frame(4, rng=4)
        wave = _framed_wave(fast_phy, frame)
        res = BackscatterReceiver(fast_phy).receive_frame(wave)
        assert res.delivered == res.crc_ok


class TestThresholdAblation:
    def test_fixed_threshold_fails_under_self_interference(self, fast_phy):
        """The F6 mechanism at unit-test scale: a slow self-gating step
        breaks a fixed threshold but not the adaptive one."""
        rng = np.random.default_rng(5)
        bits = random_bits(rng, 64)
        from repro.phy.coding import nrz_encode

        cfg = PhyConfig(sample_rate_hz=32_000.0, coding="nrz")
        # Synthetic chip integrals: data swings ±10 % around a level
        # that steps by 2x halfway through (own switching).
        chips = nrz_encode(bits).astype(float)
        soft = 1.0 + 0.1 * (chips * 2 - 1)
        soft[32:] *= 2.0
        rx_adaptive = BackscatterReceiver(cfg, adaptive=True)
        rx_fixed = BackscatterReceiver(cfg, adaptive=False)
        window = cfg.threshold_window_bits * cfg.chips_per_bit
        adaptive_bits = rx_adaptive.soft_decode_bits(soft)
        fixed_bits = rx_fixed.soft_decode_bits(soft)
        adaptive_errors = np.count_nonzero(
            adaptive_bits[window:] != bits[window:]
        )
        fixed_errors = np.count_nonzero(fixed_bits != bits)
        # Fixed threshold slices everything after the step as 1.
        assert fixed_errors > 10
        # Adaptive tracks the step: residual errors (step transient plus
        # NRZ's run-induced drift) stay a small fraction of fixed's.
        assert adaptive_errors <= 8
        assert adaptive_errors < fixed_errors / 3

    def test_manchester_immune_to_level_steps(self, fast_phy):
        rng = np.random.default_rng(6)
        bits = random_bits(rng, 64)
        from repro.phy.coding import manchester_encode

        chips = manchester_encode(bits).astype(float)
        soft = 1.0 + 0.1 * (chips * 2 - 1)
        soft[64:] *= 2.0  # step between bit boundaries (chip 64 = bit 32)
        rx = BackscatterReceiver(fast_phy)
        decoded = rx.soft_decode_bits(soft)
        assert np.array_equal(decoded, bits)


class TestSoftChipsBoundaries:
    def test_zero_count(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        assert rx.soft_chips(np.ones(100), 0, 0).size == 0

    def test_negative_start_rejected(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        with pytest.raises(ValueError):
            rx.soft_chips(np.ones(100), -1, 2)

    def test_insufficient_samples_returns_empty(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        out = rx.soft_chips(np.ones(10), 0, 5)
        assert out.size == 0

    def test_exact_fit(self, fast_phy):
        rx = BackscatterReceiver(fast_phy)
        n = 3 * fast_phy.samples_per_chip
        out = rx.soft_chips(np.arange(float(n)), 0, 3)
        assert out.size == 3
