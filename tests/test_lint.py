"""Tests for ``repro.lint``: engine mechanics, every shipped rule, CLI.

Rule tests feed minimal snippets through :meth:`Linter.lint_source`
with synthetic relative paths (``src/repro/store/bad.py`` and friends)
so path scoping is exercised exactly as it is in a real run.  The
suite ends with the tier-1 gate: the shipped tree must lint clean.
"""

import json
import textwrap

import pytest

from repro.lint import (
    DEFAULT_PATHS,
    PARSE_ERROR_ID,
    REGISTRY,
    BaseChecker,
    Linter,
    Registry,
)
from repro.lint.cli import main as lint_main

PKG = "src/repro/module.py"          # inside the package
STORE = "src/repro/store/bad.py"     # serialization scope
TEST = "tests/test_something.py"     # outside the package


def findings_for(source, rel_path=PKG, **linter_kwargs):
    linter = Linter(REGISTRY, **linter_kwargs)
    return linter.lint_source(textwrap.dedent(source), rel_path)


def rule_ids(findings, *, include_suppressed=False):
    return [
        f.rule for f in findings if include_suppressed or not f.suppressed
    ]


class TestRegistry:
    def test_shipped_rule_set(self):
        ids = REGISTRY.ids()
        assert ids == sorted(ids)
        for prefix in ("RNG", "DET", "SER", "API"):
            assert any(i.startswith(prefix) for i in ids), prefix

    def test_duplicate_id_rejected(self):
        reg = Registry()
        deco = dict(
            name="x", severity="error", message="m", fix_hint="h",
            applies_to=lambda p: True,
        )
        reg.rule(id="T001", **deco)(type("C1", (BaseChecker,), {}))
        with pytest.raises(ValueError, match="duplicate"):
            reg.rule(id="T001", **deco)(type("C2", (BaseChecker,), {}))

    def test_bad_severity_rejected(self):
        reg = Registry()
        with pytest.raises(ValueError, match="severity"):
            reg.rule(
                id="T001", name="x", severity="fatal", message="m",
                fix_hint="h", applies_to=lambda p: True,
            )(type("C", (BaseChecker,), {}))

    def test_select_by_prefix(self):
        chosen = REGISTRY.select(select=["RNG"])
        assert chosen and all(r.id.startswith("RNG") for r in chosen)

    def test_select_exact_id(self):
        chosen = REGISTRY.select(select=["RNG005"])
        assert [r.id for r in chosen] == ["RNG005"]

    def test_ignore_by_prefix(self):
        chosen = REGISTRY.select(ignore=["SER"])
        assert chosen and not any(r.id.startswith("SER") for r in chosen)

    def test_unknown_prefix_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            REGISTRY.select(select=["NOPE"])
        with pytest.raises(ValueError, match="unknown rule"):
            REGISTRY.select(ignore=["NOPE"])


class TestEngine:
    def test_syntax_error_is_a_finding(self):
        out = findings_for("def broken(:\n")
        assert rule_ids(out) == [PARSE_ERROR_ID]
        assert "does not parse" in out[0].message

    def test_alias_resolution(self):
        # The rule must match however numpy is spelled.
        src = """\
        import numpy as anything
        anything.random.seed(0)
        """
        assert "RNG001" in rule_ids(findings_for(src))

    def test_from_import_resolution(self):
        src = """\
        from numpy.random import default_rng
        rng = default_rng(0)
        """
        assert "RNG005" in rule_ids(findings_for(src))

    def test_local_name_does_not_resolve(self):
        # A user-defined object with the same attribute names is not
        # numpy, and must not match.
        src = """\
        class random:
            @staticmethod
            def seed(x):
                return x
        random.seed(0)
        """
        assert rule_ids(findings_for(src)) == []

    def test_findings_sorted_by_position(self):
        src = """\
        import numpy as np
        np.random.seed(1)
        np.random.normal()
        """
        out = findings_for(src)
        assert [(f.line, f.rule) for f in out] == [
            (2, "RNG001"), (3, "RNG003"),
        ]


class TestSuppression:
    def test_targeted_noqa_suppresses(self):
        src = """\
        import numpy as np
        np.random.seed(0)  # repro: noqa[RNG001] -- test fixture
        """
        out = findings_for(src)
        assert rule_ids(out) == []
        assert rule_ids(out, include_suppressed=True) == ["RNG001"]
        assert out[0].suppressed

    def test_blanket_noqa_suppresses_everything(self):
        src = """\
        import numpy as np
        np.random.seed(0)  # repro: noqa
        """
        out = findings_for(src)
        assert rule_ids(out) == []
        assert out[0].suppressed

    def test_wrong_rule_id_does_not_suppress(self):
        src = """\
        import numpy as np
        np.random.seed(0)  # repro: noqa[SER001]
        """
        out = findings_for(src)
        assert rule_ids(out) == ["RNG001"]

    def test_noqa_on_other_line_does_not_suppress(self):
        src = """\
        import numpy as np
        # repro: noqa[RNG001]
        np.random.seed(0)
        """
        assert rule_ids(findings_for(src)) == ["RNG001"]

    def test_multiple_rules_in_one_directive(self):
        src = """\
        import numpy as np
        import json
        np.random.seed(0)  # repro: noqa[RNG001, SER001]
        """
        out = findings_for(src)
        assert rule_ids(out) == []


class TestRngRules:
    def test_rng001_global_seed(self):
        src = "import numpy as np\nnp.random.seed(7)\n"
        assert rule_ids(findings_for(src, TEST)) == ["RNG001"]

    def test_rng002_randomstate(self):
        src = "import numpy as np\nr = np.random.RandomState(0)\n"
        assert rule_ids(findings_for(src, TEST)) == ["RNG002"]

    def test_rng003_global_draw(self):
        src = "import numpy as np\nx = np.random.normal(size=4)\n"
        assert rule_ids(findings_for(src, TEST)) == ["RNG003"]

    def test_rng003_generator_draw_is_fine(self):
        src = """\
        from repro.utils.rng import ensure_rng
        rng = ensure_rng(0)
        x = rng.normal(size=4)
        """
        assert rule_ids(findings_for(src, TEST)) == []

    def test_rng004_stdlib_random_in_package(self):
        assert rule_ids(findings_for("import random\n", PKG)) == ["RNG004"]
        src = "from random import choice\n"
        assert rule_ids(findings_for(src, PKG)) == ["RNG004"]

    def test_rng004_allowed_in_tests(self):
        assert rule_ids(findings_for("import random\n", TEST)) == []

    def test_rng005_direct_default_rng_in_package(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rule_ids(findings_for(src, PKG)) == ["RNG005"]

    def test_rng005_allowed_in_tests(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rule_ids(findings_for(src, TEST)) == []


class TestDetRules:
    def test_det001_wall_clock(self):
        src = "import time\nstamp = time.time()\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET001"]

    def test_det001_datetime_now(self):
        src = """\
        from datetime import datetime
        stamp = datetime.now()
        """
        assert rule_ids(findings_for(src, PKG)) == ["DET001"]

    def test_det001_perf_counter_is_det004_business(self):
        # A perf_counter read in package code is not a *wall-clock*
        # finding — it trips the blessed-clock rule instead.
        src = "import time\nt0 = time.perf_counter()\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET004"]

    def test_det001_not_enforced_in_tests(self):
        src = "import time\nstamp = time.time()\n"
        assert rule_ids(findings_for(src, TEST)) == []

    def test_det004_monotonic_reads_flagged_in_package(self):
        for call in ("perf_counter", "perf_counter_ns",
                     "monotonic", "monotonic_ns"):
            src = f"import time\nt0 = time.{call}()\n"
            assert rule_ids(findings_for(src, PKG)) == ["DET004"], call

    def test_det004_aliased_import_resolved(self):
        src = "from time import monotonic as mono\nt0 = mono()\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET004"]

    def test_det004_not_enforced_in_benchmarks_or_tests(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert rule_ids(findings_for(src, TEST)) == []
        assert rule_ids(findings_for(src, "benchmarks/bench_x.py")) == []

    def test_det004_blessed_clock_carries_suppressions(self):
        # The one sanctioned implementation site: repro/obs/clock.py
        # reads the clock under justified suppressions, so the findings
        # exist but are marked suppressed.
        import pathlib

        source = pathlib.Path("src/repro/obs/clock.py").read_text()
        out = findings_for(source, "src/repro/obs/clock.py")
        det004 = [f for f in out if f.rule == "DET004"]
        assert len(det004) == 2
        assert all(f.suppressed for f in det004)

    def test_det002_bare_set_iteration(self):
        src = "for x in {3, 1, 2}:\n    print(x)\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET002"]

    def test_det002_set_call_in_comprehension(self):
        src = "out = [x for x in set([3, 1])]\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET002"]

    def test_det002_sorted_set_is_fine(self):
        src = "for x in sorted({3, 1, 2}):\n    print(x)\n"
        assert rule_ids(findings_for(src, PKG)) == []

    def test_det003_mutable_default(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET003"]

    def test_det003_ctor_default(self):
        src = "def f(xs=dict()):\n    return xs\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET003"]

    def test_det003_kwonly_default(self):
        src = "def f(*, xs={}):\n    return xs\n"
        assert rule_ids(findings_for(src, PKG)) == ["DET003"]

    def test_det003_none_default_is_fine(self):
        src = "def f(xs=None):\n    return xs or []\n"
        assert rule_ids(findings_for(src, PKG)) == []


class TestSerRules:
    def test_ser001_missing_allow_nan(self):
        # The PR 7 incident: bare json.dumps in a store path lets a NaN
        # serialize as a non-JSON token and corrupt the stored table.
        src = """\
        import json
        def save(doc):
            return json.dumps(doc, sort_keys=True)
        """
        assert rule_ids(findings_for(src, STORE)) == ["SER001"]

    def test_ser001_allow_nan_true_is_still_wrong(self):
        src = """\
        import json
        def save(doc):
            return json.dumps(doc, sort_keys=True, allow_nan=True)
        """
        assert rule_ids(findings_for(src, STORE)) == ["SER001"]

    def test_ser002_missing_sort_keys(self):
        src = """\
        import json
        def save(doc):
            return json.dumps(doc, allow_nan=False)
        """
        assert rule_ids(findings_for(src, STORE)) == ["SER002"]

    def test_ser_clean_call(self):
        src = """\
        import json
        def save(doc):
            return json.dumps(doc, sort_keys=True, allow_nan=False)
        """
        assert rule_ids(findings_for(src, STORE)) == []

    def test_ser002_nonfinite_codec_escape_hatch(self):
        # ResultTable documents preserve column order deliberately;
        # routing through encode_nonfinite marks that as intentional.
        src = """\
        import json
        from repro.store.codec import encode_nonfinite
        def save(doc):
            return json.dumps(encode_nonfinite(doc), allow_nan=False)
        """
        assert rule_ids(findings_for(src, STORE)) == []

    def test_ser_rules_scoped_to_store_paths(self):
        src = """\
        import json
        def save(doc):
            return json.dumps(doc)
        """
        assert rule_ids(findings_for(src, "src/repro/analysis/x.py")) == []
        assert rule_ids(findings_for(src, TEST)) == []

    def test_ser_scope_covers_campaigns_and_results(self):
        src = "import json\njson.dumps({})\n"
        for path in (
            "src/repro/campaigns/runner.py",
            "src/repro/experiments/results.py",
            "src/repro/obs/trace.py",
        ):
            found = rule_ids(findings_for(src, path))
            assert found == ["SER001", "SER002"], path


class TestApiRules:
    def test_api001_star_import(self):
        src = "from repro.phy import *\n"
        assert rule_ids(findings_for(src, TEST)) == ["API001"]

    def test_api002_missing_all_in_init(self):
        src = "from repro.phy.config import PhyConfig\n"
        out = rule_ids(findings_for(src, "src/repro/sub/__init__.py"))
        assert out == ["API002"]

    def test_api002_public_name_missing_from_all(self):
        src = """\
        from repro.phy.config import PhyConfig
        from repro.phy.crc import crc8
        __all__ = ["PhyConfig"]
        """
        out = findings_for(src, "src/repro/sub/__init__.py")
        assert rule_ids(out) == ["API002"]
        assert "crc8" in out[0].message

    def test_api002_stale_entry(self):
        src = '__all__ = ["missing_name"]\n'
        out = findings_for(src, "src/repro/sub/__init__.py")
        assert rule_ids(out) == ["API002"]
        assert "missing_name" in out[0].message

    def test_api002_module_getattr_lazy_exports_ok(self):
        src = """\
        def __getattr__(name):
            raise AttributeError(name)
        __all__ = ["lazy_thing"]
        """
        assert rule_ids(findings_for(src, "src/repro/sub/__init__.py")) == []

    def test_api002_complete_all_is_clean(self):
        src = """\
        from repro.phy.config import PhyConfig
        __all__ = ["PhyConfig"]
        """
        assert rule_ids(findings_for(src, "src/repro/sub/__init__.py")) == []

    def test_api002_non_init_module_needs_no_all(self):
        src = "from repro.phy.config import PhyConfig\n"
        assert rule_ids(findings_for(src, PKG)) == []


class TestSelectIgnoreThreading:
    def test_select_restricts_findings(self):
        src = """\
        import numpy as np
        np.random.seed(0)
        def f(xs=[]):
            return xs
        """
        assert rule_ids(findings_for(src, PKG, select=["DET"])) == ["DET003"]

    def test_ignore_drops_findings(self):
        src = """\
        import numpy as np
        np.random.seed(0)
        def f(xs=[]):
            return xs
        """
        out = rule_ids(findings_for(src, PKG, ignore=["DET003"]))
        assert out == ["RNG001"]


class TestReportAndCli:
    def write_bad_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "store" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import json\n"
            "import numpy as np\n"
            "def save(doc):\n"
            "    np.random.seed(0)\n"
            "    return json.dumps(doc)\n"
        )
        return bad

    def test_json_report_schema(self, tmp_path):
        from repro.lint import lint_report

        self.write_bad_file(tmp_path)
        report = lint_report([tmp_path / "src"])
        doc = json.loads(report.to_json())
        assert doc["version"] == 1
        assert doc["files_scanned"] == 1
        assert {r["id"] for r in doc["rules"]} == set(REGISTRY.ids())
        found = {f["rule"] for f in doc["findings"]}
        assert found == {"RNG001", "SER001", "SER002"}
        assert doc["summary"]["active"] == 3
        assert doc["summary"]["suppressed"] == 0
        assert doc["summary"]["by_rule"]["SER001"] == 1
        for f in doc["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col",
                "message", "fix_hint", "suppressed",
            }

    def test_cli_exit_one_on_findings(self, tmp_path, capsys):
        self.write_bad_file(tmp_path)
        code = lint_main([str(tmp_path / "src")])
        assert code == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "SER001" in out
        assert "3 finding(s)" in out

    def test_cli_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_exit_two_on_unknown_rule(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--select", "BOGUS"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_json_format(self, tmp_path, capsys):
        self.write_bad_file(tmp_path)
        code = lint_main([str(tmp_path / "src"), "--format", "json"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["active"] == 3

    def test_cli_report_artifact(self, tmp_path, capsys):
        self.write_bad_file(tmp_path)
        artifact = tmp_path / "lint-report.json"
        code = lint_main(
            [str(tmp_path / "src"), "--report", str(artifact)]
        )
        assert code == 1
        doc = json.loads(artifact.read_text())
        assert doc["summary"]["active"] == 3

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in REGISTRY.ids():
            assert rule_id in out

    def test_suppressed_findings_survive_into_report(self, tmp_path):
        from repro.lint import lint_report

        bad = tmp_path / "src" / "repro" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import numpy as np\n"
            "np.random.seed(0)  # repro: noqa[RNG001] -- fixture\n"
        )
        report = lint_report([bad])
        assert report.exit_code == 0
        assert [f.rule for f in report.suppressed] == ["RNG001"]
        doc = json.loads(report.to_json())
        assert doc["summary"] == {
            "total": 1, "active": 0, "suppressed": 1, "by_rule": {},
        }

    def test_main_cli_exposes_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert repro_main(["lint", str(clean)]) == 0
        with pytest.raises(SystemExit) as exc:
            repro_main(["lint", "--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        assert "--select" in help_text and "--format" in help_text


class TestSeededFaults:
    """Re-create the historical bugs and prove the linter catches them."""

    def test_pr7_nan_checkpoint_bug_is_caught(self):
        # PR 7 shipped json.dumps without allow_nan=False in the
        # campaign checkpoint writer; a NaN Wilson bound then wrote
        # non-JSON bytes.  The linter now fails that exact pattern.
        src = """\
        import json
        def write_checkpoint(path, state):
            path.write_text(json.dumps(state, indent=2) + "\\n")
        """
        found = rule_ids(
            findings_for(src, "src/repro/campaigns/runner.py")
        )
        assert found == ["SER001", "SER002"]

    def test_global_draw_in_trial_path_is_caught(self):
        src = """\
        import numpy as np
        def forward_ber_trial(stack, rng):
            noise = np.random.standard_normal(128)
            return {"errors": int(noise.sum() > 0)}
        """
        found = rule_ids(
            findings_for(src, "src/repro/experiments/runner.py")
        )
        assert found == ["RNG003"]


@pytest.mark.integration
class TestSelfLint:
    """The shipped tree holds its own invariants (tier-1 gate)."""

    def test_repo_lints_clean(self):
        from repro.lint import lint_report

        report = lint_report(list(DEFAULT_PATHS))
        messages = [f.format() for f in report.active]
        assert report.active == [], "\n".join(messages)
        assert report.files_scanned > 100

    def test_all_suppressions_carry_justification(self):
        # A suppression must say *why*: `# repro: noqa[RULE] -- reason`.
        from repro.lint import lint_report

        report = lint_report(list(DEFAULT_PATHS))
        import pathlib

        for finding in report.suppressed:
            line = pathlib.Path(finding.path).read_text().splitlines()[
                finding.line - 1
            ]
            assert "--" in line.split("noqa", 1)[1], (
                f"{finding.path}:{finding.line} suppression lacks a "
                "justification"
            )
