"""Resume-from-abort policy tests."""

import pytest

from repro.mac.arq import AttemptContext
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.resume import ResumeFromAbortPolicy
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss


def _attempt(packet_bits, onset=None):
    a = AttemptContext(payload_bits=512, packet_bits=packet_bits,
                       start_time=0.0)
    if onset is not None:
        a.corrupted = True
        a.onset_bit = onset
    return a


class TestResumePoint:
    def test_slot_floor(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64)
        assert p.resume_point(0) == 0
        assert p.resume_point(63) == 0
        assert p.resume_point(64) == 64
        assert p.resume_point(200) == 192

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ResumeFromAbortPolicy().resume_point(-1)


class TestAttemptSizing:
    def test_first_attempt_full(self):
        p = ResumeFromAbortPolicy()
        p.packet_reset()
        assert p.attempt_packet_bits(557, 0, None) == 557

    def test_retry_carries_suffix_plus_overhead(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64,
                                  resume_overhead_bits=45)
        p.packet_reset()
        prev = _attempt(557, onset=300)  # resume point = 256
        assert p.attempt_packet_bits(557, 1, prev) == (557 - 256) + 45

    def test_acked_prefix_accumulates(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64,
                                  resume_overhead_bits=45)
        p.packet_reset()
        first = _attempt(557, onset=300)      # acks 256
        p.attempt_packet_bits(557, 1, first)
        second = _attempt(346, onset=130)     # acks 128 more
        size = p.attempt_packet_bits(557, 2, second)
        assert size == (557 - 384) + 45

    def test_never_exceeds_full_packet(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64)
        p.packet_reset()
        prev = _attempt(557, onset=10)  # resume point 0 -> no progress
        assert p.attempt_packet_bits(557, 1, prev) == 557

    def test_reset_clears_progress(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64)
        p.packet_reset()
        p.attempt_packet_bits(557, 1, _attempt(557, onset=300))
        p.packet_reset()
        prev = _attempt(557, onset=70)  # acks 64
        assert p.attempt_packet_bits(557, 1, prev) == (557 - 64) + 45

    def test_uncorrupted_previous_means_full_remaining(self):
        p = ResumeFromAbortPolicy(asymmetry_ratio=64)
        p.packet_reset()
        prev = _attempt(557)  # not corrupted (e.g. ACK-side issue)
        assert p.attempt_packet_bits(557, 1, prev) == 557


class TestEndToEnd:
    def _run(self, factory, seed=3):
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.5,
                               horizon_seconds=200.0, payload_bytes=64,
                               loss=BernoulliLoss(0.35))
        return NetworkSimulator(config=cfg, policy_factory=factory).run(
            rng=seed
        )

    def test_resume_delivers_everything(self):
        m = self._run(ResumeFromAbortPolicy)
        node = m.nodes[0]
        assert node.delivered_packets == node.offered_packets

    def test_resume_beats_plain_abort_on_bits_and_energy(self):
        abort = self._run(FullDuplexAbortPolicy)
        resume = self._run(ResumeFromAbortPolicy)
        assert (resume.nodes[0].bits_transmitted
                < abort.nodes[0].bits_transmitted)
        assert (resume.energy_per_delivered_bit
                < abort.energy_per_delivered_bit)

    def test_resume_latency_not_worse(self):
        abort = self._run(FullDuplexAbortPolicy)
        resume = self._run(ResumeFromAbortPolicy)
        assert (resume.nodes[0].mean_latency_seconds
                <= abort.nodes[0].mean_latency_seconds + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResumeFromAbortPolicy(resume_overhead_bits=-1)
