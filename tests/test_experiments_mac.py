"""MAC contention as a replicated trial kind.

The load-bearing contracts: one trial is a pure function of
``(spec, rng)`` (so serial == parallel bitwise), the policy arm is part
of the spec, aggregates pool counts exactly, and the no-ARQ arm tracks
the unslotted-ALOHA load curve within Wilson bounds.
"""

import math

import numpy as np
import pytest

from repro.analysis.contention import ContentionSummary, summarize_mac_table
from repro.experiments import (
    MAC_POLICY_KINDS,
    ExperimentRunner,
    ResultTable,
    ScenarioSpec,
    build_mac_policy,
    get_scenario,
    mac_aggregate,
    mac_trial,
    precision_budget,
    run_mac_arms,
)
from repro.mac.arq import HalfDuplexArqPolicy, NoArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.resume import ResumeFromAbortPolicy

#: A cheap contention workload (short horizon, few links).
FAST_MAC = ScenarioSpec(
    name="fast-mac-test",
    mac_num_links=3,
    mac_arrival_rate_pps=0.3,
    mac_payload_bytes=32,
    mac_horizon_seconds=40.0,
    mac_loss_probability=0.2,
)

#: Every key a MAC trial record carries.
RECORD_KEYS = {
    "offered_packets", "delivered_packets", "failed_packets", "attempts",
    "aborted_attempts", "bits_transmitted", "payload_bits_delivered",
    "tx_energy_joule", "total_energy_joule", "latency_sum_seconds",
    "duration_seconds", "goodput_bps", "delivery_ratio", "abort_fraction",
    "mean_latency_seconds", "energy_per_delivered_bit", "jain_fairness",
}


class TestMacTrial:
    def test_record_shape_and_types(self):
        record = mac_trial(FAST_MAC, np.random.default_rng(0))
        assert set(record) == RECORD_KEYS
        assert all(isinstance(v, (int, float)) for v in record.values())
        assert all(math.isfinite(v) for v in record.values())
        assert record["offered_packets"] > 0

    def test_deterministic_given_rng_seed(self):
        a = mac_trial(FAST_MAC, np.random.default_rng(3))
        b = mac_trial(FAST_MAC, np.random.default_rng(3))
        assert a == b

    def test_policy_arm_changes_outcome(self):
        no_arq = mac_trial(FAST_MAC.replace(mac_policy="no-arq"),
                           np.random.default_rng(0))
        fd = mac_trial(FAST_MAC.replace(mac_policy="fd-abort"),
                       np.random.default_rng(0))
        # Same seed -> same workload; the ARQ arm retries what the
        # fire-and-forget arm loses.
        assert no_arq["offered_packets"] == fd["offered_packets"]
        assert fd["delivered_packets"] >= no_arq["delivered_packets"]
        assert fd["attempts"] >= no_arq["attempts"]

    def test_runs_through_runner_with_adaptive_stopping(self):
        runner = ExperimentRunner(
            trial=mac_trial, max_trials=20, min_trials=2,
            stop_when=precision_budget(0.1),
        )
        table = runner.run(FAST_MAC, seed=0)
        assert 2 <= len(table) < 20
        assert table.metadata["stopped_early"]


class TestSerialParallelEquivalence:
    def test_mac_trial_bitwise_identical(self):
        kwargs = dict(trial=mac_trial, max_trials=4)
        serial = ExperimentRunner(workers=1, **kwargs).run(FAST_MAC, seed=11)
        parallel = ExperimentRunner(workers=2, **kwargs).run(FAST_MAC, seed=11)
        assert serial.records == parallel.records
        assert parallel.metadata["workers"] == 2

    def test_sweep_over_mac_knobs(self):
        runner = ExperimentRunner(trial=mac_trial, max_trials=2)
        table = runner.sweep(FAST_MAC, "mac_num_links", [2, 4], seed=0,
                             aggregate=mac_aggregate)
        assert table.column("mac_num_links") == [2, 4]
        assert table.column("n_trials") == [2, 2]
        # More contenders -> more offered packets network-wide.
        offered = table.column("offered_packets")
        assert offered[1] > offered[0]

    def test_sweep_arrival_rate_raises_load(self):
        runner = ExperimentRunner(trial=mac_trial, max_trials=2)
        table = runner.sweep(
            FAST_MAC, "mac_arrival_rate_pps", [0.1, 0.6], seed=1,
            aggregate=mac_aggregate,
        )
        offered = table.column("offered_packets")
        assert offered[1] > 2 * offered[0]


class TestPolicyArms:
    def test_every_arm_builds_with_matching_name(self):
        for arm in MAC_POLICY_KINDS:
            policy = build_mac_policy(FAST_MAC.replace(mac_policy=arm))
            assert policy.name == arm

    def test_arm_classes(self):
        spec = FAST_MAC
        assert isinstance(
            build_mac_policy(spec.replace(mac_policy="no-arq")), NoArqPolicy
        )
        assert isinstance(
            build_mac_policy(spec.replace(mac_policy="hd-arq")),
            HalfDuplexArqPolicy,
        )
        fd = build_mac_policy(spec.replace(mac_policy="fd-abort"))
        assert isinstance(fd, FullDuplexAbortPolicy)
        assert not isinstance(fd, ResumeFromAbortPolicy)
        assert isinstance(
            build_mac_policy(spec.replace(mac_policy="fd-resume")),
            ResumeFromAbortPolicy,
        )

    def test_fd_arms_inherit_scenario_knobs(self):
        spec = FAST_MAC.replace(
            asymmetry_ratio=16, mac_detection_latency_bits=4,
            mac_max_retries=2,
        )
        policy = build_mac_policy(spec.replace(mac_policy="fd-abort"))
        assert policy.asymmetry_ratio == 16
        assert policy.detection_latency_bits == 4
        assert policy.max_retries == 2

    def test_spec_rejects_unknown_arm(self):
        with pytest.raises(ValueError, match="mac_policy"):
            FAST_MAC.replace(mac_policy="csma")

    def test_run_mac_arms_rejects_runner_plus_kwargs(self):
        runner = ExperimentRunner(trial=mac_trial, max_trials=1)
        with pytest.raises(TypeError, match="not both"):
            run_mac_arms(FAST_MAC, ("no-arq",), runner=runner, max_trials=5)

    def test_run_mac_arms_pairs_workloads(self):
        results = run_mac_arms(
            FAST_MAC, ("no-arq", "fd-abort"), seed=5, max_trials=2
        )
        assert list(results) == ["no-arq", "fd-abort"]
        # Paired seeding: identical arrival processes across arms.
        assert (results["no-arq"].column("offered_packets")
                == results["fd-abort"].column("offered_packets"))


class TestAggregation:
    def _table(self, records):
        table = ResultTable()
        table.extend(records)
        return table

    def _record(self, **overrides):
        base = {key: 0 for key in RECORD_KEYS}
        base.update(duration_seconds=10.0, **overrides)
        return base

    def test_pooled_counts_exact(self):
        table = self._table([
            self._record(offered_packets=10, delivered_packets=8,
                         attempts=12, latency_sum_seconds=4.0,
                         payload_bits_delivered=800,
                         total_energy_joule=2e-6, goodput_bps=80.0),
            self._record(offered_packets=30, delivered_packets=15,
                         attempts=40, latency_sum_seconds=30.0,
                         payload_bits_delivered=1500,
                         total_energy_joule=6e-6, goodput_bps=150.0),
        ])
        s = summarize_mac_table(table)
        assert s.trials == 2
        assert s.offered_packets == 40
        assert s.delivered_packets == 23
        # Pooled, not mean-of-ratios: 23/40, not (0.8 + 0.5)/2.
        assert s.delivery_ratio == pytest.approx(23 / 40)
        assert s.delivery_lo < s.delivery_ratio < s.delivery_hi
        assert s.mean_latency_seconds == pytest.approx(34.0 / 23)
        assert s.energy_per_delivered_bit == pytest.approx(8e-6 / 2300)
        assert s.goodput_bps == pytest.approx(115.0)

    def test_empty_table_is_all_zero_with_vacuous_interval(self):
        s = summarize_mac_table(self._table([]))
        assert s.trials == 0
        assert s.delivery_ratio == 0.0
        assert (s.delivery_lo, s.delivery_hi) == (0.0, 1.0)
        assert s.energy_per_delivered_bit == 0.0

    def test_mac_aggregate_record_matches_summary(self):
        runner = ExperimentRunner(trial=mac_trial, max_trials=2)
        table = runner.run(FAST_MAC, seed=0)
        record = mac_aggregate(table)
        summary = summarize_mac_table(table)
        assert record == summary.to_record()
        assert isinstance(summary, ContentionSummary)


class TestPrecisionBudget:
    def test_stops_once_interval_is_tight(self):
        loose = [{"delivered_packets": 4, "offered_packets": 5}]
        tight = [{"delivered_packets": 800, "offered_packets": 1000}]
        stop = precision_budget(0.05)
        assert not stop(loose)
        assert stop(tight)

    def test_no_packets_never_stops(self):
        stop = precision_budget(0.5)
        assert not stop([{"delivered_packets": 0, "offered_packets": 0}])

    def test_rejects_non_positive_halfwidth(self):
        with pytest.raises(ValueError):
            precision_budget(0.0)


class TestContentionPresets:
    @pytest.mark.parametrize("name", [
        "sparse-mac", "dense-bursty-mac", "lossy-channel-mac",
        "asymmetric-load-mac",
    ])
    def test_preset_builds_and_round_trips(self, name):
        spec = get_scenario(name)
        assert spec.name == name
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        spec.build_mac_config()  # validates the workload

    def test_asymmetric_preset_spreads_link_rates(self):
        cfg = get_scenario("asymmetric-load-mac").build_mac_config()
        rates = cfg.link_arrival_rates()
        assert max(rates) / min(rates) == pytest.approx(8.0)
        assert sum(rates) / len(rates) == pytest.approx(
            cfg.arrival_rate_pps
        )


# ---------------------------------------------------------------------------
# ALOHA-theory cross-check.
#
# The no-ARQ arm with no channel loss is unslotted ALOHA over a finite
# population: a tagged attempt survives iff no other link starts within
# one packet airtime either side, so delivery ≈ exp(-2 G_other) with
# G_other the realised offered load of the *other* N-1 links in packets
# per airtime (the N → ∞ limit of which is
# repro.analysis.theory.aloha_success_probability).  The pooled Wilson
# interval over the offered-packet count is the acceptance band, with a
# small slack for the queueing and horizon-edge effects the closed form
# ignores.
# ---------------------------------------------------------------------------

ALOHA_SLACK = 0.04


def _aloha_check(load: float, trials: int, seed: int) -> None:
    num_links = 12
    base = ScenarioSpec(
        name="aloha-check",
        mac_policy="no-arq",
        mac_loss_probability=0.0,
        mac_num_links=num_links,
        mac_payload_bytes=32,
        mac_horizon_seconds=150.0,
        mac_arrival_rate_pps=1.0,  # replaced below
    )
    packet_seconds = base.build_mac_config().packet_seconds
    spec = base.replace(
        mac_arrival_rate_pps=load / (num_links * packet_seconds)
    )
    table = ExperimentRunner(trial=mac_trial, max_trials=trials).run(
        spec, seed=seed
    )
    s = summarize_mac_table(table)
    sim_seconds = trials * spec.mac_horizon_seconds
    g_real = s.attempts * packet_seconds / sim_seconds
    theory = math.exp(-2.0 * g_real * (num_links - 1) / num_links)
    assert (s.delivery_lo - ALOHA_SLACK
            <= theory
            <= s.delivery_hi + ALOHA_SLACK), (load, theory, s)


def test_noarq_tracks_aloha_smoke():
    """Tier-1 smoke: one load point, one seed."""
    _aloha_check(load=0.3, trials=2, seed=0)


@pytest.mark.parametrize("arm", MAC_POLICY_KINDS)
def test_single_seed_smoke_per_arm(arm):
    """Tier-1: one replication of every policy arm through the runner."""
    table = ExperimentRunner(trial=mac_trial, max_trials=1).run(
        FAST_MAC.replace(mac_policy=arm), seed=0
    )
    record = table.records[0]
    assert record["offered_packets"] > 0
    assert 0.0 <= record["delivery_ratio"] <= 1.0
    if arm == "no-arq":
        assert record["attempts"] == record["offered_packets"]


@pytest.mark.slow
@pytest.mark.parametrize("load", [0.1, 0.5, 1.0])
@pytest.mark.parametrize("seed", [0, 1])
def test_noarq_tracks_aloha_matrix(load, seed):
    """Full replication matrix (CI "full" job only)."""
    _aloha_check(load=load, trials=4, seed=seed)
