"""Hardware-model tests: reflection, detector, comparator, harvester,
energy ledger, tag front end."""

import numpy as np
import pytest

from repro.hardware.comparator import HysteresisComparator
from repro.hardware.detector import EnvelopeDetector
from repro.hardware.energy import EnergyLedger, EnergyModel
from repro.hardware.harvester import EnergyHarvester
from repro.hardware.reflection import ReflectionModulator, ReflectionStates
from repro.hardware.tag import TagFrontEnd


class TestReflectionStates:
    def test_gamma_levels(self):
        s = ReflectionStates(absorb_gamma=0.05, reflect_gamma=0.6,
                             efficiency=1.0)
        assert s.gamma_for(1) == pytest.approx(0.6)
        assert s.gamma_for(0) == pytest.approx(0.05)

    def test_efficiency_scales_gamma(self):
        s = ReflectionStates(reflect_gamma=0.6, efficiency=0.5)
        assert s.gamma_for(1) == pytest.approx(0.3)

    def test_through_energy_conservation(self):
        s = ReflectionStates()
        for chip in (0, 1):
            gamma = s.reflect_gamma if chip else s.absorb_gamma
            assert gamma**2 + s.through_for(chip) ** 2 == pytest.approx(1.0)

    def test_modulation_depth_positive(self):
        assert ReflectionStates().modulation_depth() > 0

    def test_rejects_inverted_states(self):
        with pytest.raises(ValueError):
            ReflectionStates(absorb_gamma=0.7, reflect_gamma=0.6)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ReflectionStates(reflect_gamma=1.5)


class TestReflectionModulator:
    def test_waveform_levels(self):
        s = ReflectionStates(absorb_gamma=0.0, reflect_gamma=0.5,
                             efficiency=1.0)
        mod = ReflectionModulator(states=s, samples_per_chip=2)
        wave = mod.reflection_waveform(np.array([1, 0]))
        assert np.allclose(wave, [0.5, 0.5, 0.0, 0.0])

    def test_through_waveform_levels(self):
        s = ReflectionStates(absorb_gamma=0.0, reflect_gamma=0.6,
                             efficiency=1.0)
        mod = ReflectionModulator(states=s, samples_per_chip=1)
        thru = mod.through_waveform(np.array([0, 1]))
        assert thru[0] == pytest.approx(1.0)
        assert thru[1] == pytest.approx(np.sqrt(1 - 0.36))

    def test_rejects_bad_spc(self):
        with pytest.raises(ValueError):
            ReflectionModulator(samples_per_chip=0)


class TestEnvelopeDetector:
    def test_scales_with_responsivity(self):
        d1 = EnvelopeDetector(sample_rate_hz=1e5, responsivity=1.0)
        d2 = EnvelopeDetector(sample_rate_hz=1e5, responsivity=2.0)
        x = np.ones(16, dtype=complex)
        assert np.allclose(d2.detect(x), 2 * d1.detect(x))

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            EnvelopeDetector(sample_rate_hz=1e5, smoothing_tau_seconds=0.0)


class TestHysteresisComparator:
    def test_plain_comparator(self):
        c = HysteresisComparator()
        out = c.compare(np.array([0.5, 1.5]), np.array([1.0, 1.0]))
        assert np.array_equal(out, [0, 1])

    def test_holds_inside_deadband(self):
        c = HysteresisComparator(hysteresis=0.2)
        env = np.array([2.0, 1.1, 0.95, 0.5, 1.05, 1.5])
        thr = np.ones(6)
        out = c.compare(env, thr)
        # 2.0 -> forced 1; 1.1 and 0.95 inside [0.8, 1.2] -> hold 1;
        # 0.5 -> forced 0; 1.05 inside -> hold 0; 1.5 -> forced 1.
        assert np.array_equal(out, [1, 1, 1, 0, 0, 1])

    def test_initial_state_until_decisive(self):
        c = HysteresisComparator(hysteresis=0.5, initial_state=1)
        out = c.compare(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert np.array_equal(out, [1, 1])

    def test_all_indecisive(self):
        c = HysteresisComparator(hysteresis=1.0, initial_state=0)
        out = c.compare(np.full(4, 1.0), np.full(4, 1.0))
        assert np.array_equal(out, [0, 0, 0, 0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            HysteresisComparator().compare(np.ones(3), np.ones(2))

    def test_rejects_bad_initial_state(self):
        with pytest.raises(ValueError):
            HysteresisComparator(initial_state=2)


class TestEnergyHarvester:
    def test_linear_region(self):
        h = EnergyHarvester(efficiency=0.5, sensitivity_watt=1e-7)
        assert h.harvested_power(1e-6) == pytest.approx(0.5e-6)

    def test_below_sensitivity_gives_zero(self):
        h = EnergyHarvester(sensitivity_watt=1e-7)
        assert h.harvested_power(1e-8) == 0.0

    def test_saturation_clamps(self):
        h = EnergyHarvester(efficiency=0.5, saturation_watt=1e-3)
        assert h.harvested_power(1.0) == pytest.approx(0.5e-3)

    def test_vectorised(self):
        h = EnergyHarvester(efficiency=1.0, sensitivity_watt=1e-7)
        out = h.harvested_power(np.array([0.0, 1e-6]))
        assert np.allclose(out, [0.0, 1e-6])

    def test_energy_integration(self):
        h = EnergyHarvester(efficiency=1.0, sensitivity_watt=0.0)
        # 1 uW for 1000 samples at 1 kHz = 1 second -> 1 uJ.
        e = h.harvested_energy(np.full(1000, 1e-6), 1000.0)
        assert e == pytest.approx(1e-6)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyHarvester().harvested_power(-1.0)

    def test_rejects_bad_saturation(self):
        with pytest.raises(ValueError):
            EnergyHarvester(sensitivity_watt=1e-3, saturation_watt=1e-4)


class TestEnergyModel:
    def test_costs_scale_linearly(self):
        m = EnergyModel(tx_bit_joule=1e-9)
        assert m.tx_cost(100) == pytest.approx(1e-7)

    def test_idle(self):
        m = EnergyModel(idle_second_joule=2e-9)
        assert m.idle_cost(3.0) == pytest.approx(6e-9)

    def test_rejects_negative_counts(self):
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.tx_cost(-1)
        with pytest.raises(ValueError):
            m.idle_cost(-0.1)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_bit_joule=-1.0)


class TestEnergyLedger:
    def test_accounting(self):
        led = EnergyLedger()
        led.spend("tx", 2e-9)
        led.spend("rx", 1e-9)
        led.harvest(5e-9)
        assert led.spent_joule == pytest.approx(3e-9)
        assert led.harvested_joule == pytest.approx(5e-9)
        assert led.net_joule == pytest.approx(2e-9)

    def test_by_label(self):
        led = EnergyLedger()
        led.spend("tx", 1e-9)
        led.spend("tx", 1e-9)
        led.spend("rx", 3e-9)
        by = led.spent_by_label()
        assert by["tx"] == pytest.approx(2e-9)
        assert by["rx"] == pytest.approx(3e-9)

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.spend("tx", 1e-9)
        b.harvest(2e-9)
        a.merge(b)
        assert a.net_joule == pytest.approx(1e-9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyLedger().spend("tx", -1.0)


class TestTagFrontEnd:
    def _front_end(self):
        return TagFrontEnd(
            detector=EnvelopeDetector(sample_rate_hz=1e5),
            states=ReflectionStates(absorb_gamma=0.0, reflect_gamma=0.6,
                                    efficiency=1.0),
        )

    def test_receive_gating_scales_power(self):
        fe = self._front_end()
        x = np.ones(8, dtype=complex)
        quiet = fe.receive_envelope(x)
        gated = fe.receive_envelope(x, own_chip_waveform=np.ones(8))
        assert np.allclose(quiet, 1.0)
        assert np.allclose(gated, 1.0 - 0.36)

    def test_harvest_loses_reflected_fraction(self):
        fe = self._front_end()
        # 1 uW incident keeps the rectifier in its linear region
        # (between sensitivity and saturation).
        x = np.full(1000, np.sqrt(1e-6), dtype=complex)
        e_idle = fe.harvested_energy(x)
        e_tx = fe.harvested_energy(x, own_chip_waveform=np.ones(1000))
        assert e_tx == pytest.approx(e_idle * (1 - 0.36), rel=1e-6)

    def test_shape_mismatch(self):
        fe = self._front_end()
        with pytest.raises(ValueError):
            fe.receive_envelope(np.ones(8, dtype=complex), np.ones(4))
        with pytest.raises(ValueError):
            fe.harvested_energy(np.ones(8, dtype=complex), np.ones(4))

    def test_modulator_binding(self):
        fe = self._front_end()
        mod = fe.modulator(samples_per_chip=4)
        assert mod.states is fe.states
        assert mod.samples_per_chip == 4
