"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, random_bits, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, 10)
        b = ensure_rng(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 10**9, 8),
                                  b.integers(0, 10**9, 8))

    def test_deterministic_given_seed(self):
        a1, _ = spawn_rngs(42, 2)
        a2, _ = spawn_rngs(42, 2)
        assert np.array_equal(a1.integers(0, 10**9, 8),
                              a2.integers(0, 10**9, 8))

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestRandomBits:
    def test_values_are_binary(self):
        bits = random_bits(3, 1000)
        assert set(np.unique(bits)) <= {0, 1}

    def test_dtype_and_length(self):
        bits = random_bits(3, 17)
        assert bits.dtype == np.uint8
        assert bits.size == 17

    def test_roughly_balanced(self):
        bits = random_bits(3, 10_000)
        assert 0.45 < bits.mean() < 0.55

    def test_zero_length(self):
        assert random_bits(3, 0).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            random_bits(3, -1)
