"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.utils.rng import (
    _spawn_via_seed_sequence,
    ensure_rng,
    random_bits,
    spawn_rngs,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, 10)
        b = ensure_rng(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawn:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 10**9, 8),
                                  b.integers(0, 10**9, 8))

    def test_deterministic_given_seed(self):
        a1, _ = spawn_rngs(42, 2)
        a2, _ = spawn_rngs(42, 2)
        assert np.array_equal(a1.integers(0, 10**9, 8),
                              a2.integers(0, 10**9, 8))

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSpawnFallback:
    """The old-numpy path must be stream-equivalent to Generator.spawn.

    Regression for the integer-draw fallback, whose children could
    collide (birthday bound over 63-bit seeds) and which advanced the
    parent's draw stream where ``Generator.spawn`` does not.
    """

    def test_children_match_generator_spawn(self):
        via_spawn = np.random.default_rng(42)
        via_fallback = np.random.default_rng(42)
        kids_spawn = via_spawn.spawn(4)
        kids_fallback = _spawn_via_seed_sequence(via_fallback, 4)
        for a, b in zip(kids_spawn, kids_fallback):
            assert np.array_equal(a.integers(0, 2**32, 16),
                                  b.integers(0, 2**32, 16))

    def test_parent_draw_stream_not_consumed(self):
        pristine = np.random.default_rng(7)
        spawned = np.random.default_rng(7)
        _spawn_via_seed_sequence(spawned, 3)
        assert np.array_equal(pristine.integers(0, 2**32, 16),
                              spawned.integers(0, 2**32, 16))

    def test_sequential_spawns_yield_fresh_children(self):
        # Spawning twice must not reissue the same children (the spawn
        # key advances), matching incremental Generator.spawn.
        gen_a = np.random.default_rng(3)
        gen_b = np.random.default_rng(3)
        first = _spawn_via_seed_sequence(gen_a, 2)
        second = _spawn_via_seed_sequence(gen_a, 2)
        expected = gen_b.spawn(2) + gen_b.spawn(2)
        got = [k.integers(0, 2**32, 8) for k in first + second]
        want = [k.integers(0, 2**32, 8) for k in expected]
        assert not np.array_equal(got[0], got[2])
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_children_are_pairwise_distinct(self):
        kids = _spawn_via_seed_sequence(np.random.default_rng(0), 8)
        draws = [tuple(k.integers(0, 2**32, 8)) for k in kids]
        assert len(set(draws)) == len(draws)


class TestRandomBits:
    def test_values_are_binary(self):
        bits = random_bits(3, 1000)
        assert set(np.unique(bits)) <= {0, 1}

    def test_dtype_and_length(self):
        bits = random_bits(3, 17)
        assert bits.dtype == np.uint8
        assert bits.size == 17

    def test_roughly_balanced(self):
        bits = random_bits(3, 10_000)
        assert 0.45 < bits.mean() < 0.55

    def test_zero_length(self):
        assert random_bits(3, 0).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            random_bits(3, -1)
