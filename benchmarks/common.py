"""Shared helpers for the benchmark suite.

Every bench follows the same pattern: run the experiment once through
:func:`run_and_emit` (which wraps ``benchmark.pedantic`` and records the
wall time), print the table/series the paper's figure would show, save
it under ``benchmarks/results/``, and assert the *shape* criterion
recorded in EXPERIMENTS.md.  Alongside the human-readable table, every
bench leaves a machine-readable ``BENCH_<name>.json`` with its wall
time, trial budget and throughput — the per-commit perf trajectory.

Stacks come from the scenario registry (``"calibrated-default"`` with
per-bench overrides), so the benches measure exactly the stack every
other consumer of the library builds.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import numpy

from repro.channel import ChannelModel, Scene
from repro.experiments import get_scenario
from repro.fullduplex import FullDuplexConfig, FullDuplexLink

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def emit_bench_json(
    name: str, *, wall_time_s: float, trials: int, scenario, seed, **extra
) -> dict:
    """Write ``benchmarks/results/BENCH_<name>.json`` and return it.

    ``trials`` is the bench's configured Monte-Carlo budget (trial count
    or simulator-run count — whatever unit of work the bench repeats),
    so ``trials_per_sec`` is comparable commit to commit for the same
    bench.  ``scenario`` and ``seed`` pin what was measured, and the
    python/numpy versions pin the toolchain the number was taken on —
    cross-commit comparisons are only meaningful within one toolchain.
    """
    payload = {
        "bench": name,
        "wall_time_s": round(float(wall_time_s), 6),
        "trials": int(trials),
        "trials_per_sec": (
            round(trials / wall_time_s, 3) if wall_time_s > 0 else None
        ),
        "scenario": scenario,
        "seed": seed,
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        **extra,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return payload


def run_and_emit(benchmark, name: str, fn, *, trials, scenario, seed,
                 **extra):
    """Run ``fn`` once under ``benchmark.pedantic`` and emit its JSON.

    ``trials`` — and any ``extra`` value — may be an int/JSON value or a
    callable over ``fn``'s result, for benches whose headline numbers
    are data-dependent.
    """
    start = time.perf_counter()
    out = benchmark.pedantic(fn, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    count = trials(out) if callable(trials) else trials
    resolved = {
        key: (value(out) if callable(value) else value)
        for key, value in extra.items()
    }
    emit_bench_json(name, wall_time_s=wall, trials=count,
                    scenario=scenario, seed=seed, **resolved)
    return out


def make_link(
    asymmetry_ratio: int = 64,
    self_compensation: bool = True,
    bit_rate_bps: float = 1_000.0,
) -> tuple[FullDuplexConfig, FullDuplexLink, ChannelModel]:
    """The calibrated default link stack used across benches."""
    spec = get_scenario("calibrated-default").replace(
        asymmetry_ratio=asymmetry_ratio,
        self_compensation=self_compensation,
        bit_rate_bps=bit_rate_bps,
    )
    stack = spec.build()
    return stack.config, stack.link, stack.channel


def scene_at(distance_m: float) -> Scene:
    """Two-device scene at a tag separation."""
    return get_scenario("calibrated-default").build_scene(distance_m)
