"""Shared helpers for the benchmark suite.

Every bench follows the same pattern: run the experiment once inside
``benchmark.pedantic`` (timing is incidental — the table is the product),
print the table/series the paper's figure would show, save it under
``benchmarks/results/``, and assert the *shape* criterion recorded in
EXPERIMENTS.md.

Stacks come from the scenario registry (``"calibrated-default"`` with
per-bench overrides), so the benches measure exactly the stack every
other consumer of the library builds.
"""

from __future__ import annotations

import pathlib

from repro.channel import ChannelModel, Scene
from repro.experiments import get_scenario
from repro.fullduplex import FullDuplexConfig, FullDuplexLink

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def make_link(
    asymmetry_ratio: int = 64,
    self_compensation: bool = True,
    bit_rate_bps: float = 1_000.0,
) -> tuple[FullDuplexConfig, FullDuplexLink, ChannelModel]:
    """The calibrated default link stack used across benches."""
    spec = get_scenario("calibrated-default").replace(
        asymmetry_ratio=asymmetry_ratio,
        self_compensation=self_compensation,
        bit_rate_bps=bit_rate_bps,
    )
    stack = spec.build()
    return stack.config, stack.link, stack.channel


def scene_at(distance_m: float) -> Scene:
    """Two-device scene at a tag separation."""
    return get_scenario("calibrated-default").build_scene(distance_m)
