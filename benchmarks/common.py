"""Shared helpers for the benchmark suite.

Every bench follows the same pattern: run the experiment once inside
``benchmark.pedantic`` (timing is incidental — the table is the product),
print the table/series the paper's figure would show, save it under
``benchmarks/results/``, and assert the *shape* criterion recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

from repro.ambient import OfdmLikeSource
from repro.channel import ChannelModel, Scene
from repro.fullduplex import FullDuplexConfig, FullDuplexLink

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


def make_link(
    asymmetry_ratio: int = 64,
    self_compensation: bool = True,
    bit_rate_bps: float = 1_000.0,
) -> tuple[FullDuplexConfig, FullDuplexLink, ChannelModel]:
    """The calibrated default link stack used across benches."""
    from repro.phy import PhyConfig

    phy = PhyConfig(bit_rate_bps=bit_rate_bps)
    cfg = FullDuplexConfig(
        phy=phy,
        asymmetry_ratio=asymmetry_ratio,
        self_compensation=self_compensation,
    )
    source = OfdmLikeSource(sample_rate_hz=phy.sample_rate_hz,
                            bandwidth_hz=200e3)
    return cfg, FullDuplexLink(cfg, source), ChannelModel()


def scene_at(distance_m: float) -> Scene:
    """Two-device scene at a tag separation."""
    return Scene.two_device_line(device_separation_m=distance_m)
