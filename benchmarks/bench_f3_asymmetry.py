"""F3 — The rate-asymmetry trade-off.

Paper claim: the asymmetry ratio r is the design's central dial.
Feedback decision margins grow with r (averaging gain ~ sqrt(r)), while
the residual disturbance an *uncompensated* receiver suffers on the data
channel shrinks with r (fewer feedback edges per data bit, ~1/r error
floor).  A compensated receiver is flat in r.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import numpy as np

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.ber import measure_forward_ber
from repro.analysis.reporting import format_table
from repro.fullduplex.feedback import FeedbackDecoder
from repro.utils.rng import random_bits

RATIOS = [8, 16, 32, 64, 128]


def _feedback_margin(link, channel, scene, cfg, rng_seed):
    """Mean |decision margin| of the feedback decoder over one exchange."""
    rng = np.random.default_rng(rng_seed)
    gains = channel.realize(scene, rng)
    data = random_bits(rng, 512)
    fb = random_bits(rng, max(1, 512 // cfg.asymmetry_ratio))
    # Rebuild the exchange manually to reach the decoder's soft margins.
    from repro.fullduplex.feedback import feedback_waveform
    from repro.hardware.reflection import ReflectionModulator
    from repro.phy import BackscatterReceiver, BackscatterTransmitter

    phy = cfg.phy
    pad = 4 * phy.samples_per_bit
    tx = BackscatterTransmitter(phy)
    wf = tx.transmit_bits(data)
    total = wf.num_samples + 2 * pad
    chips_a = np.zeros(total, dtype=np.uint8)
    chips_a[pad : pad + wf.num_samples] = wf.chip_waveform
    mod = ReflectionModulator(states=tx.states, samples_per_chip=1)
    fb_bits = fb[: wf.num_samples // cfg.samples_per_feedback_bit]
    chips_b = np.zeros(total, dtype=np.uint8)
    fb_wave = feedback_waveform(fb_bits, cfg)
    chips_b[pad : pad + fb_wave.size] = fb_wave
    gamma_b = mod.reflection_waveform(chips_b)
    ambient = link.source.samples(total, rng)
    incident_a = gains.received("alice", ambient, {"bob": gamma_b}, rng=rng)
    rx_a = BackscatterReceiver(phy)
    env_a = rx_a.front_end.receive_envelope(incident_a, chips_a)
    margins = FeedbackDecoder(cfg).soft_margins(
        env_a, fb_bits.size, own_chip_waveform=chips_a,
        start_sample=pad + phy.detector_delay_samples,
    )
    return float(np.mean(np.abs(margins))) if margins.size else 0.0


def run_f3():
    channel_scene = scene_at(1.0)
    rows = []
    for r in RATIOS:
        cfg, link, channel = make_link(asymmetry_ratio=r)
        margin = np.mean([
            _feedback_margin(link, channel, channel_scene, cfg, seed)
            for seed in range(30, 34)
        ])
        _, naive_link, _ = make_link(asymmetry_ratio=r,
                                     self_compensation=False)
        naive = measure_forward_ber(
            naive_link, channel, channel_scene, bits_per_trial=512,
            min_errors=20, max_trials=10, min_trials=5, rng=31,
        )
        comp = measure_forward_ber(
            link, channel, channel_scene, bits_per_trial=512,
            min_errors=20, max_trials=5, min_trials=3, rng=31,
        )
        rows.append((r, margin, naive.rate, comp.rate))
    return rows


def bench_f3_asymmetry(benchmark):
    rows = run_and_emit(benchmark, "f3_asymmetry", run_f3,
                        trials=len(RATIOS) * (4 + 10 + 5),
                        scenario="calibrated-default", seed=31)
    table = format_table(
        ["asymmetry_r", "feedback_margin", "data_ber_uncompensated",
         "data_ber_compensated"],
        rows,
    )
    save_result("f3_asymmetry", table)

    margins = [r[1] for r in rows]
    naive = [r[2] for r in rows]
    comp = [r[3] for r in rows]
    # Shape 1: uncompensated data BER shrinks as r grows (~1/r edges).
    assert naive[0] > naive[-1]
    # Shape 2: compensated receiver is essentially flat and near zero.
    assert max(comp) < 0.01
    # Shape 3: feedback margins do not degrade as r grows.
    assert margins[-1] > 0.5 * margins[0]
