"""F5 — Goodput and energy-per-bit vs channel loss, across protocols.

Paper claim: in-packet ACK/NACK beats the half-duplex ACK exchange on
goodput, latency and energy, with the gap widening as loss grows; the
no-feedback baseline simply loses packets.  The bench also prints the
closed-form renewal predictions next to the simulated numbers.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import run_and_emit, save_result

from repro.analysis.reporting import format_table
from repro.analysis.throughput import (
    expected_energy_per_delivered_fd,
    expected_energy_per_delivered_hd,
)
from repro.hardware.energy import EnergyModel
from repro.mac.node import run_policy_comparison
from repro.mac.simulator import SimulationConfig
from repro.mac.traffic import BernoulliLoss

LOSS_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]


def run_f5():
    energy = EnergyModel()
    rows = []
    for p in LOSS_RATES:
        cfg = SimulationConfig(
            num_links=1, arrival_rate_pps=0.6, horizon_seconds=200.0,
            payload_bytes=64, loss=BernoulliLoss(p),
        )
        res = run_policy_comparison(cfg, seed=50, energy=energy)
        no_arq, hd, fd = res["no-arq"], res["hd-arq"], res["fd-abort"]
        pkt_bits = cfg.packet_bits
        theory_hd = expected_energy_per_delivered_hd(p, pkt_bits, 45, energy)
        theory_fd = expected_energy_per_delivered_fd(p, pkt_bits, 64, 8,
                                                     energy)
        rows.append((
            p,
            no_arq.delivery_ratio,
            hd.goodput_bps,
            fd.goodput_bps,
            hd.energy_per_delivered_bit * 1e9,
            fd.energy_per_delivered_bit * 1e9,
            theory_hd / cfg.payload_bits * 1e9,
            theory_fd / cfg.payload_bits * 1e9,
        ))
    return rows


def bench_f5_goodput(benchmark):
    rows = run_and_emit(benchmark, "f5_goodput", run_f5,
                        trials=len(LOSS_RATES) * 3,
                        scenario="mac:single-link", seed=50)
    table = format_table(
        ["loss", "noarq_delivery", "hd_goodput_bps", "fd_goodput_bps",
         "hd_nJ_per_bit", "fd_nJ_per_bit", "hd_theory_nJ", "fd_theory_nJ"],
        rows,
    )
    save_result("f5_goodput", table)

    # Shape 1: no-feedback delivery collapses roughly as 1 - p.
    for p, delivery, *_ in rows:
        assert abs(delivery - (1.0 - p)) < 0.12
    # Shape 2: FD goodput >= HD goodput at every loss, gap widens (the
    # HD side eventually saturates under duplicate retries when its
    # ACKs start dying too).
    gaps = [fd - hd for _, _, hd, fd, *_ in rows]
    assert all(g >= -1e-6 for g in gaps)
    assert gaps[-1] > gaps[0]
    # Shape 3: FD energy per delivered bit beats HD under loss.
    for row in rows[1:]:
        assert row[5] < row[4]
    # Shape 4: FD simulation within 35 % of its renewal closed form; the
    # HD closed form assumes loss-free ACKs (see its docstring), so the
    # simulation — whose ACKs die like any packet — must sit at or above
    # it, drifting further as loss grows.
    for row in rows:
        if row[5] > 0 and row[7] > 0:
            assert abs(row[5] - row[7]) / row[7] < 0.35
        if row[4] > 0 and row[6] > 0:
            assert row[4] >= 0.95 * row[6]
