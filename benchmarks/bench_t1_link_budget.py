"""T1 — Link-budget table: operating range vs data rate.

Paper claim: backscatter links trade rate for range — halving the bit
rate lengthens the chip integration window and extends the usable
range.  The table reports the largest tag separation with frame
delivery >= 90 % per rate, for both directions.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.ber import measure_feedback_ber, measure_frame_delivery
from repro.analysis.reporting import format_table

RATES_BPS = [500.0, 1_000.0, 2_000.0, 4_000.0]
DISTANCES_M = [0.2, 0.3, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0]


def _max_range(link, channel, trials=8) -> float:
    best = 0.0
    for d in DISTANCES_M:
        est = measure_frame_delivery(
            link, channel, scene_at(d), payload_bytes=16,
            trials=trials, rng=110,
        )
        if est.rate <= 0.125:  # >= 87.5 % delivered (7/8 trials)
            best = d
        else:
            break
    return best


def run_t1():
    rows = []
    for rate in RATES_BPS:
        cfg, link, channel = make_link(bit_rate_bps=rate)
        data_range = _max_range(link, channel)
        fb = measure_feedback_ber(
            link, channel, scene_at(max(data_range, 0.5)),
            bits_per_trial=256, max_trials=4, min_trials=4, rng=111,
        )
        rows.append((rate, data_range, fb.rate))
    return rows


def bench_t1_link_budget(benchmark):
    rows = run_and_emit(benchmark, "t1_link_budget", run_t1,
                        trials=len(RATES_BPS) * (len(DISTANCES_M) * 8 + 4),
                        scenario="calibrated-default", seed=110)
    table = format_table(
        ["bit_rate_bps", "max_range_m_90pct", "feedback_ber_at_range"],
        rows,
    )
    save_result("t1_link_budget", table)

    ranges = {rate: rng_m for rate, rng_m, _ in rows}
    # Shape 1: range shrinks as rate grows.
    assert ranges[500.0] >= ranges[4_000.0]
    assert ranges[1_000.0] > 0.5  # the calibrated design point works
    # Shape 2: feedback is clean at the data channel's own range limit.
    for _, _, fb_ber in rows:
        assert fb_ber < 0.05
