"""F2 — Feedback-channel BER vs distance.

Paper claim: the low-rate feedback channel, decoded at the *transmitting*
device by averaging over feedback-bit periods (gated on its own off
samples), works at least as far as the data channel — the averaging gain
of the asymmetry ratio makes it the more robust direction.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.ber import measure_feedback_ber, measure_forward_ber
from repro.analysis.reporting import format_table

DISTANCES_M = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0]


def run_f2():
    cfg, link, channel = make_link()
    rows = []
    for d in DISTANCES_M:
        scene = scene_at(d)
        fb = measure_feedback_ber(
            link, channel, scene, bits_per_trial=512,
            min_errors=15, max_trials=20, min_trials=6, rng=20,
        )
        fwd = measure_forward_ber(
            link, channel, scene, bits_per_trial=512,
            min_errors=15, max_trials=8, min_trials=4, rng=20,
        )
        rows.append((d, fb.rate, fwd.rate, fb.errors, fb.trials))
    return rows


def bench_f2_feedback_ber(benchmark):
    rows = run_and_emit(benchmark, "f2_feedback_ber", run_f2,
                        trials=len(DISTANCES_M) * (20 + 8),
                        scenario="calibrated-default", seed=20)
    table = format_table(
        ["distance_m", "feedback_ber", "forward_ber",
         "fb_errors", "fb_bits"],
        rows,
    )
    save_result("f2_feedback_ber", table)

    # Shape: at every distance where the data channel still works at all
    # (forward BER < 10 %), the feedback channel is at least as good.
    for _, fb_ber, fwd_ber, _, _ in rows:
        if fwd_ber < 0.1:
            assert fb_ber <= fwd_ber + 1e-9
    # And the feedback channel is error-free well beyond the data
    # channel's comfortable range.
    assert rows[2][1] == 0.0  # 2 m
