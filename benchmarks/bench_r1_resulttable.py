"""R1 — Columnar ResultTable: binary store codec + adaptive allocation.

Two claims behind the store re-platform, gated in CI (ISSUE 8):

* **codec** — `ResultStore.put`/`get` on the binary ``.rpt`` codec is
  at least :data:`REQUIRED_SPEEDUP`× faster per 1k-record table than
  the first-generation JSON/dict format (re-measured here as
  ``to_json``/``from_json`` file round trips, exactly what the old
  store did);
* **allocation** — on a 3-cell grid with deliberately unequal variance,
  adaptive Wilson-width allocation reaches the same max interval width
  as the fixed-budget baseline with at most
  :data:`REQUIRED_TRIALS_RATIO` of the trials.

Run as a script (the CI full job does): prints both tables, writes
``BENCH_r1_resulttable.json``, exits non-zero if either bar is missed.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import tempfile
import time
from pathlib import Path

from common import emit_bench_json, save_result

from repro.analysis.reporting import format_table
from repro.campaigns import CampaignRunner, CampaignSpec, adaptive_run
from repro.campaigns.adaptive import WILSON_COUNTS, _ratio_counts, unit_width
from repro.experiments import TRIAL_AGGREGATES, TRIAL_KINDS, get_scenario
from repro.experiments.results import ResultTable
from repro.experiments.runner import ber_aggregate
from repro.store import ResultStore, cached_run, result_key

SEED = 7
N_RECORDS = 1_000
REPEATS = 5

#: CI bars (ISSUE 8 acceptance criteria).
REQUIRED_SPEEDUP = 3.0
REQUIRED_TRIALS_RATIO = 0.7

#: Adaptive-vs-fixed grid: Bernoulli cells spanning 25x in variance.
GRID_PROBS = (0.02, 0.1, 0.5)
PRECISION = 0.08
FLOOR = 8


def _sample_table(n: int) -> ResultTable:
    """A realistic trial table: int, float and str columns."""
    table = ResultTable(metadata={"kind": "bench", "seed": SEED,
                                  "n_trials": n})
    for i in range(n):
        table.append({
            "trial": i,
            "errors": (i * 7) % 3,
            "bits": 256,
            "ber": ((i * 7) % 3) / 256.0,
            "arm": "fd-abort" if i % 2 else "hd-arq",
        })
    return table


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_codec() -> dict:
    """put+get wall time per 1k-record table: JSON baseline vs binary."""
    table = _sample_table(N_RECORDS)
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "trials-1000.json"

        def json_put():
            json_path.write_text(table.to_json() + "\n")

        def json_get():
            ResultTable.from_json(json_path.read_text())

        json_put_s = _best_of(REPEATS, json_put)
        json_get_s = _best_of(REPEATS, json_get)

        store = ResultStore(Path(tmp) / "store")
        key = result_key(get_scenario("calibrated-default"), "forward-ber",
                         N_RECORDS, SEED)
        binary_put_s = _best_of(REPEATS, lambda: store.put(key, table))
        binary_get_s = _best_of(REPEATS, lambda: store.get(key))
        blob_bytes = store.path_for(key).stat().st_size
        json_bytes = json_path.stat().st_size

    json_total = json_put_s + json_get_s
    binary_total = binary_put_s + binary_get_s
    return {
        "json_put_ms": json_put_s * 1e3,
        "json_get_ms": json_get_s * 1e3,
        "binary_put_ms": binary_put_s * 1e3,
        "binary_get_ms": binary_get_s * 1e3,
        "json_total_ms": json_total * 1e3,
        "binary_total_ms": binary_total * 1e3,
        "speedup": json_total / binary_total,
        "json_bytes": json_bytes,
        "binary_bytes": blob_bytes,
    }


def _bernoulli_trial(spec, rng) -> dict:
    """One Bernoulli draw; ``mac_loss_probability`` is the knob."""
    return {
        "errors": int(rng.random() < spec.mac_loss_probability),
        "bits": 1,
    }


def _bench_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-r1-adaptive",
        kinds=("bench-bernoulli",),
        grid={"mac_loss_probability": GRID_PROBS},
        n_trials=FLOOR,
        seed=SEED,
    )


def bench_allocation() -> dict:
    """Trials-to-precision: adaptive vs uniform doubling baseline."""
    TRIAL_KINDS["bench-bernoulli"] = _bernoulli_trial
    TRIAL_AGGREGATES["bench-bernoulli"] = ber_aggregate
    WILSON_COUNTS["bench-bernoulli"] = _ratio_counts("errors", "bits")
    camp = _bench_campaign()
    target = 2.0 * PRECISION
    with tempfile.TemporaryDirectory() as tmp:
        runner = CampaignRunner(store=ResultStore(Path(tmp) / "adaptive"))
        adaptive = adaptive_run(runner, camp, precision=PRECISION)
        assert adaptive.converged, "adaptive run failed to converge"

        # Fixed baseline: every cell at the same budget, doubled until
        # the widest cell clears the same target.
        fixed_store = ResultStore(Path(tmp) / "fixed")
        fixed_runner = CampaignRunner(store=fixed_store)
        n = FLOOR
        while True:
            widths = []
            for unit in camp.units(n_trials=n):
                out = cached_run(fixed_store,
                                 fixed_runner.runner_for(unit),
                                 unit.spec, seed=unit.seed)
                widths.append(unit_width(unit.kind, out.table))
            if max(widths) <= target:
                break
            n *= 2
        fixed_total = n * len(GRID_PROBS)
    return {
        "adaptive_trials": adaptive.total_trials,
        "adaptive_budgets": [c.n_trials for c in adaptive.cells],
        "adaptive_max_width": adaptive.max_width,
        "fixed_trials": fixed_total,
        "fixed_trials_per_cell": n,
        "fixed_max_width": max(widths),
        "trials_ratio": adaptive.total_trials / fixed_total,
        "rounds": adaptive.rounds,
    }


def main() -> int:
    codec = bench_codec()
    alloc = bench_allocation()

    rows = [
        ("json", f"{codec['json_put_ms']:.3f}",
         f"{codec['json_get_ms']:.3f}", f"{codec['json_bytes']}"),
        ("binary", f"{codec['binary_put_ms']:.3f}",
         f"{codec['binary_get_ms']:.3f}", f"{codec['binary_bytes']}"),
    ]
    text = format_table(
        ["format", "put_ms/1k", "get_ms/1k", "bytes"], rows
    )
    text += (f"\nput+get speedup: {codec['speedup']:.2f}x "
             f"(required >= {REQUIRED_SPEEDUP}x)\n")
    text += format_table(
        ["allocation", "trials", "max_width"],
        [("adaptive", alloc["adaptive_trials"],
          f"{alloc['adaptive_max_width']:.4f}"),
         ("fixed", alloc["fixed_trials"],
          f"{alloc['fixed_max_width']:.4f}")],
    )
    text += (f"\ntrials ratio: {alloc['trials_ratio']:.3f} "
             f"(required <= {REQUIRED_TRIALS_RATIO})")
    save_result("r1_resulttable", text)

    emit_bench_json(
        "r1_resulttable",
        wall_time_s=(codec["json_total_ms"] + codec["binary_total_ms"])
        / 1e3,
        trials=N_RECORDS,
        scenario="store:codec+adaptive", seed=SEED,
        json_put_ms=round(codec["json_put_ms"], 4),
        json_get_ms=round(codec["json_get_ms"], 4),
        binary_put_ms=round(codec["binary_put_ms"], 4),
        binary_get_ms=round(codec["binary_get_ms"], 4),
        put_get_speedup=round(codec["speedup"], 3),
        required_speedup=REQUIRED_SPEEDUP,
        json_bytes=codec["json_bytes"],
        binary_bytes=codec["binary_bytes"],
        adaptive_trials=alloc["adaptive_trials"],
        adaptive_budgets=alloc["adaptive_budgets"],
        fixed_trials=alloc["fixed_trials"],
        trials_ratio=round(alloc["trials_ratio"], 4),
        required_trials_ratio=REQUIRED_TRIALS_RATIO,
        adaptive_rounds=alloc["rounds"],
    )

    failed = False
    if codec["speedup"] < REQUIRED_SPEEDUP:
        print("PERF REGRESSION: binary codec only "
              f"{codec['speedup']:.2f}x faster (need >= "
              f"{REQUIRED_SPEEDUP}x)")
        failed = True
    if alloc["trials_ratio"] > REQUIRED_TRIALS_RATIO:
        print("ALLOCATION REGRESSION: adaptive used "
              f"{alloc['trials_ratio']:.3f} of the fixed trials "
              f"(need <= {REQUIRED_TRIALS_RATIO})")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
