"""M1 — Replicated MAC contention: FD early abort vs HD ARQ vs ALOHA.

Paper claim at the network level: under contention, full-duplex
feedback lets a doomed transmission stop early, so the early-abort arm
recovers goodput the half-duplex stop-and-wait arm burns on whole-packet
retries and ACK exchanges — with the gap widening as offered load grows.

Unlike the single-seed F4/F5 benches this one runs *replicated* trials
through :class:`~repro.experiments.runner.ExperimentRunner` (the MAC
trial kind), pools them with Wilson bounds, and cross-checks the no-ARQ
arm against the unslotted-ALOHA load curve: delivery must match
``(1 - p_loss) * exp(-2 G (N-1)/N)`` at the realised per-link offered
load (the ``(N-1)/N`` factor is the finite-population correction to
:func:`repro.analysis.theory.aloha_success_probability`).

A second section times the same MAC trial on ``backend="serial"`` vs
``backend="vectorized"`` (the slotted engine, ``repro.mac.batch``) with
its own larger replication budget — the figure's 3 trials/arm cannot
amortise a chunked engine — and emits
``serial_trials_per_sec`` / ``vectorized_trials_per_sec`` / ``speedup``
in BENCH_m1_contention.json, matching the bench_f7 schema so the perf
trajectory is comparable across benches.  Run as a script with
``--perf-guard`` for the CI regression gate: a small configuration that
exits non-zero when the speedup drops below
:data:`GUARD_REQUIRED_SPEEDUP`.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import math
import time

from common import emit_bench_json, run_and_emit, save_result

from repro.analysis.contention import summarize_mac_table
from repro.analysis.reporting import format_table
from repro.experiments import ExperimentRunner, get_scenario, mac_trial, run_mac_arms

#: Offered load points G [packets per packet airtime, network-wide].
LOADS = [0.1, 0.4, 0.8, 1.2]
ARMS = ("no-arq", "hd-arq", "fd-abort")
NUM_LINKS = 12
LOSS = 0.1
TRIALS = 3
SEED = 60

#: Replication budget for the serial-vs-vectorized timing section (the
#: figure's TRIALS=3 cannot amortise the slotted engine's chunked loop).
SPEEDUP_TRIALS = 192
#: Load point G the timing section runs at (mid-contention).
SPEEDUP_LOAD = 0.8
#: Full-bench acceptance bar (matches bench_f7's REQUIRED_SPEEDUP).
REQUIRED_SPEEDUP = 5.0
#: CI perf-guard bar — deliberately looser than the full bench, so the
#: gate trips on real regressions rather than noisy shared runners.
GUARD_REQUIRED_SPEEDUP = 3.0


def _base_spec():
    return get_scenario("calibrated-default").replace(
        mac_num_links=NUM_LINKS,
        mac_payload_bytes=32,
        mac_loss_probability=LOSS,
        mac_horizon_seconds=150.0,
    )


def run_m1():
    base = _base_spec()
    packet_seconds = base.build_mac_config().packet_seconds
    runner = ExperimentRunner(trial=mac_trial, max_trials=TRIALS)
    rows = []
    for load in LOADS:
        rate = load / (NUM_LINKS * packet_seconds)
        spec = base.replace(mac_arrival_rate_pps=rate)
        tables = run_mac_arms(spec, ARMS, runner=runner, seed=SEED)
        summaries = {arm: summarize_mac_table(t) for arm, t in tables.items()}
        # ALOHA cross-check at the *realised* offered load: attempts per
        # packet airtime from the links a tagged packet contends with.
        no_arq = summaries["no-arq"]
        sim_seconds = TRIALS * spec.mac_horizon_seconds
        g_real = no_arq.attempts * packet_seconds / sim_seconds
        g_other = g_real * (NUM_LINKS - 1) / NUM_LINKS
        aloha_delivery = (1.0 - LOSS) * math.exp(-2.0 * g_other)
        rows.append({
            "load": load,
            "noarq_delivery": no_arq.delivery_ratio,
            "noarq_lo": no_arq.delivery_lo,
            "noarq_hi": no_arq.delivery_hi,
            "aloha_delivery": aloha_delivery,
            "hd_goodput_bps": summaries["hd-arq"].goodput_bps,
            "fd_goodput_bps": summaries["fd-abort"].goodput_bps,
            "fd_abort_fraction": summaries["fd-abort"].abort_fraction,
            "hd_nJ_per_bit":
                summaries["hd-arq"].energy_per_delivered_bit * 1e9,
            "fd_nJ_per_bit":
                summaries["fd-abort"].energy_per_delivered_bit * 1e9,
        })
    return rows


def run_speedup(trials=SPEEDUP_TRIALS, num_links=NUM_LINKS,
                horizon_seconds=150.0, seed=SEED):
    """Time serial vs vectorized MAC replications on one spec.

    Returns the bench_f7-style stats dict.  Both backends are warmed
    first so engine construction and lazy imports stay out of the
    steady-state comparison.
    """
    base = _base_spec().replace(mac_num_links=num_links,
                                mac_horizon_seconds=horizon_seconds)
    packet_seconds = base.build_mac_config().packet_seconds
    rate = SPEEDUP_LOAD / (num_links * packet_seconds)
    spec = base.replace(mac_arrival_rate_pps=rate)

    def timed(backend):
        ExperimentRunner(trial=mac_trial, max_trials=2,
                         backend=backend).run(spec, seed=seed)
        runner = ExperimentRunner(trial=mac_trial, max_trials=trials,
                                  backend=backend)
        start = time.perf_counter()
        table = runner.run(spec, seed=seed)
        wall = time.perf_counter() - start
        assert len(table) == trials
        return table, wall

    serial, serial_wall = timed("serial")
    vectorized, vectorized_wall = timed("vectorized")
    # The slotted engine is statistically — not bitwise — equivalent
    # (DESIGN §7); the workload realisation, however, is replayed
    # exactly, so the offered column must agree lane for lane.
    offered = [r["offered_packets"] for r in serial.records]
    if offered != [r["offered_packets"] for r in vectorized.records]:
        raise AssertionError("vectorized workload diverged from serial")
    return {
        "serial_wall_time_s": serial_wall,
        "vectorized_wall_time_s": vectorized_wall,
        "speedup": serial_wall / vectorized_wall,
        "serial_trials_per_sec": trials / serial_wall,
        "vectorized_trials_per_sec": trials / vectorized_wall,
    }


def bench_m1_contention(benchmark):
    perf = run_speedup()
    rows = run_and_emit(
        benchmark, "m1_contention", run_m1,
        trials=len(LOADS) * len(ARMS) * TRIALS,
        scenario="mac:replicated-load-sweep", seed=SEED,
        loads=LOADS, arms=list(ARMS), num_links=NUM_LINKS,
        speedup_trials=SPEEDUP_TRIALS,
        serial_wall_time_s=round(perf["serial_wall_time_s"], 6),
        vectorized_wall_time_s=round(perf["vectorized_wall_time_s"], 6),
        serial_trials_per_sec=round(perf["serial_trials_per_sec"], 3),
        vectorized_trials_per_sec=round(
            perf["vectorized_trials_per_sec"], 3),
        speedup=round(perf["speedup"], 3),
        goodput_bps=lambda out: {
            arm: [round(r[f"{key}_goodput_bps"], 3) for r in out]
            for arm, key in (("hd-arq", "hd"), ("fd-abort", "fd"))
        },
    )
    table = format_table(
        ["G", "noarq_delivery", "aloha_theory", "hd_goodput_bps",
         "fd_goodput_bps", "fd_aborts", "hd_nJ_per_bit", "fd_nJ_per_bit"],
        [(r["load"], r["noarq_delivery"], r["aloha_delivery"],
          r["hd_goodput_bps"], r["fd_goodput_bps"], r["fd_abort_fraction"],
          r["hd_nJ_per_bit"], r["fd_nJ_per_bit"]) for r in rows],
    )
    save_result("m1_contention", table)

    # Shape 1: the no-ARQ arm tracks the ALOHA curve — theory inside the
    # pooled Wilson interval (with a small slack for the queueing and
    # horizon-edge effects the closed form ignores).
    slack = 0.04
    for r in rows:
        assert r["noarq_lo"] - slack <= r["aloha_delivery"] <= r["noarq_hi"] + slack, r
    # Shape 2: the headline claim — FD early abort beats HD ARQ on
    # goodput at every load, decisively at high offered load.
    for r in rows:
        assert r["fd_goodput_bps"] >= r["hd_goodput_bps"], r
    high = rows[-1]
    assert high["fd_goodput_bps"] > 1.5 * high["hd_goodput_bps"]
    # Shape 3: aborts engage harder as contention grows.
    assert rows[-1]["fd_abort_fraction"] > rows[0]["fd_abort_fraction"]
    # Shape 4: FD spends less energy per delivered bit than HD.
    for r in rows:
        assert r["fd_nJ_per_bit"] < r["hd_nJ_per_bit"], r
    # Perf: the slotted engine must clear the batched-backend bar.
    assert perf["speedup"] >= REQUIRED_SPEEDUP, (
        f"vectorized MAC engine only {perf['speedup']:.2f}x faster "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )


def perf_guard() -> int:
    """CI regression gate: small speedup run, non-zero exit on a miss.

    Deliberately smaller than the full bench (fewer replications, a
    shorter horizon) so the gate costs seconds, with the bar lowered to
    :data:`GUARD_REQUIRED_SPEEDUP` to absorb shared-runner noise.  The
    measurement lands in BENCH_m1_perf_guard.json for the artifact
    upload either way.
    """
    trials, horizon = 96, 60.0
    perf = run_speedup(trials=trials, horizon_seconds=horizon)
    emit_bench_json(
        "m1_perf_guard",
        wall_time_s=perf["vectorized_wall_time_s"],
        trials=trials,
        scenario="mac:perf-guard", seed=SEED,
        horizon_seconds=horizon, num_links=NUM_LINKS,
        serial_wall_time_s=round(perf["serial_wall_time_s"], 6),
        serial_trials_per_sec=round(perf["serial_trials_per_sec"], 3),
        vectorized_trials_per_sec=round(
            perf["vectorized_trials_per_sec"], 3),
        speedup=round(perf["speedup"], 3),
        required_speedup=GUARD_REQUIRED_SPEEDUP,
    )
    print(f"serial     : {perf['serial_trials_per_sec']:8.1f} trials/s")
    print(f"vectorized : {perf['vectorized_trials_per_sec']:8.1f} trials/s")
    print(f"speedup    : {perf['speedup']:8.2f}x "
          f"(required >= {GUARD_REQUIRED_SPEEDUP}x)")
    if perf["speedup"] < GUARD_REQUIRED_SPEEDUP:
        print("PERF REGRESSION: vectorized MAC engine below the bar")
        return 1
    return 0


if __name__ == "__main__":
    if "--perf-guard" in sys.argv[1:]:
        raise SystemExit(perf_guard())
    raise SystemExit(
        "run under pytest-benchmark (see bench_f7 docstring) or pass "
        "--perf-guard"
    )
