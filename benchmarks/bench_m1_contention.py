"""M1 — Replicated MAC contention: FD early abort vs HD ARQ vs ALOHA.

Paper claim at the network level: under contention, full-duplex
feedback lets a doomed transmission stop early, so the early-abort arm
recovers goodput the half-duplex stop-and-wait arm burns on whole-packet
retries and ACK exchanges — with the gap widening as offered load grows.

Unlike the single-seed F4/F5 benches this one runs *replicated* trials
through :class:`~repro.experiments.runner.ExperimentRunner` (the MAC
trial kind), pools them with Wilson bounds, and cross-checks the no-ARQ
arm against the unslotted-ALOHA load curve: delivery must match
``(1 - p_loss) * exp(-2 G (N-1)/N)`` at the realised per-link offered
load (the ``(N-1)/N`` factor is the finite-population correction to
:func:`repro.analysis.theory.aloha_success_probability`).
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import math

from common import run_and_emit, save_result

from repro.analysis.contention import summarize_mac_table
from repro.analysis.reporting import format_table
from repro.experiments import ExperimentRunner, get_scenario, mac_trial, run_mac_arms

#: Offered load points G [packets per packet airtime, network-wide].
LOADS = [0.1, 0.4, 0.8, 1.2]
ARMS = ("no-arq", "hd-arq", "fd-abort")
NUM_LINKS = 12
LOSS = 0.1
TRIALS = 3
SEED = 60


def _base_spec():
    return get_scenario("calibrated-default").replace(
        mac_num_links=NUM_LINKS,
        mac_payload_bytes=32,
        mac_loss_probability=LOSS,
        mac_horizon_seconds=150.0,
    )


def run_m1():
    base = _base_spec()
    packet_seconds = base.build_mac_config().packet_seconds
    runner = ExperimentRunner(trial=mac_trial, max_trials=TRIALS)
    rows = []
    for load in LOADS:
        rate = load / (NUM_LINKS * packet_seconds)
        spec = base.replace(mac_arrival_rate_pps=rate)
        tables = run_mac_arms(spec, ARMS, runner=runner, seed=SEED)
        summaries = {arm: summarize_mac_table(t) for arm, t in tables.items()}
        # ALOHA cross-check at the *realised* offered load: attempts per
        # packet airtime from the links a tagged packet contends with.
        no_arq = summaries["no-arq"]
        sim_seconds = TRIALS * spec.mac_horizon_seconds
        g_real = no_arq.attempts * packet_seconds / sim_seconds
        g_other = g_real * (NUM_LINKS - 1) / NUM_LINKS
        aloha_delivery = (1.0 - LOSS) * math.exp(-2.0 * g_other)
        rows.append({
            "load": load,
            "noarq_delivery": no_arq.delivery_ratio,
            "noarq_lo": no_arq.delivery_lo,
            "noarq_hi": no_arq.delivery_hi,
            "aloha_delivery": aloha_delivery,
            "hd_goodput_bps": summaries["hd-arq"].goodput_bps,
            "fd_goodput_bps": summaries["fd-abort"].goodput_bps,
            "fd_abort_fraction": summaries["fd-abort"].abort_fraction,
            "hd_nJ_per_bit":
                summaries["hd-arq"].energy_per_delivered_bit * 1e9,
            "fd_nJ_per_bit":
                summaries["fd-abort"].energy_per_delivered_bit * 1e9,
        })
    return rows


def bench_m1_contention(benchmark):
    rows = run_and_emit(
        benchmark, "m1_contention", run_m1,
        trials=len(LOADS) * len(ARMS) * TRIALS,
        scenario="mac:replicated-load-sweep", seed=SEED,
        loads=LOADS, arms=list(ARMS), num_links=NUM_LINKS,
        goodput_bps=lambda out: {
            arm: [round(r[f"{key}_goodput_bps"], 3) for r in out]
            for arm, key in (("hd-arq", "hd"), ("fd-abort", "fd"))
        },
    )
    table = format_table(
        ["G", "noarq_delivery", "aloha_theory", "hd_goodput_bps",
         "fd_goodput_bps", "fd_aborts", "hd_nJ_per_bit", "fd_nJ_per_bit"],
        [(r["load"], r["noarq_delivery"], r["aloha_delivery"],
          r["hd_goodput_bps"], r["fd_goodput_bps"], r["fd_abort_fraction"],
          r["hd_nJ_per_bit"], r["fd_nJ_per_bit"]) for r in rows],
    )
    save_result("m1_contention", table)

    # Shape 1: the no-ARQ arm tracks the ALOHA curve — theory inside the
    # pooled Wilson interval (with a small slack for the queueing and
    # horizon-edge effects the closed form ignores).
    slack = 0.04
    for r in rows:
        assert r["noarq_lo"] - slack <= r["aloha_delivery"] <= r["noarq_hi"] + slack, r
    # Shape 2: the headline claim — FD early abort beats HD ARQ on
    # goodput at every load, decisively at high offered load.
    for r in rows:
        assert r["fd_goodput_bps"] >= r["hd_goodput_bps"], r
    high = rows[-1]
    assert high["fd_goodput_bps"] > 1.5 * high["hd_goodput_bps"]
    # Shape 3: aborts engage harder as contention grows.
    assert rows[-1]["fd_abort_fraction"] > rows[0]["fd_abort_fraction"]
    # Shape 4: FD spends less energy per delivered bit than HD.
    for r in rows:
        assert r["fd_nJ_per_bit"] < r["hd_nJ_per_bit"], r
