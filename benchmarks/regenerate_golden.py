"""Regenerate the golden regression fixtures under ``tests/golden/``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/regenerate_golden.py

The snapshot definition — scenarios, seed, trial kinds/counts and the
aggregate computation — lives in ``tests/test_golden_results.py`` so the
script and the test can never disagree about what is being frozen.  Run
this ONLY after an *intended* change to the physics/DSP/decode chain,
and commit the regenerated fixtures together with that change; a fixture
diff with no explaining change is a regression, not a refresh.
"""

import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tests"))

from test_golden_results import (  # noqa: E402
    GOLDEN_DIR,
    GOLDEN_SCENARIOS,
    compute_golden,
)


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_SCENARIOS:
        path = GOLDEN_DIR / f"{name}.json"
        snapshot = compute_golden(name)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
