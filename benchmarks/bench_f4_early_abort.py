"""F4 — Early collision abort: transmit-energy savings vs contention.

Paper claim: with instantaneous feedback, a transmitter stops wasting
energy on doomed packets the moment its receiver sees the collision;
the savings grow with the collision rate (network size / offered load).
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import run_and_emit, save_result

from repro.analysis.reporting import format_table
from repro.mac.node import run_policy_comparison
from repro.mac.simulator import SimulationConfig
from repro.mac.traffic import BernoulliLoss

LINK_COUNTS = [2, 4, 8, 12, 16]


def run_f4():
    rows = []
    for n in LINK_COUNTS:
        cfg = SimulationConfig(
            num_links=n, arrival_rate_pps=0.25, horizon_seconds=150.0,
            payload_bytes=64, loss=BernoulliLoss(0.02),
        )
        res = run_policy_comparison(cfg, seed=40)
        hd, fd = res["hd-arq"], res["fd-abort"]
        savings = 1.0 - (fd.total_tx_energy_joule / hd.total_tx_energy_joule)
        rows.append((
            n,
            hd.total_tx_energy_joule * 1e6,
            fd.total_tx_energy_joule * 1e6,
            savings,
            fd.abort_fraction,
        ))
    return rows


def bench_f4_early_abort(benchmark):
    rows = run_and_emit(benchmark, "f4_early_abort", run_f4,
                        trials=len(LINK_COUNTS) * 3,
                        scenario="mac:congestion-sweep", seed=40)
    table = format_table(
        ["links", "hd_tx_energy_uJ", "fd_tx_energy_uJ",
         "fd_energy_savings", "fd_abort_fraction"],
        rows,
    )
    save_result("f4_early_abort", table)

    savings = [r[3] for r in rows]
    aborts = [r[4] for r in rows]
    # Shape 1: FD saves transmit energy at every contention level.
    assert all(s > 0 for s in savings)
    # Shape 2: aborts engage more as contention grows.
    assert aborts[-1] > aborts[0]
    # Shape 3: savings are substantial (>20 %) once the channel is busy.
    assert savings[-1] > 0.2
