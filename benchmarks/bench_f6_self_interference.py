"""F6 — Self-interference handling ablation at the receiving tag.

Paper claim: a device's own slow feedback switching would wreck naive
reception, but (a) the adaptive moving-average threshold absorbs it for
threshold-based decoding, and (b) the known-state digital compensation
removes it entirely.  The ablation decodes the same exchanges with each
mechanism disabled.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import numpy as np

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.reporting import format_table
from repro.fullduplex.selfinterference import residual_self_interference
from repro.utils.rng import random_bits

TRIALS = 8


def run_f6():
    scene = scene_at(0.75)
    variants = {
        "compensated": make_link(self_compensation=True),
        "uncompensated": make_link(self_compensation=False),
    }
    rows = []
    residuals = {}
    for name, (cfg, link, channel) in variants.items():
        errors = 0
        total = 0
        for t in range(TRIALS):
            rng = np.random.default_rng(60 + t)
            gains = channel.realize(scene, rng)
            data = random_bits(np.random.default_rng(70 + t), 512)
            fb = random_bits(np.random.default_rng(80 + t), 8)
            decoded, _, _ = link.run_raw_bits(gains, data, fb, rng=rng)
            errors += int(np.count_nonzero(decoded != data))
            total += data.size
        rows.append((name, errors / total, errors, total))

        # Residual self-interference metric on one exchange's envelope.
        from repro.fullduplex.feedback import feedback_waveform
        from repro.phy import BackscatterReceiver, BackscatterTransmitter
        from repro.hardware.reflection import ReflectionModulator

        rng = np.random.default_rng(99)
        gains = channel.realize(scene, rng)
        phy = cfg.phy
        data = random_bits(rng, 256)
        tx = BackscatterTransmitter(phy)
        wf = tx.transmit_bits(data)
        fb_wave = feedback_waveform(
            random_bits(rng, wf.num_samples // cfg.samples_per_feedback_bit),
            cfg,
        )
        chips_b = np.zeros(wf.num_samples, dtype=np.uint8)
        chips_b[: fb_wave.size] = fb_wave
        mod = ReflectionModulator(states=tx.states, samples_per_chip=1)
        ambient = link.source.samples(wf.num_samples, rng)
        incident = gains.received(
            "bob", ambient, {"alice": mod.reflection_waveform(
                wf.chip_waveform)}, rng=rng,
        )
        rx = BackscatterReceiver(phy, self_compensation=(name == "compensated"))
        env = rx.envelope(incident, own_chip_waveform=chips_b)
        residuals[name] = residual_self_interference(env, chips_b)
    return rows, residuals


def bench_f6_self_interference(benchmark):
    rows, residuals = run_and_emit(
        benchmark, "f6_self_interference", run_f6,
        trials=2 * TRIALS, scenario="calibrated-default", seed=60)
    table = format_table(["variant", "data_ber", "errors", "bits"], rows)
    table += "\n\nresidual self-interference (level gap / mean envelope):\n"
    for name, value in residuals.items():
        table += f"  {name}: {value:.4f}\n"
    save_result("f6_self_interference", table)

    ber = {name: b for name, b, _, _ in rows}
    # Shape 1: compensation eliminates the error floor.
    assert ber["compensated"] < 1e-3
    # Shape 2: without it, the floor is visible (more errors).
    assert ber["uncompensated"] > ber["compensated"]
    # Shape 3: the residual metric confirms the mechanism.
    assert residuals["compensated"] < 0.1 * residuals["uncompensated"]
