"""S1 — Result store: cold vs warm campaign wall time, store overhead.

The store's value proposition is that the *second* run of any campaign
costs only disk reads: this bench runs a small real campaign cold, runs
it again warm (asserting zero trials execute and the reports agree byte
for byte), and reports the speedup.  It also measures the raw store
overhead — put/get wall time per 1000 records — so the caching layer's
own cost stays on the perf trajectory alongside the trial engines it
amortises.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import tempfile
import time

from common import run_and_emit, save_result

from repro.analysis.reporting import format_table
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.experiments import ResultTable, ScenarioSpec
from repro.store import ResultStore, result_key

#: Trial budget per campaign unit (4 distances x 1 kind = 4 units).
TRIALS = 50
SEED = 61

#: Synthetic-table size for the raw put/get overhead measurement.
OVERHEAD_RECORDS = 1000


def _bench_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="bench-s1-store",
        description="store bench: forward BER over 4 ranges",
        scenario="calibrated-default",
        grid={"distance_m": (0.5, 1.0, 1.5, 2.0)},
        kinds=("forward-ber",),
        n_trials=TRIALS,
        seed=SEED,
    )


def _store_overhead_ms(store: ResultStore) -> tuple[float, float]:
    """(put, get) wall milliseconds per OVERHEAD_RECORDS records."""
    table = ResultTable(metadata={"bench": "s1"})
    table.extend(
        {"trial": i, "errors": i % 3, "bits": 256, "ber": (i % 3) / 256}
        for i in range(OVERHEAD_RECORDS)
    )
    key = result_key(
        ScenarioSpec(name="bench-s1-overhead"),
        "forward-ber", OVERHEAD_RECORDS, SEED,
    )
    start = time.perf_counter()
    store.put(key, table)
    put_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    loaded = store.get(key)
    get_ms = (time.perf_counter() - start) * 1e3
    assert len(loaded) == OVERHEAD_RECORDS
    return put_ms, get_ms


def run_s1() -> dict:
    camp = _bench_campaign()
    with tempfile.TemporaryDirectory() as root:
        runner = CampaignRunner(store=ResultStore(root),
                                backend="vectorized")
        start = time.perf_counter()
        cold = runner.run(camp)
        cold_s = time.perf_counter() - start
        report_cold = {
            k: t.to_json() for k, t in runner.report(camp).items()
        }
        start = time.perf_counter()
        warm = runner.run(camp)
        warm_s = time.perf_counter() - start
        report_warm = {
            k: t.to_json() for k, t in runner.report(camp).items()
        }
        put_ms, get_ms = _store_overhead_ms(runner.store)
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "cold_trials": cold.trials_computed,
        "warm_trials": warm.trials_computed,
        "units": len(cold.units),
        "reports_identical": report_cold == report_warm,
        "put_ms_per_1k": put_ms,
        "get_ms_per_1k": get_ms,
    }


def bench_s1_store(benchmark):
    out = run_and_emit(
        benchmark, "s1_store", run_s1,
        trials=lambda o: o["cold_trials"],
        scenario="calibrated-default", seed=SEED,
        warm_s=lambda o: round(o["warm_s"], 6),
        cache_speedup=lambda o: round(o["speedup"], 1),
        units=lambda o: o["units"],
        put_ms_per_1k_records=lambda o: round(o["put_ms_per_1k"], 3),
        get_ms_per_1k_records=lambda o: round(o["get_ms_per_1k"], 3),
    )
    table = format_table(
        ["metric", "value"],
        [
            ("cold campaign [s]", round(out["cold_s"], 4)),
            ("warm campaign [s]", round(out["warm_s"], 4)),
            ("cache speedup", round(out["speedup"], 1)),
            ("trials cold/warm", f"{out['cold_trials']}/{out['warm_trials']}"),
            ("put ms / 1k records", round(out["put_ms_per_1k"], 3)),
            ("get ms / 1k records", round(out["get_ms_per_1k"], 3)),
        ],
    )
    save_result("s1_store", table)

    # Shape 1: the warm run executes zero trials and reports identically.
    assert out["warm_trials"] == 0
    assert out["reports_identical"]
    # Shape 2: serving from the store beats recomputing decisively.
    assert out["speedup"] > 5.0
    # Shape 3: store overhead stays far below one trial's cost per
    # record (sub-millisecond-per-record territory).
    assert out["put_ms_per_1k"] < 1000.0
    assert out["get_ms_per_1k"] < 1000.0


if __name__ == "__main__":
    import json

    print(json.dumps({k: str(v) for k, v in run_s1().items()}, indent=2))
