"""F1 — Forward (data) BER vs distance, with and without concurrent
feedback.

Paper claim: the receiver can transmit feedback while receiving with
essentially no penalty on the data channel; data BER rises with tag
separation and bounds the operating range at a couple of metres.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.ber import measure_forward_ber
from repro.analysis.reporting import format_table

DISTANCES_M = [0.3, 0.5, 1.0, 2.0, 3.0, 4.0]


def run_f1():
    cfg, link, channel = make_link()
    rows = []
    for d in DISTANCES_M:
        scene = scene_at(d)
        with_fb = measure_forward_ber(
            link, channel, scene, bits_per_trial=256,
            min_errors=20, max_trials=30, min_trials=8, rng=10,
            feedback_enabled=True,
        )
        without_fb = measure_forward_ber(
            link, channel, scene, bits_per_trial=256,
            min_errors=20, max_trials=30, min_trials=8, rng=10,
            feedback_enabled=False,
        )
        rows.append((d, with_fb.rate, without_fb.rate,
                     with_fb.errors, with_fb.trials))
    return rows


def bench_f1_forward_ber(benchmark):
    rows = run_and_emit(benchmark, "f1_forward_ber", run_f1,
                        trials=len(DISTANCES_M) * 2 * 30,
                        scenario="calibrated-default", seed=10)
    table = format_table(
        ["distance_m", "ber_with_feedback", "ber_without_feedback",
         "errors", "bits"],
        rows,
    )
    save_result("f1_forward_ber", table)

    ber_on = [r[1] for r in rows]
    ber_off = [r[2] for r in rows]
    # Shape 1: BER rises with distance (compare near vs far arms).
    assert ber_on[0] <= ber_on[-1]
    assert ber_on[0] < 1e-2 and ber_on[-1] > 1e-2
    # Shape 2: concurrent feedback is essentially free — the penalty at
    # every distance is under 1 percentage point of BER.
    for on, off in zip(ber_on, ber_off):
        assert on - off < 0.01
