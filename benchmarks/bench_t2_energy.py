"""T2 — Energy table: per-packet budgets and harvest-vs-spend balance.

Reports (a) protocol-level per-delivered-packet energy by component,
and (b) the sample-level harvested energy at each device during one
exchange — the battery-free viability check.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import numpy as np

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.reporting import format_table
from repro.hardware.energy import EnergyModel
from repro.mac.node import run_policy_comparison
from repro.mac.simulator import SimulationConfig
from repro.mac.traffic import BernoulliLoss
from repro.phy.framing import random_frame
from repro.utils.rng import random_bits


def run_t2():
    # Protocol-level energy per delivered packet.
    cfg = SimulationConfig(num_links=4, arrival_rate_pps=0.4,
                           horizon_seconds=150.0, payload_bytes=64,
                           loss=BernoulliLoss(0.15))
    res = run_policy_comparison(cfg, seed=120, energy=EnergyModel())
    proto_rows = []
    for name, metrics in res.items():
        delivered = sum(n.delivered_packets for n in metrics.nodes)
        tx = metrics.total_tx_energy_joule
        total = metrics.total_energy_joule
        proto_rows.append((
            name,
            delivered,
            (tx / delivered * 1e9) if delivered else float("inf"),
            (total / delivered * 1e9) if delivered else float("inf"),
        ))

    # Sample-level harvest during one exchange at 0.5 m.
    fd_cfg, link, channel = make_link()
    rng = np.random.default_rng(121)
    gains = channel.realize(scene_at(0.5), rng)
    frame = random_frame(32, rng)
    exchange = link.run(gains, frame, random_bits(rng, 8), rng=rng)
    duration = (
        exchange.data_bits_sent.size / fd_cfg.phy.bit_rate_bps
    )
    harvest_rows = [
        ("transmitter (A)", exchange.harvested_a_joule * 1e9,
         exchange.harvested_a_joule / duration * 1e9),
        ("receiver (B)", exchange.harvested_b_joule * 1e9,
         exchange.harvested_b_joule / duration * 1e9),
    ]
    return proto_rows, harvest_rows


def bench_t2_energy(benchmark):
    proto_rows, harvest_rows = run_and_emit(
        benchmark, "t2_energy", run_t2,
        trials=4, scenario="calibrated-default", seed=120)
    table = format_table(
        ["policy", "delivered", "tx_nJ_per_packet", "total_nJ_per_packet"],
        proto_rows,
    )
    table += "\n\n" + format_table(
        ["device", "harvested_nJ_per_exchange", "harvest_rate_nW"],
        harvest_rows,
    )
    save_result("t2_energy", table)

    by_name = {r[0]: r for r in proto_rows}
    # Shape 1: FD-abort spends the least per delivered packet among ARQs.
    assert by_name["fd-abort"][3] < by_name["hd-arq"][3]
    # Shape 2: both devices harvest nonzero energy during an exchange.
    for _, harvested, _ in harvest_rows:
        assert harvested > 0
