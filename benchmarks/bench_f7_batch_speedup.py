"""F7 — Batched trial engine speedup over the scalar inner loop.

Not a paper figure: this bench tracks the perf claim of the vectorized
Monte-Carlo backend (`repro.experiments.batch`).  It runs the same
`forward_ber` trial budget on the calibrated default scenario through
`backend="serial"` and `backend="vectorized"` on a single process and
asserts the batched engine is at least 5× faster while producing
bit-identical records (the golden-equivalence suite pins the same
contract at test scale).

Regenerate the checked-in artifact with::

    OMP_NUM_THREADS=1 PYTHONPATH=src:benchmarks python -m pytest \
        benchmarks/bench_f7_batch_speedup.py -q \
        -o python_files="bench_*.py" -o python_functions="bench_*"
"""

import sys
import time

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import emit_bench_json, save_result

from repro.experiments import (
    ExperimentRunner,
    forward_ber_trial,
    get_scenario,
)

TRIALS = 2000
SEED = 7
SCENARIO = "calibrated-default"
REQUIRED_SPEEDUP = 5.0


def _timed_run(backend: str, spec):
    runner = ExperimentRunner(
        trial=forward_ber_trial, max_trials=TRIALS, backend=backend
    )
    start = time.perf_counter()
    table = runner.run(spec, seed=SEED)
    return table, time.perf_counter() - start


def run_f7():
    spec = get_scenario(SCENARIO)
    # Warm both paths first so stack/engine construction and lazy
    # imports are excluded from the steady-state comparison.
    for backend in ("serial", "vectorized"):
        ExperimentRunner(
            trial=forward_ber_trial, max_trials=2, backend=backend
        ).run(spec, seed=SEED)
    serial, serial_wall = _timed_run("serial", spec)
    vectorized, vectorized_wall = _timed_run("vectorized", spec)
    if serial.records != vectorized.records:
        raise AssertionError(
            "serial and vectorized records diverged at bench scale"
        )
    return {
        "serial_wall_time_s": serial_wall,
        "vectorized_wall_time_s": vectorized_wall,
        "speedup": serial_wall / vectorized_wall,
        "serial_trials_per_sec": TRIALS / serial_wall,
        "vectorized_trials_per_sec": TRIALS / vectorized_wall,
    }


def bench_f7_batch_speedup(benchmark):
    stats = benchmark.pedantic(run_f7, rounds=1, iterations=1)
    lines = [f"{key:>26s}: {value:10.3f}" for key, value in stats.items()]
    save_result("f7_batch_speedup", "\n".join(lines))
    emit_bench_json(
        "f7_batch_speedup",
        # The headline wall time / throughput is the vectorized arm;
        # the serial arm rides along for the speedup trajectory.
        wall_time_s=stats["vectorized_wall_time_s"],
        trials=TRIALS,
        scenario=SCENARIO,
        seed=SEED,
        serial_wall_time_s=round(stats["serial_wall_time_s"], 6),
        serial_trials_per_sec=round(stats["serial_trials_per_sec"], 3),
        speedup=round(stats["speedup"], 3),
    )
    # The acceptance bar: >= 5x single-core speedup at 2000 trials.
    assert stats["speedup"] >= REQUIRED_SPEEDUP, (
        f"vectorized backend only {stats['speedup']:.2f}x faster "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )
