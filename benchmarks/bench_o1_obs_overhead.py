"""O1 — Observability overhead: instrumentation must be ~free when off.

The obs layer (ISSUE 10) instruments the hottest paths in the repo —
``store.get``/``put``, ``cached_run``, the runner's backend dispatch
and the campaign unit loop.  That is only acceptable if the
*disabled* path (no session started, the default for every library
consumer) costs nothing measurable.  This bench pins that contract:

* **null** — the shipped code with no obs session: every ``obs.span``
  call does one global load and returns the shared no-op span.  Must
  be within :data:`NULL_OVERHEAD_MAX` of the stubbed baseline.
* **stub** — the same workload with ``obs.span``/``inc``/``set_gauge``
  monkey-patched to bare no-op lambdas: the cheapest the entry points
  could possibly be, standing in for uninstrumented code.
* **traced** — a live session writing a JSON-lines trace to disk.
  Allowed to cost more, but bounded by :data:`TRACED_OVERHEAD_MAX`.

The workload is one cold campaign (real trial compute, store puts)
plus :data:`WARM_RUNS` warm re-runs (pure store hits — the span-dense
path where per-call overhead would show first).  A micro-benchmark of
the raw ``obs.span`` enter/exit cost rides along in the JSON.

Run as a script (the CI full job does): prints the table, writes
``BENCH_o1_obs_overhead.json``, exits non-zero if either bar is
missed.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import contextlib
import gc
import statistics
import tempfile
import time
from pathlib import Path

from common import emit_bench_json, save_result

import repro.obs as obs
from repro.analysis.reporting import format_table
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.store import ResultStore

SEED = 7
N_TRIALS = 10
WARM_RUNS = 20
REPEATS = 15
SPAN_MICRO_ITERS = 50_000

#: CI bars (ISSUE 10 acceptance criteria).  The null-recorder path must
#: be indistinguishable from no instrumentation at all; live tracing
#: may cost a little, but a campaign is trial-compute dominated, so
#: anything past this bound means a span leaked into a per-trial loop.
NULL_OVERHEAD_MAX = 0.02
TRACED_OVERHEAD_MAX = 0.10

CAMPAIGN = CampaignSpec(
    name="bench-o1-obs",
    overrides={"sample_rate_hz": 32_000.0, "source_bandwidth_hz": 20e3},
    grid={"distance_m": (0.4, 0.8)},
    kinds=("forward-ber",),
    n_trials=N_TRIALS,
    seed=SEED,
)


def _timed_workload() -> float:
    """One cold campaign + WARM_RUNS pure-store-hit re-runs.

    Only the campaign runs are on the clock — tempdir creation and
    teardown are filesystem noise that would swamp a 2 % bar.
    """
    with tempfile.TemporaryDirectory() as tmp:
        runner = CampaignRunner(store=ResultStore(Path(tmp)))
        start = time.perf_counter()
        runner.run(CAMPAIGN)
        for _ in range(WARM_RUNS):
            runner.run(CAMPAIGN)
        return time.perf_counter() - start


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@contextlib.contextmanager
def _stubbed_obs():
    """obs entry points as bare no-ops: the uninstrumented stand-in."""
    saved = (obs.span, obs.inc, obs.observe, obs.set_gauge)
    obs.span = lambda name, **attrs: obs.NOOP_SPAN
    obs.inc = lambda name, amount=1: None
    obs.observe = lambda name, value, **kwargs: None
    obs.set_gauge = lambda name, value: None
    try:
        yield
    finally:
        obs.span, obs.inc, obs.observe, obs.set_gauge = saved


def bench_macro() -> dict:
    """Campaign wall time: stubbed baseline vs null recorder vs traced.

    The workload's wall time has a long noise tail (CPU scaling,
    noisy-neighbour containers: min-to-median spread is ~10 % on a
    loaded box) but a sharp floor, so the gated overhead compares the
    **minimum over all rounds** per mode — the floor is what the
    instrumentation could actually slow down.  Modes run back-to-back
    inside every round so a drifting machine cannot starve one mode of
    quiet samples; the median per-round ratio is reported alongside as
    a drift diagnostic.
    """
    _timed_workload()  # warm caches (engine cache, imports) off the clock

    def traced_workload() -> float:
        with tempfile.TemporaryDirectory() as tmp:
            obs.start(trace_path=Path(tmp) / "trace.jsonl")
            try:
                return _timed_workload()
            finally:
                obs.stop()

    rounds = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS):
            with _stubbed_obs():
                stub = _timed_workload()
            null = _timed_workload()
            traced = traced_workload()
            rounds.append((stub, null, traced))
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    stub_s = min(r[0] for r in rounds)
    null_s = min(r[1] for r in rounds)
    traced_s = min(r[2] for r in rounds)
    return {
        "stub_s": stub_s,
        "null_s": null_s,
        "traced_s": traced_s,
        "null_overhead": null_s / stub_s - 1.0,
        "traced_overhead": traced_s / stub_s - 1.0,
        "null_median_ratio": statistics.median(n / s - 1.0
                                               for s, n, _ in rounds),
        "traced_median_ratio": statistics.median(t / s - 1.0
                                                 for s, _, t in rounds),
    }


def bench_span_micro() -> dict:
    """Raw per-span enter/exit cost, disabled vs live-traced."""

    def spin():
        for _ in range(SPAN_MICRO_ITERS):
            with obs.span("bench.noop"):
                pass

    disabled_s = _best_of(3, spin)
    with tempfile.TemporaryDirectory() as tmp:
        obs.start(trace_path=Path(tmp) / "micro.jsonl")
        try:
            enabled_s = _best_of(3, spin)
        finally:
            obs.stop()
    return {
        "span_disabled_ns": disabled_s / SPAN_MICRO_ITERS * 1e9,
        "span_enabled_ns": enabled_s / SPAN_MICRO_ITERS * 1e9,
    }


def main() -> int:
    macro = bench_macro()
    micro = bench_span_micro()

    text = format_table(
        ["mode", "min_wall_s", "overhead"],
        [
            ("stubbed", f"{macro['stub_s']:.4f}", "baseline"),
            ("null", f"{macro['null_s']:.4f}",
             f"{macro['null_overhead']:+.2%}"),
            ("traced", f"{macro['traced_s']:.4f}",
             f"{macro['traced_overhead']:+.2%}"),
        ],
    )
    text += (
        f"\nnull bar:   <= {NULL_OVERHEAD_MAX:.0%}"
        f"   traced bar: <= {TRACED_OVERHEAD_MAX:.0%}\n"
        f"span enter/exit: {micro['span_disabled_ns']:.0f} ns disabled, "
        f"{micro['span_enabled_ns']:.0f} ns traced"
    )
    save_result("o1_obs_overhead", text)

    units = len(CAMPAIGN.units())
    emit_bench_json(
        "o1_obs_overhead",
        wall_time_s=macro["null_s"],
        trials=N_TRIALS * units * (1 + WARM_RUNS),
        scenario="campaign:bench-o1-obs", seed=SEED,
        stub_s=round(macro["stub_s"], 6),
        null_s=round(macro["null_s"], 6),
        traced_s=round(macro["traced_s"], 6),
        null_overhead=round(macro["null_overhead"], 5),
        traced_overhead=round(macro["traced_overhead"], 5),
        null_median_ratio=round(macro["null_median_ratio"], 5),
        traced_median_ratio=round(macro["traced_median_ratio"], 5),
        null_overhead_max=NULL_OVERHEAD_MAX,
        traced_overhead_max=TRACED_OVERHEAD_MAX,
        span_disabled_ns=round(micro["span_disabled_ns"], 1),
        span_enabled_ns=round(micro["span_enabled_ns"], 1),
        warm_runs=WARM_RUNS,
    )

    failed = False
    if macro["null_overhead"] > NULL_OVERHEAD_MAX:
        print("OBS OVERHEAD REGRESSION: null recorder costs "
              f"{macro['null_overhead']:+.2%} over the stubbed baseline "
              f"(bar <= {NULL_OVERHEAD_MAX:.0%})")
        failed = True
    if macro["traced_overhead"] > TRACED_OVERHEAD_MAX:
        print("OBS OVERHEAD REGRESSION: live tracing costs "
              f"{macro['traced_overhead']:+.2%} over the stubbed baseline "
              f"(bar <= {TRACED_OVERHEAD_MAX:.0%})")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
