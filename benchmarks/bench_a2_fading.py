"""A2 — Ablation: channel model (static / Rician / Rayleigh).

Both directions must degrade gracefully under small-scale fading; the
feedback channel's averaging gain should keep it the more robust
direction under every model.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import make_link, run_and_emit, save_result, scene_at

from repro.analysis.ber import measure_feedback_ber, measure_forward_ber
from repro.analysis.reporting import format_table
from repro.experiments import get_scenario


def run_a2():
    _, link, _ = make_link()
    scene = scene_at(1.0)
    base = get_scenario("calibrated-default")
    channels = {
        "static": base.build_channel(),
        "rician-k4": base.replace(
            device_fading="rician", fading_k_factor=4.0
        ).build_channel(),
        "rayleigh": base.replace(device_fading="rayleigh").build_channel(),
    }
    rows = []
    no_early_stop = 10**9  # block fading makes errors bursty; early
    # stopping on an error budget would bias the estimate toward the
    # first bad block, so both directions run a fixed trial count.
    for name, channel in channels.items():
        fwd = measure_forward_ber(
            link, channel, scene, bits_per_trial=256,
            min_errors=no_early_stop, max_trials=20, min_trials=20, rng=140,
        )
        # Feedback bits are r-times scarcer than data bits; use long
        # exchanges so each trial contributes ~30 feedback bits.
        fb = measure_feedback_ber(
            link, channel, scene, bits_per_trial=2048,
            min_errors=no_early_stop, max_trials=20, min_trials=20, rng=140,
        )
        rows.append((name, fwd.rate, fb.rate))
    return rows


def bench_a2_fading(benchmark):
    rows = run_and_emit(benchmark, "a2_fading", run_a2,
                        trials=120, scenario="calibrated-default",
                        seed=140)
    table = format_table(["channel", "forward_ber", "feedback_ber"], rows)
    save_result("a2_fading", table)

    by_name = {r[0]: r for r in rows}
    # Shape 1: fading hurts the data channel (rayleigh worst).
    assert by_name["rayleigh"][1] >= by_name["static"][1]
    # Shape 2: feedback stays comparably robust in every model.  In the
    # fade-dominated regime both directions fail together (the dyadic
    # channel is shared), so "comparable" means within a few points.
    for name, fwd, fb in rows:
        assert fb <= fwd + 0.05, name
    # Shape 3: in the static deployment both channels are clean.
    assert by_name["static"][1] == 0.0
    assert by_name["static"][2] == 0.0
