"""A3 — Extension ablation: resume-from-abort retransmission.

The feedback channel tells the sender *where* a packet died, so a retry
can resend only the unacknowledged suffix.  This bench quantifies the
extension against plain early abort and half-duplex ARQ across loss
rates.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import run_and_emit, save_result

from repro.analysis.reporting import format_table
from repro.mac.arq import HalfDuplexArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.resume import ResumeFromAbortPolicy
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss

LOSS_RATES = [0.1, 0.25, 0.4]


def run_a3():
    rows = []
    for p in LOSS_RATES:
        cfg = SimulationConfig(num_links=1, arrival_rate_pps=0.5,
                               horizon_seconds=250.0, payload_bytes=64,
                               loss=BernoulliLoss(p))
        for name, factory in [
            ("hd-arq", HalfDuplexArqPolicy),
            ("fd-abort", FullDuplexAbortPolicy),
            ("fd-resume", ResumeFromAbortPolicy),
        ]:
            m = NetworkSimulator(config=cfg, policy_factory=factory).run(
                rng=150
            )
            n = m.nodes[0]
            rows.append((p, name, n.delivery_ratio,
                         n.bits_transmitted,
                         m.energy_per_delivered_bit * 1e9,
                         n.mean_latency_seconds))
    return rows


def bench_a3_resume(benchmark):
    rows = run_and_emit(benchmark, "a3_resume", run_a3,
                        trials=len(LOSS_RATES) * 3,
                        scenario="mac:single-link", seed=150)
    table = format_table(
        ["loss", "policy", "delivery", "bits_sent", "nJ_per_bit",
         "latency_s"],
        rows,
    )
    save_result("a3_resume", table)

    by_key = {(r[0], r[1]): r for r in rows}
    for p in LOSS_RATES:
        # Shape 1: the full-duplex variants deliver ~everything (their
        # ACK rides the feedback channel and cannot be lost separately);
        # hd-arq may collapse at heavy loss because its ACK packets die
        # too and exhaust retries with duplicates.
        for name in ("fd-abort", "fd-resume"):
            assert by_key[(p, name)][2] > 0.95
        assert by_key[(0.1, "hd-arq")][2] > 0.95
        # Shape 2: resume sends the fewest bits and spends the least.
        assert (by_key[(p, "fd-resume")][3]
                <= by_key[(p, "fd-abort")][3])
        assert (by_key[(p, "fd-resume")][4]
                <= by_key[(p, "fd-abort")][4] + 1e-9)
        assert (by_key[(p, "fd-resume")][4]
                < by_key[(p, "hd-arq")][4])
