"""A1 — Ablation: in-reception corruption detector choice.

The abort savings hinge on detection latency.  This bench measures the
sample-level detection latency of each detector on collided receptions,
then propagates the calibrated latencies into the protocol simulator to
show the end effect on energy.
"""

import sys

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

import numpy as np

from common import make_link, run_and_emit, save_result

from repro.analysis.reporting import format_table
from repro.channel import Scene
from repro.fullduplex.collision import (
    EnergyAnomalyDetector,
    MarginCollapseDetector,
)
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss
from repro.phy import BackscatterReceiver, BackscatterTransmitter
from repro.utils.rng import random_bits

ONSET_BIT = 64
TOTAL_BITS = 190
TRIALS = 6


def _collided_soft_chips(seed):
    cfg, link, channel = make_link()
    phy = cfg.phy
    rng = np.random.default_rng(seed)
    scene = Scene.two_device_line(0.5)
    scene.place("carol", 0.3, 0.4)
    gains = channel.realize(scene, rng)
    bits = random_bits(rng, 192)
    tx = BackscatterTransmitter(phy)
    wf = tx.transmit_bits(bits)
    n = wf.num_samples
    collider = BackscatterTransmitter(phy).transmit_bits(random_bits(rng, 192))
    gamma_c = np.zeros(n)
    start = ONSET_BIT * phy.samples_per_bit
    seg = collider.reflection_waveform[: n - start]
    gamma_c[start : start + seg.size] = seg
    ambient = link.source.samples(n, rng)
    incident = gains.received(
        "bob", ambient,
        {"alice": wf.reflection_waveform, "carol": gamma_c}, rng=rng,
    )
    rx = BackscatterReceiver(phy)
    env = rx.envelope(incident)
    return rx.soft_chips(env, phy.detector_delay_samples, TOTAL_BITS * 2)


def run_a1():
    latencies = {"margin-collapse": [], "energy-anomaly": [],
                 "crc-only": []}
    for t in range(TRIALS):
        soft = _collided_soft_chips(130 + t)
        margins = np.abs(soft[0::2] - soft[1::2])
        v1 = MarginCollapseDetector().run(margins)
        latencies["margin-collapse"].append(
            (v1.detection_bit - ONSET_BIT) if v1.detected else TOTAL_BITS
        )
        v2 = EnergyAnomalyDetector().run(soft, chips_per_bit=2)
        latencies["energy-anomaly"].append(
            (v2.detection_bit - ONSET_BIT) if v2.detected else TOTAL_BITS
        )
        latencies["crc-only"].append(TOTAL_BITS - ONSET_BIT)

    rows = []
    for name, lats in latencies.items():
        mean_latency = float(np.mean(np.maximum(lats, 0)))
        # Propagate the calibrated latency into the protocol simulator.
        detection_bits = int(round(mean_latency))
        cfg = SimulationConfig(num_links=8, arrival_rate_pps=0.25,
                               horizon_seconds=120.0, payload_bytes=64,
                               loss=BernoulliLoss(0.05))
        if name == "crc-only":
            detection_bits = cfg.packet_bits  # never aborts in time
        sim = NetworkSimulator(
            config=cfg,
            policy_factory=lambda d=detection_bits: FullDuplexAbortPolicy(
                detection_latency_bits=d
            ),
        )
        metrics = sim.run(rng=131)
        rows.append((name, mean_latency,
                     metrics.total_tx_energy_joule * 1e6,
                     metrics.abort_fraction))
    return rows


def bench_a1_detector(benchmark):
    rows = run_and_emit(benchmark, "a1_detector", run_a1,
                        trials=TRIALS, scenario="calibrated-default",
                        seed=130)
    table = format_table(
        ["detector", "mean_detect_latency_bits", "network_tx_energy_uJ",
         "abort_fraction"],
        rows,
    )
    save_result("a1_detector", table)

    by_name = {r[0]: r for r in rows}
    # Shape 1: the in-reception detectors fire far before packet end.
    assert by_name["margin-collapse"][1] < 40
    # Shape 2: faster detection -> more energy saved than CRC-only.
    assert by_name["margin-collapse"][2] < by_name["crc-only"][2]
    # Shape 3: CRC-only never aborts.
    assert by_name["crc-only"][3] == 0.0
