#!/usr/bin/env python3
"""Paper-figure campaigns from the API: run once, hit forever.

Drives the built-in ``fig-ber-vs-distance`` campaign at a reduced trial
budget through the content-addressed result store, then runs it again
to show the second pass executes zero trials, then tops the budget up —
computing only the missing trial suffix of every unit.  The same
machinery backs ``repro campaign run/status/report``.

Run:  python examples/paper_figures.py
"""

import tempfile

from repro.campaigns import CampaignRunner, get_campaign
from repro.store import ResultStore

#: Reduced trials/unit so the demo finishes in ~half a minute; the real
#: figure uses the campaign's own budget (repro campaign run ...).
TRIALS = 4


def show(result) -> None:
    counts = ", ".join(f"{n} {o}" for o, n in
                       sorted(result.outcome_counts().items()))
    print(f"  {len(result.units)} units: {counts} "
          f"-> {result.trials_computed} trials computed")


def main() -> None:
    campaign = get_campaign("fig-ber-vs-distance")
    with tempfile.TemporaryDirectory() as root:
        runner = CampaignRunner(store=ResultStore(root),
                                backend="vectorized")
        print(f"campaign {campaign.name} at {TRIALS} trials/unit")
        print("cold run (everything computes):")
        show(runner.run(campaign, n_trials=TRIALS))
        print("second run (pure store hits):")
        show(runner.run(campaign, n_trials=TRIALS))
        print(f"topped-up run ({2 * TRIALS} trials/unit — only the "
              "missing half computes):")
        show(runner.run(campaign, n_trials=2 * TRIALS))
        print()
        for kind, table in runner.report(
            campaign, n_trials=2 * TRIALS
        ).items():
            print(f"{campaign.name} · {kind}")
            print(table.format())
            print()


if __name__ == "__main__":
    main()
