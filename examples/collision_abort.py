#!/usr/bin/env python3
"""Early collision abort — the paper's motivating scenario.

Part 1 (sample level): while Bob receives Alice's packet, a third tag
(Carol) starts backscattering mid-packet.  Bob's in-reception margin
detector notices within a few bits, flips his feedback stream from ACK
to NACK, and Alice — decoding the feedback as she transmits — aborts.

Part 2 (protocol level): the same mechanism, run over thousands of
packets in a contended network, compared against half-duplex ARQ.

Run:  python examples/collision_abort.py
"""

import numpy as np

from repro import random_bits
from repro.experiments import get_scenario
from repro.fullduplex import FeedbackProtocol, MarginCollapseDetector
from repro.hardware.energy import EnergyModel
from repro.mac.node import run_policy_comparison
from repro.phy import BackscatterReceiver, BackscatterTransmitter


def sample_level_demo() -> None:
    print("== part 1: one collision, observed at the sample level ==")
    stack = get_scenario("calibrated-default").build()
    config = stack.config
    phy = config.phy
    source = stack.source
    rng = np.random.default_rng(7)

    scene = stack.scene
    scene.place("carol", 0.3, 0.4)
    gains = stack.realize(rng)

    # Alice sends 190 bits; Carol collides from bit 64.
    packet_bits = 190
    onset_bit = 64
    tx = BackscatterTransmitter(phy)
    wf = tx.transmit_bits(random_bits(rng, 192))
    n = wf.num_samples
    collider = BackscatterTransmitter(phy).transmit_bits(random_bits(rng, 192))
    gamma_c = np.zeros(n)
    start = onset_bit * phy.samples_per_bit
    seg = collider.reflection_waveform[: n - start]
    gamma_c[start : start + seg.size] = seg

    ambient = source.samples(n, rng)
    incident = gains.received(
        "bob", ambient,
        {"alice": wf.reflection_waveform, "carol": gamma_c}, rng=rng,
    )

    # Bob's receive chain + margin monitor.
    rx = BackscatterReceiver(phy)
    env = rx.envelope(incident)
    soft = rx.soft_chips(env, phy.detector_delay_samples, packet_bits * 2)
    margins = np.abs(soft[0::2] - soft[1::2])
    verdict = MarginCollapseDetector().run(margins)
    print(f"collision starts at data bit {onset_bit}")
    print(f"detector fires at data bit  {verdict.detection_bit} "
          f"(latency {verdict.detection_bit - onset_bit} bits)")

    # The feedback protocol turns detection into an abort.
    protocol = FeedbackProtocol(config=config, energy=EnergyModel())
    stream = protocol.feedback_stream(
        num_slots=packet_bits // config.asymmetry_ratio + 1,
        detection_bit=verdict.detection_bit,
    )
    print(f"bob's feedback stream       {stream.tolist()}  (1=ACK, 0=NACK)")
    verdict2 = protocol.verdict(
        packet_bits=1024, corrupted=True,
        detection_bit=verdict.detection_bit,
    )
    saved = 1.0 - verdict2.bits_transmitted / 1024
    print("on a 1024-bit packet alice would stop at bit "
          f"{verdict2.bits_transmitted} — {saved:.0%} of the transmit "
          "energy saved\n")


def protocol_level_demo() -> None:
    print("== part 2: the same mechanism over a contended network ==")
    cfg = get_scenario("calibrated-default").replace(
        mac_num_links=10, mac_arrival_rate_pps=0.3,
        mac_horizon_seconds=120.0, mac_payload_bytes=64,
        mac_loss_probability=0.05,
    ).build_mac_config()
    results = run_policy_comparison(cfg, seed=11)
    print(f"{'policy':10s} {'goodput':>10s} {'delivery':>9s} "
          f"{'tx energy':>10s} {'aborted':>8s}")
    for name, metrics in results.items():
        print(
            f"{name:10s} {metrics.goodput_bps:8.1f}bps "
            f"{metrics.delivery_ratio:8.1%} "
            f"{metrics.total_tx_energy_joule * 1e6:8.2f}uJ "
            f"{metrics.abort_fraction:8.1%}"
        )
    hd = results["hd-arq"]
    fd = results["fd-abort"]
    print("\nfd-abort vs hd-arq: "
          f"{fd.goodput_bps / hd.goodput_bps:.2f}x goodput, "
          f"{hd.total_tx_energy_joule / fd.total_tx_energy_joule:.2f}x "
          "less transmit energy")


if __name__ == "__main__":
    sample_level_demo()
    protocol_level_demo()
