#!/usr/bin/env python3
"""A battery-free sensor cluster: energy viability study.

Eight backscatter sensor tags in a 2 m cluster report 64-byte readings
to paired collectors.  The study asks the paper's bottom-line question:
does instantaneous feedback keep the *energy* books balanced for
battery-free devices?

It combines both layers of the library:

* protocol level — per-device consumption under three link policies;
* sample level — harvest rate measured from the physical exchange, to
  check consumption against income.

Run:  python examples/sensor_network.py
"""

import numpy as np

from repro import EnergyModel, random_bits, random_frame
from repro.experiments import get_scenario
from repro.mac.node import run_policy_comparison


def harvest_income_nw() -> tuple[float, float]:
    """Harvest rates [nW] of a tag: (during exchanges, while idle).

    An idle tag absorbs the full ambient field; a tag in an exchange
    loses the fraction its own modulator reflects.
    """
    stack = get_scenario("calibrated-default").build()
    config, source, link = stack.config, stack.source, stack.link
    rng = np.random.default_rng(3)
    active_rates = []
    idle_rates = []
    for _ in range(5):
        gains = stack.realize(rng)
        frame = random_frame(64, rng)
        exchange = link.run(gains, frame, random_bits(rng, 8), rng=rng)
        duration = exchange.data_bits_sent.size / config.phy.bit_rate_bps
        active_rates.append(exchange.harvested_b_joule / duration * 1e9)

        # Idle harvest: the same field, nobody modulating.
        from repro.phy import BackscatterReceiver

        samples = source.samples(int(config.phy.sample_rate_hz * 0.05), rng)
        incident = gains.received("bob", samples, rng=rng)
        rx = BackscatterReceiver(config.phy)
        idle_joule = rx.front_end.harvested_energy(incident)
        idle_rates.append(idle_joule / 0.05 * 1e9)
    return float(np.mean(active_rates)), float(np.mean(idle_rates))


def main() -> None:
    horizon = 300.0
    cfg = get_scenario("calibrated-default").replace(
        mac_num_links=8, mac_arrival_rate_pps=0.2,
        mac_horizon_seconds=horizon, mac_payload_bytes=64,
        mac_loss_probability=0.1,
    ).build_mac_config()
    energy = EnergyModel()
    results = run_policy_comparison(cfg, seed=21, energy=energy)

    active_nw, idle_nw = harvest_income_nw()
    print(f"harvest income: {active_nw:.1f} nW during exchanges, "
          f"{idle_nw:.1f} nW while idle (sample-level, 0.5 m)")
    # Devices here are active a small fraction of the time, so the idle
    # rate dominates the long-run income.
    income_nw = idle_nw
    print(f"long-run income budget: ~{income_nw:.1f} nW per device\n")

    print(f"{'policy':10s} {'delivered':>9s} {'spend/device':>13s} "
          f"{'mean power':>11s} {'balance':>9s}")
    for name, metrics in results.items():
        per_device = metrics.total_energy_joule / (2 * cfg.num_links)
        mean_power_nw = per_device / horizon * 1e9
        balance = "OK" if mean_power_nw < income_nw else "DEFICIT"
        delivered = sum(n.delivered_packets for n in metrics.nodes)
        print(f"{name:10s} {delivered:9d} "
              f"{per_device * 1e6:10.3f} uJ "
              f"{mean_power_nw:8.2f} nW {balance:>9s}")

    fd = results["fd-abort"]
    hd = results["hd-arq"]
    print("\nper delivered byte, fd-abort spends "
          f"{hd.energy_per_delivered_bit / fd.energy_per_delivered_bit:.2f}x "
          "less than hd-arq.")
    print("the margin between harvest income and protocol spend is what "
          "lets the cluster run batteryless; early abort widens it.")


if __name__ == "__main__":
    main()
