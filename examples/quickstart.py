#!/usr/bin/env python3
"""Quickstart: one full-duplex backscatter exchange, end to end.

Two battery-free tags, half a metre apart, ride a TV-broadcast-like
ambient signal.  Alice backscatters a framed data packet to Bob at
1 kbps; *simultaneously*, Bob backscatters a feedback stream to Alice at
1/64 of the rate.  Both directions decode, and both devices harvest
energy from the same ambient field throughout.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import random_bits, random_frame
from repro.experiments import get_scenario


def main() -> None:
    rng = np.random.default_rng(2013)

    # 1. The whole stack from one named scenario: default PHY (1 kbps
    #    Manchester over a 256 kHz simulation), asymmetry ratio r = 64,
    #    TV-mux-like ambient, tags 0.5 m apart, tower ~1 km away.
    spec = get_scenario("calibrated-default")
    stack = spec.build()
    config = stack.config
    print(f"scenario       : {spec.name}")
    print(f"data rate      : {config.phy.bit_rate_bps:.0f} bit/s")
    print(f"feedback rate  : {config.feedback_rate_bps:.1f} bit/s "
          f"(r = {config.asymmetry_ratio})")

    # 2. One channel realisation of the scenario's scene.
    gains = stack.realize(rng)
    print("ambient at bob : "
          f"{10 * np.log10(gains.direct_power('bob')) + 30:.1f} dBm")

    # 3. One exchange: a 64-byte frame from Alice (557 bits of airtime —
    #    room for 6 feedback payload bits after the polarity pilot),
    #    with Bob's feedback riding on top of it.
    link = stack.link
    frame = random_frame(64, rng)
    feedback = random_bits(rng, 6)
    exchange = link.run(gains, frame, feedback, rng=rng)

    # 4. Results.
    print(f"frame delivered: {exchange.data_delivered}")
    payload_ok = exchange.data_delivered and np.array_equal(
        exchange.data_result.frame.payload_bits, frame.payload_bits
    )
    print(f"payload intact : {payload_ok}")
    print(f"feedback sent  : {exchange.feedback_sent.tolist()}")
    print(f"feedback decoded at alice: {exchange.feedback_decoded.tolist()}")
    print(f"feedback errors: {exchange.feedback_errors}")
    print(f"harvested (alice): {exchange.harvested_a_joule * 1e9:.1f} nJ")
    print(f"harvested (bob)  : {exchange.harvested_b_joule * 1e9:.1f} nJ")

    if payload_ok and exchange.feedback_errors == 0:
        print("\nfull duplex worked: data one way, feedback the other, "
              "simultaneously, with no radio on either device.")


if __name__ == "__main__":
    main()
