#!/usr/bin/env python3
"""Energy-neutral duty cycling: how often can a battery-free tag report?

A tag stores harvested energy in a small capacitor and may only start a
packet it can pay for (with a brown-out reserve).  This example runs the
admission controller over an hour of simulated harvesting for three
link-layer policies, using per-delivered-packet costs measured by the
protocol simulator — closing the loop of the paper's energy argument:
cheaper failures → shorter waits → higher sustainable report rates.

Run:  python examples/duty_cycle.py
"""

from repro.experiments import get_scenario
from repro.hardware.dutycycle import (
    EnergyNeutralController,
    sustainable_packet_rate,
)
from repro.hardware.energy import EnergyModel
from repro.mac.arq import HalfDuplexArqPolicy, NoArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.resume import ResumeFromAbortPolicy
from repro.mac.simulator import NetworkSimulator

#: Long-run harvest income measured at 0.5 m (see sensor_network.py).
HARVEST_RATE_WATT = 50e-9

#: One hour of wall-clock operation.
HORIZON_S = 3600.0


def measured_packet_cost(policy_factory) -> float:
    """Transmitter-side energy per *delivered* packet [J] under 25 %
    loss, from the protocol simulator.  The transmitting tag is the
    capacitor-constrained device this study duty-cycles."""
    cfg = get_scenario("calibrated-default").replace(
        mac_num_links=1, mac_arrival_rate_pps=0.5,
        mac_horizon_seconds=200.0, mac_payload_bytes=64,
        mac_loss_probability=0.25,
    ).build_mac_config()
    metrics = NetworkSimulator(config=cfg, policy_factory=policy_factory,
                               energy=EnergyModel()).run(rng=9)
    delivered = sum(n.delivered_packets for n in metrics.nodes)
    if not delivered:
        return float("inf")
    return metrics.total_tx_energy_joule / delivered


def duty_cycle_run(cost_joule: float) -> tuple[int, float]:
    """Simulate one hour of harvest-and-report; returns (packets sent,
    deferral ratio).  A 220 uF capacitor swinging ~2 V stores about
    1 uJ of usable energy."""
    ctrl = EnergyNeutralController(capacity_joule=1e-6,
                                   reserve_joule=1e-7)
    sent = 0
    t = 0.0
    while t < HORIZON_S:
        wait = ctrl.wait_for(cost_joule, HARVEST_RATE_WATT)
        if wait == float("inf"):
            break
        ctrl.harvest_for(wait + 0.1, HARVEST_RATE_WATT)
        t += wait + 0.1
        if ctrl.admit(cost_joule):
            sent += 1
    return sent, ctrl.deferral_ratio


def main() -> None:
    policies = {
        "no-arq": NoArqPolicy,
        "hd-arq": HalfDuplexArqPolicy,
        "fd-abort": FullDuplexAbortPolicy,
        "fd-resume": ResumeFromAbortPolicy,
    }
    print(f"harvest income: {HARVEST_RATE_WATT * 1e9:.0f} nW, "
          f"horizon: {HORIZON_S:.0f} s\n")
    print(f"{'policy':10s} {'nJ/delivered':>13s} {'bound pkt/h':>12s} "
          f"{'sent in 1 h':>12s}")
    for name, factory in policies.items():
        cost = measured_packet_cost(factory)
        bound = sustainable_packet_rate(cost, HARVEST_RATE_WATT) * 3600
        sent, _ = duty_cycle_run(cost)
        print(f"{name:10s} {cost * 1e9:11.0f} {bound:12.0f} {sent:12d}")
    print("\ncheaper failures mean shorter capacitor-recharge waits: the "
          "full-duplex policies report measurably more often from the "
          "same ambient income.")


if __name__ == "__main__":
    main()
