#!/usr/bin/env python3
"""Range-vs-rate exploration, plus feedback-driven rate adaptation.

Part 1 sweeps the tag separation at several bit rates and prints the
frame-delivery matrix (the link-budget picture behind bench T1).

Part 2 runs the :class:`repro.fullduplex.RateAdapter` over a link whose
distance changes mid-run: with per-packet feedback the transmitter
tracks the channel without any probing exchanges.

Run:  python examples/range_vs_rate.py
"""

import numpy as np

from repro import ChannelModel, FullDuplexLink, Scene
from repro.analysis.ber import measure_frame_delivery
from repro.experiments import get_scenario
from repro.fullduplex.rateadapt import RateAdapter

SCENARIO = get_scenario("calibrated-default")


def make_link(bit_rate_bps: float) -> tuple[FullDuplexLink, ChannelModel]:
    stack = SCENARIO.replace(bit_rate_bps=bit_rate_bps).build()
    return stack.link, stack.channel


def scene_at(distance_m: float) -> Scene:
    return SCENARIO.build_scene(distance_m)


def delivery_matrix() -> None:
    print("== part 1: frame delivery vs distance and rate ==")
    rates = [500.0, 1000.0, 2000.0, 4000.0]
    distances = [0.5, 1.0, 2.0, 3.0]
    print(f"{'rate':>8s}  " + "".join(f"{d:>7.1f}m" for d in distances))
    for rate in rates:
        link, channel = make_link(rate)
        cells = []
        for d in distances:
            est = measure_frame_delivery(
                link, channel, scene_at(d),
                payload_bytes=8, trials=6, rng=5,
            )
            cells.append(f"{1.0 - est.rate:7.0%} ")
        print(f"{rate:6.0f}bps  " + "".join(cells))
    print("(cells: fraction of frames delivered; lower rates reach "
          "farther)\n")


def rate_adaptation_run() -> None:
    print("== part 2: feedback-driven rate adaptation ==")
    from repro.channel import WaypointMobility

    adapter = RateAdapter(rates_bps=(500.0, 1000.0, 2000.0, 4000.0),
                          raise_after=3, start_index=1)
    rng = np.random.default_rng(17)
    # One tag walks away and returns over 60 packet-times: separation
    # swings 0.75 m -> 2.5 m -> 0.75 m.
    trajectory = WaypointMobility.back_and_forth(near_m=0.75, far_m=2.5,
                                                 period_s=60.0)
    print(f"{'pkt':>4s} {'dist':>6s} {'rate':>8s} {'delivered':>9s}")
    for packet in range(60):
        distance = trajectory.distance_to((0.0, 0.0), float(packet))
        link, channel = make_link(adapter.current_rate_bps)
        est = measure_frame_delivery(
            link, channel, scene_at(distance),
            payload_bytes=8, trials=1, rng=rng,
        )
        delivered = est.errors == 0
        if packet % 5 == 0 or not delivered:
            print(f"{packet:4d} {distance:5.2f}m "
                  f"{adapter.current_rate_bps:6.0f}bps "
                  f"{'yes' if delivered else 'NO':>9s}")
        adapter.record(delivered)
    used = [rate for rate, _ in adapter.history]
    print(f"\nrates used: min {min(used):.0f}, max {max(used):.0f} bit/s")
    ok = sum(1 for _, s in adapter.history if s)
    print(f"delivery under mobility: {ok}/{len(adapter.history)} packets")
    print("the adapter backs off when the tags drift apart and recovers "
          "when they return — all signalled in-band by the feedback "
          "channel.")


if __name__ == "__main__":
    delivery_matrix()
    rate_adaptation_run()
