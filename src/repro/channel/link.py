"""Composite channel model and sample-level waveform composition.

The heart of the propagation substrate.  :class:`ChannelModel` turns a
:class:`~repro.channel.geometry.Scene` into one trial's
:class:`LinkGains` — a table of complex amplitude gains:

* ``("source", dev)`` — broadcast path into each device;
* ``(dev_a, dev_b)`` — device-to-device backscatter path.

:func:`LinkGains.received` then composes what a device's antenna actually
sees when any subset of devices is backscattering:

.. math::

    y_D[n] = \\sqrt{P_s}\\Big( h_{sD} x[n]
        + \\sum_{T \\ne D} \\Gamma_T[n]\\, h_{sT}\\, h_{TD}\\, x[n] \\Big)
        + w[n]

with ``x`` the unit-power ambient waveform, ``Γ_T[n]`` device T's
instantaneous reflection amplitude (0 when absorbing), and ``w`` AWGN.
Backscattered paths are *dyadic* — the product of two amplitude gains —
which is why they are orders of magnitude weaker than the direct ambient
term, the defining difficulty of ambient backscatter reception.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.fading import BlockFading, NoFading
from repro.channel.geometry import Scene
from repro.channel.noise import complex_awgn
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
)
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class LinkGains:
    """One block-fading realisation of every path in a scene.

    Attributes
    ----------
    gains:
        Complex amplitude gain per ordered pair of node names.  Reciprocal
        pairs share one draw (``gains[(a, b)] == gains[(b, a)]``).
    source_power_watt:
        EIRP of the ambient source.
    noise_power_watt:
        In-band noise power at every device front end.
    """

    gains: dict[tuple[str, str], complex]
    source_power_watt: float
    noise_power_watt: float

    def gain(self, a: str, b: str) -> complex:
        """Complex amplitude gain of the path ``a → b``."""
        key = (a, b)
        if key not in self.gains:
            raise KeyError(f"no gain for path {a!r} -> {b!r}")
        return self.gains[key]

    def direct_power(self, device: str) -> float:
        """Mean ambient power [W] arriving at ``device`` directly."""
        return self.source_power_watt * abs(self.gain("source", device)) ** 2

    def backscatter_power(self, tx: str, rx: str) -> float:
        """Mean power [W] at ``rx`` of a full-strength (Γ=1) reflection
        off ``tx`` — the dyadic source→tx→rx product."""
        amp = self.gain("source", tx) * self.gain(tx, rx)
        return self.source_power_watt * abs(amp) ** 2

    def received(
        self,
        device: str,
        ambient: np.ndarray,
        reflections: dict[str, np.ndarray] | None = None,
        rng=None,
        include_noise: bool = True,
    ) -> np.ndarray:
        """Complex baseband waveform at ``device``'s antenna.

        Parameters
        ----------
        device:
            Receiving node name.
        ambient:
            Unit-mean-power ambient source waveform for this block.
        reflections:
            Map from backscattering device name to its instantaneous
            reflection-amplitude waveform (same length as ``ambient``;
            values in [0, 1]).  ``device`` itself may appear — its *own*
            entry is ignored here because self-reception gating is applied
            by the tag front end, not the channel.
        rng:
            Noise generator (seed/Generator).
        include_noise:
            Disable to obtain the noise-free field (used by tests).
        """
        x = np.asarray(ambient, dtype=complex)
        amp_src = np.sqrt(self.source_power_watt)
        field_sum = self.gain("source", device) * x
        if reflections:
            for tx, gamma in reflections.items():
                if tx == device:
                    continue
                g = np.asarray(gamma, dtype=float)
                if g.shape != x.shape:
                    raise ValueError(
                        f"reflection waveform for {tx!r} has shape {g.shape}, "
                        f"ambient has {x.shape}"
                    )
                field_sum = field_sum + (
                    self.gain("source", tx) * self.gain(tx, device)
                ) * (g * x)
        y = amp_src * field_sum
        if include_noise and self.noise_power_watt > 0:
            y = y + complex_awgn(x.size, self.noise_power_watt, rng)
        return y


@dataclass
class BatchLinkGains:
    """A stack of per-lane :class:`LinkGains` with batched composition.

    One object per Monte-Carlo batch: lane ``i`` holds trial ``i``'s
    block-fading realisation, drawn from trial ``i``'s own channel
    generator, so scalar and batched runs see identical gains.
    :meth:`received` performs the same field composition as
    :meth:`LinkGains.received` with the lane axis broadcast in front —
    every lane of the result is bitwise identical to the scalar call.

    Attributes
    ----------
    lanes:
        Per-trial gain realisations, one per batch lane.
    """

    lanes: list[LinkGains]

    def __post_init__(self) -> None:
        if not self.lanes:
            raise ValueError("BatchLinkGains needs at least one lane")

    def __len__(self) -> int:
        return len(self.lanes)

    def __getitem__(self, lane: int) -> LinkGains:
        return self.lanes[lane]

    @property
    def source_power_watt(self) -> float:
        return self.lanes[0].source_power_watt

    @property
    def noise_power_watt(self) -> float:
        return self.lanes[0].noise_power_watt

    def gain_column(self, a: str, b: str) -> np.ndarray:
        """The ``a → b`` gain of every lane as an ``(N, 1)`` column."""
        return np.array(
            [lane.gain(a, b) for lane in self.lanes], dtype=complex
        )[:, None]

    def received(
        self,
        device: str,
        ambient: np.ndarray,
        reflections: dict[str, np.ndarray] | None = None,
        rngs=None,
        include_noise: bool = True,
    ) -> np.ndarray:
        """Batched counterpart of :meth:`LinkGains.received`.

        ``ambient`` and each reflection waveform are ``(N, samples)``
        stacks; ``rngs`` supplies one noise generator per lane (each
        consumed exactly as the scalar path consumes its noise rng).
        """
        x = np.asarray(ambient, dtype=complex)
        if x.ndim != 2 or x.shape[0] != len(self.lanes):
            raise ValueError(
                f"ambient must be (lanes, samples) with {len(self.lanes)} "
                f"lanes, got shape {x.shape}"
            )
        amp_src = np.sqrt(self.source_power_watt)
        field_sum = self.gain_column("source", device) * x
        if reflections:
            for tx, gamma in reflections.items():
                if tx == device:
                    continue
                g = np.asarray(gamma, dtype=float)
                if g.shape != x.shape:
                    raise ValueError(
                        f"reflection waveform for {tx!r} has shape "
                        f"{g.shape}, ambient has {x.shape}"
                    )
                # The dyadic amplitude is formed per lane in Python
                # complex arithmetic, exactly as the scalar path does —
                # CPython and numpy complex products may differ in the
                # last ulp, and the equivalence contract is bitwise.
                dyadic = np.array(
                    [
                        lane.gain("source", tx) * lane.gain(tx, device)
                        for lane in self.lanes
                    ],
                    dtype=complex,
                )[:, None]
                field_sum = field_sum + dyadic * (g * x)
        y = amp_src * field_sum
        if include_noise and self.noise_power_watt > 0:
            if rngs is None:
                raise ValueError("batched noise needs one rng per lane")
            rngs = list(rngs)
            if len(rngs) != len(self.lanes):
                raise ValueError(
                    f"need {len(self.lanes)} noise rngs, got {len(rngs)}"
                )
            noise = np.empty_like(y)
            for lane, rng in enumerate(rngs):
                noise[lane] = complex_awgn(
                    x.shape[1], self.noise_power_watt, rng
                )
            y = y + noise
        return y


@dataclass
class ChannelModel:
    """Scene → per-trial :class:`LinkGains` factory.

    Attributes
    ----------
    source_pathloss:
        Path-loss model for source→device paths (defaults to log-distance
        with exponent 2.4 — a lightly cluttered broadcast path).
    device_pathloss:
        Path-loss model for device→device paths (defaults to free space:
        tags sit within a few metres of each other).
    source_fading / device_fading:
        Small-scale fading per path class; defaults are static.
    source_power_watt:
        Ambient EIRP.  The paper's TV tower is ~1 MW ERP km away; the
        default here is the equivalent *local* ambient power budget,
        chosen so the direct path at a device lands near the measured
        ~-30 dBm ambient operating point.
    noise_power_watt:
        Front-end noise (thermal floor + noise figure over the detector
        bandwidth).
    """

    source_pathloss: PathLossModel = field(
        default_factory=lambda: LogDistancePathLoss(exponent=2.4)
    )
    device_pathloss: PathLossModel = field(default_factory=FreeSpacePathLoss)
    source_fading: BlockFading = field(default_factory=NoFading)
    device_fading: BlockFading = field(default_factory=NoFading)
    source_power_watt: float = 1.0e3
    noise_power_watt: float = 1.0e-13

    def __post_init__(self) -> None:
        check_positive("source_power_watt", self.source_power_watt)
        check_non_negative("noise_power_watt", self.noise_power_watt)

    def realize_batch(self, scene: Scene, rngs) -> BatchLinkGains:
        """One :meth:`realize` draw per generator, stacked for batching.

        Lane ``i`` consumes ``rngs[i]`` exactly as a scalar
        :meth:`realize` call would, so batched trials see the same
        channel realisations as their scalar counterparts.
        """
        return BatchLinkGains(lanes=[self.realize(scene, r) for r in rngs])

    def realize(self, scene: Scene, rng=None) -> LinkGains:
        """Draw one block's gains for every path in ``scene``.

        Reciprocity: the gain drawn for ``(a, b)`` is reused for
        ``(b, a)``.
        """
        if "source" not in scene.nodes:
            raise ValueError('scene must contain a node named "source"')
        gen = ensure_rng(rng)
        gains: dict[tuple[str, str], complex] = {}
        devices = scene.device_names()
        for dev in devices:
            d = scene.distance("source", dev)
            amp = self.source_pathloss.amplitude_gain(d)
            h = complex(self.source_fading.sample(gen))
            gains[("source", dev)] = amp * h
            gains[(dev, "source")] = amp * h
        for i, a in enumerate(devices):
            for b in devices[i + 1 :]:
                d = scene.distance(a, b)
                amp = self.device_pathloss.amplitude_gain(d)
                h = complex(self.device_fading.sample(gen))
                gains[(a, b)] = amp * h
                gains[(b, a)] = amp * h
        return LinkGains(
            gains=gains,
            source_power_watt=self.source_power_watt,
            noise_power_watt=self.noise_power_watt,
        )
