"""Scene geometry: node placement and distances.

A :class:`Scene` holds the ambient source and every device position in a
2-D plane (heights are folded into the path-loss models).  The channel
model reads distances from the scene; MAC simulations move or add nodes
between runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    """A positioned entity: ambient source or backscatter device.

    Attributes
    ----------
    name:
        Unique identifier within a scene.
    x, y:
        Position in metres.
    """

    name: str
    x: float
    y: float

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance in metres (floored at 1 mm so dyadic
        products never divide by zero)."""
        d = math.hypot(self.x - other.x, self.y - other.y)
        return max(d, 1e-3)


@dataclass
class Scene:
    """Named collection of nodes with distance lookups.

    The ambient source is just a node, conventionally named ``"source"``;
    :class:`repro.channel.link.ChannelModel` requires it to exist.
    """

    nodes: dict[str, Node] = field(default_factory=dict)

    def add(self, node: Node) -> None:
        """Insert a node; replacing an existing name is an error."""
        if node.name in self.nodes:
            raise ValueError(f"node {node.name!r} already in scene")
        self.nodes[node.name] = node

    def place(self, name: str, x: float, y: float) -> Node:
        """Create and insert a node in one call."""
        node = Node(name=name, x=x, y=y)
        self.add(node)
        return node

    def move(self, name: str, x: float, y: float) -> Node:
        """Reposition an existing node (returns the new immutable Node)."""
        if name not in self.nodes:
            raise KeyError(f"node {name!r} not in scene")
        node = Node(name=name, x=x, y=y)
        self.nodes[name] = node
        return node

    def distance(self, a: str, b: str) -> float:
        """Distance in metres between two named nodes."""
        try:
            return self.nodes[a].distance_to(self.nodes[b])
        except KeyError as exc:
            raise KeyError(f"node {exc.args[0]!r} not in scene") from None

    def device_names(self) -> list[str]:
        """All node names except the ambient source."""
        return [n for n in self.nodes if n != "source"]

    @classmethod
    def two_device_line(
        cls,
        device_separation_m: float,
        source_distance_m: float = 1000.0,
    ) -> "Scene":
        """The paper's canonical topology: two tags ``device_separation_m``
        apart, both roughly ``source_distance_m`` from the TV tower.

        The tower is placed broadside so both devices see almost the same
        ambient power, which is the regime where decoding depends on the
        backscatter link rather than ambient asymmetry.
        """
        if device_separation_m <= 0:
            raise ValueError("device_separation_m must be positive")
        if source_distance_m <= 0:
            raise ValueError("source_distance_m must be positive")
        scene = cls()
        scene.place("source", 0.0, source_distance_m)
        scene.place("alice", -device_separation_m / 2.0, 0.0)
        scene.place("bob", device_separation_m / 2.0, 0.0)
        return scene

    @classmethod
    def cluster(
        cls,
        device_count: int,
        radius_m: float,
        source_distance_m: float = 1000.0,
        rng=None,
    ) -> "Scene":
        """Random cluster of devices in a disc, for network experiments."""
        from repro.utils.rng import ensure_rng

        if device_count < 1:
            raise ValueError("device_count must be >= 1")
        if radius_m <= 0:
            raise ValueError("radius_m must be positive")
        gen = ensure_rng(rng)
        scene = cls()
        scene.place("source", 0.0, source_distance_m)
        for i in range(device_count):
            r = radius_m * math.sqrt(gen.uniform())
            theta = gen.uniform(0.0, 2.0 * math.pi)
            scene.place(f"dev{i}", r * math.cos(theta), r * math.sin(theta))
        return scene
