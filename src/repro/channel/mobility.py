"""Device mobility: time-varying positions for block-fading sequences.

Block fading draws a fresh channel per packet; mobility decides *where*
the devices are when each block is drawn.  :class:`WaypointMobility`
moves a node piecewise-linearly through a list of timed waypoints — the
standard model for "the user walks away and comes back" scenarios that
rate adaptation must track.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.channel.geometry import Scene


@dataclass(frozen=True)
class Waypoint:
    """A position held from ``time_s`` until the next waypoint.

    Attributes
    ----------
    time_s:
        When the node is at (or starts moving toward) this position.
    x, y:
        Position in metres.
    """

    time_s: float
    x: float
    y: float


class WaypointMobility:
    """Piecewise-linear trajectory through timed waypoints.

    Before the first waypoint the node sits at it; between waypoints the
    position interpolates linearly; after the last it stays put.
    """

    def __init__(self, waypoints: list[Waypoint]):
        if not waypoints:
            raise ValueError("need at least one waypoint")
        times = [w.time_s for w in waypoints]
        if times != sorted(times):
            raise ValueError("waypoints must be time-ordered")
        if len(set(times)) != len(times):
            raise ValueError("waypoint times must be distinct")
        self._waypoints = list(waypoints)
        self._times = times

    def position(self, t: float) -> tuple[float, float]:
        """Interpolated (x, y) at time ``t``."""
        wps = self._waypoints
        if t <= wps[0].time_s:
            return wps[0].x, wps[0].y
        if t >= wps[-1].time_s:
            return wps[-1].x, wps[-1].y
        i = bisect.bisect_right(self._times, t)
        a, b = wps[i - 1], wps[i]
        frac = (t - a.time_s) / (b.time_s - a.time_s)
        return a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)

    def apply(self, scene: Scene, name: str, t: float) -> None:
        """Move node ``name`` in ``scene`` to its position at time ``t``."""
        x, y = self.position(t)
        scene.move(name, x, y)

    def distance_to(self, other_xy: tuple[float, float], t: float) -> float:
        """Distance [m] from the trajectory at ``t`` to a fixed point."""
        import math

        x, y = self.position(t)
        return math.hypot(x - other_xy[0], y - other_xy[1])

    @classmethod
    def back_and_forth(
        cls,
        near_m: float,
        far_m: float,
        period_s: float,
        along_x: bool = True,
    ) -> "WaypointMobility":
        """The canonical walk-away-and-return trajectory: start at
        ``near_m`` from the origin, reach ``far_m`` at half period, and
        return."""
        if not 0 < near_m < far_m:
            raise ValueError("need 0 < near_m < far_m")
        if period_s <= 0:
            raise ValueError("period_s must be positive")

        def point(d: float) -> tuple[float, float]:
            return (d, 0.0) if along_x else (0.0, d)

        return cls([
            Waypoint(0.0, *point(near_m)),
            Waypoint(period_s / 2, *point(far_m)),
            Waypoint(period_s, *point(near_m)),
        ])
