"""Propagation substrate.

Models the three kinds of paths in an ambient backscatter deployment:

* **source → device**: the strong broadcast path from the ambient source
  (TV tower) to each tag;
* **device → device**: the short backscatter path between tags;
* **dyadic (source → tag → receiver)**: the product channel a reflected
  signal traverses, which is what makes backscatter links so much weaker
  than the direct ambient path.

Path loss (:mod:`repro.channel.pathloss`), small-scale fading
(:mod:`repro.channel.fading`) and receiver noise
(:mod:`repro.channel.noise`) compose into :class:`ChannelModel`
(:mod:`repro.channel.link`), which turns a scene geometry
(:mod:`repro.channel.geometry`) into complex channel gains per trial.
"""

from repro.channel.fading import (
    BlockFading,
    NoFading,
    RayleighFading,
    RicianFading,
    make_fading,
)
from repro.channel.geometry import Node, Scene
from repro.channel.link import ChannelModel, LinkGains
from repro.channel.mobility import Waypoint, WaypointMobility
from repro.channel.noise import awgn, complex_awgn, noise_samples
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
    TwoRayGroundPathLoss,
)

__all__ = [
    "BlockFading",
    "ChannelModel",
    "FreeSpacePathLoss",
    "LinkGains",
    "LogDistancePathLoss",
    "NoFading",
    "Node",
    "PathLossModel",
    "RayleighFading",
    "RicianFading",
    "Scene",
    "TwoRayGroundPathLoss",
    "Waypoint",
    "WaypointMobility",
    "awgn",
    "complex_awgn",
    "make_fading",
    "noise_samples",
]
