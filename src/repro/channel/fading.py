"""Small-scale block-fading models.

Channels are constant within a packet (block fading) and i.i.d. across
Monte-Carlo trials.  Each model draws a unit-mean-power complex gain ``h``
(``E[|h|^2] = 1``) that multiplies the path-loss amplitude.

* :class:`NoFading` — static channels (fixed deployment, no mobility);
* :class:`RayleighFading` — rich scattering, no line of sight;
* :class:`RicianFading` — a dominant line-of-sight component plus
  scatter, parameterised by the K-factor.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative


class BlockFading(ABC):
    """Per-block complex gain generator with ``E[|h|^2] = 1``."""

    @abstractmethod
    def sample(self, rng=None) -> complex:
        """Draw one block's complex channel gain."""

    def sample_many(self, count: int, rng=None) -> np.ndarray:
        """Draw ``count`` i.i.d. block gains (vectorised where possible)."""
        gen = ensure_rng(rng)
        return np.array([self.sample(gen) for _ in range(count)], dtype=complex)


@dataclass(frozen=True)
class NoFading(BlockFading):
    """Deterministic unit gain with an optional fixed phase."""

    phase_rad: float = 0.0

    def sample(self, rng=None) -> complex:
        return complex(math.cos(self.phase_rad), math.sin(self.phase_rad))

    def sample_many(self, count: int, rng=None) -> np.ndarray:
        return np.full(count, self.sample(), dtype=complex)


@dataclass(frozen=True)
class RayleighFading(BlockFading):
    """Zero-mean complex Gaussian gain (Rayleigh envelope)."""

    def sample(self, rng=None) -> complex:
        gen = ensure_rng(rng)
        re, im = gen.standard_normal(2) / math.sqrt(2)
        return complex(re, im)

    def sample_many(self, count: int, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        draws = gen.standard_normal((count, 2)) / math.sqrt(2)
        return draws[:, 0] + 1j * draws[:, 1]


@dataclass(frozen=True)
class RicianFading(BlockFading):
    """Line-of-sight plus scatter; ``k_factor`` is the LOS/scatter power
    ratio (linear).  ``k_factor = 0`` reduces to Rayleigh; large K
    approaches the static channel."""

    k_factor: float = 4.0

    def __post_init__(self) -> None:
        check_non_negative("k_factor", self.k_factor)

    def sample(self, rng=None) -> complex:
        gen = ensure_rng(rng)
        k = self.k_factor
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        re, im = gen.standard_normal(2) * sigma
        phase = gen.uniform(0, 2 * math.pi)
        return complex(los * math.cos(phase) + re, los * math.sin(phase) + im)

    def sample_many(self, count: int, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        k = self.k_factor
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        scatter = gen.standard_normal((count, 2)) * sigma
        phases = gen.uniform(0, 2 * math.pi, size=count)
        return (
            los * np.exp(1j * phases) + scatter[:, 0] + 1j * scatter[:, 1]
        )


def make_fading(kind: str, **kwargs) -> BlockFading:
    """Factory keyed by name: ``"static"``, ``"rayleigh"`` or ``"rician"``."""
    kinds = {
        "static": NoFading,
        "rayleigh": RayleighFading,
        "rician": RicianFading,
    }
    if kind not in kinds:
        raise ValueError(f"unknown fading kind {kind!r}; choose from {sorted(kinds)}")
    return kinds[kind](**kwargs)
