"""Receiver noise generation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative


def complex_awgn(count: int, power_watt: float, rng=None) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise of mean power
    ``power_watt``.

    ``power_watt = 0`` returns exact zeros (noise-free experiments).
    """
    check_non_negative("power_watt", power_watt)
    if count < 0:
        raise ValueError("count must be non-negative")
    n = int(count)
    if power_watt == 0.0:
        return np.zeros(n, dtype=complex)
    gen = ensure_rng(rng)
    sigma = np.sqrt(power_watt / 2.0)
    return sigma * (gen.standard_normal(n) + 1j * gen.standard_normal(n))


def noise_samples(count: int, power_watt: float, rng=None) -> np.ndarray:
    """Alias of :func:`complex_awgn` (kept for API symmetry)."""
    return complex_awgn(count, power_watt, rng)


def awgn(x: np.ndarray, noise_power_watt: float, rng=None) -> np.ndarray:
    """Add complex AWGN of the given power to a waveform."""
    arr = np.asarray(x, dtype=complex)
    return arr + complex_awgn(arr.size, noise_power_watt, rng)
