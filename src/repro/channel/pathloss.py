"""Large-scale path-loss models.

Each model maps a distance to a linear **power gain** ``g <= 1`` (so the
received power is ``P_tx * g``).  Amplitude gains are ``sqrt(g)``.

Free-space loss anchors the absolute link budget; the log-distance model
generalises the exponent for indoor clutter; two-ray ground covers the
long TV-tower path where ground reflection dominates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.units import wavelength
from repro.utils.validation import check_positive


class PathLossModel(ABC):
    """Distance → linear power gain."""

    @abstractmethod
    def gain(self, distance_m: float) -> float:
        """Linear power gain at ``distance_m`` (clamped to <= 1)."""

    def amplitude_gain(self, distance_m: float) -> float:
        """Linear amplitude gain ``sqrt(power gain)``."""
        return math.sqrt(self.gain(distance_m))


@dataclass(frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space model ``g = (lambda / 4 pi d)^2``.

    Attributes
    ----------
    frequency_hz:
        Carrier frequency; 539 MHz matches the paper's TV channel.
    min_distance_m:
        Distances below this are clamped (near-field guard), keeping the
        gain finite and <= the gain at the clamp distance.
    """

    frequency_hz: float = 539e6
    min_distance_m: float = 0.05

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("min_distance_m", self.min_distance_m)

    def gain(self, distance_m: float) -> float:
        d = max(float(distance_m), self.min_distance_m)
        lam = wavelength(self.frequency_hz)
        g = (lam / (4.0 * math.pi * d)) ** 2
        return min(g, 1.0)


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance model: Friis to ``reference_m``, then exponent ``n``.

    ``g(d) = g_fs(d0) * (d0 / d)^n`` for ``d > d0``.  Exponents of 2.5–3.5
    model the indoor/cluttered settings of the paper's deployment
    scenarios.
    """

    frequency_hz: float = 539e6
    exponent: float = 2.7
    reference_m: float = 1.0
    min_distance_m: float = 0.05

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("exponent", self.exponent)
        check_positive("reference_m", self.reference_m)
        check_positive("min_distance_m", self.min_distance_m)

    def gain(self, distance_m: float) -> float:
        d = max(float(distance_m), self.min_distance_m)
        friis = FreeSpacePathLoss(self.frequency_hz, self.min_distance_m)
        g0 = friis.gain(self.reference_m)
        if d <= self.reference_m:
            return friis.gain(d)
        return min(g0 * (self.reference_m / d) ** self.exponent, 1.0)


@dataclass(frozen=True)
class TwoRayGroundPathLoss(PathLossModel):
    """Two-ray ground-reflection model for the long broadcast path.

    Uses Friis inside the crossover distance ``d_c = 4 pi h_t h_r /
    lambda`` and the ``(h_t h_r)^2 / d^4`` law beyond it — the standard
    piecewise approximation.
    """

    frequency_hz: float = 539e6
    tx_height_m: float = 100.0
    rx_height_m: float = 1.0
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("tx_height_m", self.tx_height_m)
        check_positive("rx_height_m", self.rx_height_m)
        check_positive("min_distance_m", self.min_distance_m)

    def crossover_distance(self) -> float:
        """Distance where the d^-4 regime takes over."""
        lam = wavelength(self.frequency_hz)
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / lam

    def gain(self, distance_m: float) -> float:
        d = max(float(distance_m), self.min_distance_m)
        dc = self.crossover_distance()
        friis = FreeSpacePathLoss(self.frequency_hz, self.min_distance_m)
        if d <= dc:
            return friis.gain(d)
        g = (self.tx_height_m * self.rx_height_m) ** 2 / d**4
        # Continuity trim: scale so the two regimes meet at the crossover.
        g_fs_dc = friis.gain(dc)
        g_tr_dc = (self.tx_height_m * self.rx_height_m) ** 2 / dc**4
        return min(g * (g_fs_dc / g_tr_dc), 1.0)
