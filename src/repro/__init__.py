"""repro — Full Duplex Backscatter (HotNets 2013), reproduced in Python.

An ambient-backscatter PHY, the paper's rate-asymmetric full-duplex
feedback layer on top of it, and a protocol-level network simulator that
measures what instantaneous feedback buys — all pure numpy/scipy.

Quickstart::

    import numpy as np
    from repro import (
        ChannelModel, FullDuplexConfig, FullDuplexLink, OfdmLikeSource,
        Scene, random_frame, random_bits,
    )

    cfg = FullDuplexConfig()
    source = OfdmLikeSource(sample_rate_hz=cfg.phy.sample_rate_hz,
                            bandwidth_hz=200e3)
    link = FullDuplexLink(cfg, source)
    scene = Scene.two_device_line(device_separation_m=1.0)
    gains = ChannelModel().realize(scene, rng=np.random.default_rng(0))
    exchange = link.run(gains, random_frame(16, rng=0),
                        feedback_bits=random_bits(0, 4), rng=1)
    print(exchange.data_delivered, exchange.feedback_errors)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.ambient import (
    AmbientSource,
    FilteredNoiseSource,
    OfdmLikeSource,
    ToneSource,
)
from repro.channel import (
    ChannelModel,
    FreeSpacePathLoss,
    LinkGains,
    LogDistancePathLoss,
    NoFading,
    Node,
    RayleighFading,
    RicianFading,
    Scene,
    TwoRayGroundPathLoss,
)
from repro.fullduplex import (
    FeedbackDecoder,
    FeedbackProtocol,
    FullDuplexConfig,
    FullDuplexExchange,
    FullDuplexLink,
    RateAdapter,
)
from repro.hardware import (
    EnergyHarvester,
    EnergyLedger,
    EnergyModel,
    ReflectionStates,
    TagFrontEnd,
)
from repro.mac import (
    FullDuplexAbortPolicy,
    HalfDuplexArqPolicy,
    NetworkSimulator,
    NoArqPolicy,
    SimulationConfig,
)
from repro.phy import (
    BackscatterReceiver,
    BackscatterTransmitter,
    Frame,
    PhyConfig,
)
from repro.phy.framing import random_frame
from repro.utils.rng import random_bits

__version__ = "1.0.0"

__all__ = [
    "AmbientSource",
    "BackscatterReceiver",
    "BackscatterTransmitter",
    "ChannelModel",
    "EnergyHarvester",
    "EnergyLedger",
    "EnergyModel",
    "FeedbackDecoder",
    "FeedbackProtocol",
    "FilteredNoiseSource",
    "Frame",
    "FreeSpacePathLoss",
    "FullDuplexAbortPolicy",
    "FullDuplexConfig",
    "FullDuplexExchange",
    "FullDuplexLink",
    "HalfDuplexArqPolicy",
    "LinkGains",
    "LogDistancePathLoss",
    "NetworkSimulator",
    "NoArqPolicy",
    "NoFading",
    "Node",
    "OfdmLikeSource",
    "PhyConfig",
    "RateAdapter",
    "RayleighFading",
    "ReflectionStates",
    "RicianFading",
    "Scene",
    "SimulationConfig",
    "TagFrontEnd",
    "ToneSource",
    "TwoRayGroundPathLoss",
    "random_bits",
    "random_frame",
]
