"""repro — Full Duplex Backscatter (HotNets 2013), reproduced in Python.

An ambient-backscatter PHY, the paper's rate-asymmetric full-duplex
feedback layer on top of it, and a protocol-level network simulator that
measures what instantaneous feedback buys — all pure numpy/scipy.

Quickstart::

    import numpy as np
    from repro import get_scenario, random_frame, random_bits

    stack = get_scenario("calibrated-default").build()
    gains = stack.realize(np.random.default_rng(0))
    exchange = stack.link.run(gains, random_frame(16, rng=0),
                              feedback_bits=random_bits(0, 4), rng=1)
    print(exchange.data_delivered, exchange.feedback_errors)

Deployment scenes are declarative (:class:`repro.experiments.ScenarioSpec`)
and named (``scenario_names()``); Monte-Carlo measurements run through
:class:`repro.experiments.ExperimentRunner`, serially or across a
process pool with bitwise-identical results.  Results persist in a
content-addressed store (:class:`repro.store.ResultStore`) and the
paper's figures are named, resumable campaigns
(:mod:`repro.campaigns`, ``repro campaign run/status/report``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

#: Folded into every result-store key (repro.store.CODE_VERSION): bump
#: on any change that alters simulation output, so stale cached results
#: stop being addressable.  Defined before the subpackage imports below
#: because repro.store reads it at import time.
__version__ = "1.1.0"

from repro.ambient import (
    AmbientSource,
    FilteredNoiseSource,
    OfdmLikeSource,
    ToneSource,
)
from repro.experiments import (
    ExperimentRunner,
    ResultTable,
    ScenarioSpec,
    ScenarioStack,
    get_scenario,
    scenario_names,
)
from repro.channel import (
    ChannelModel,
    FreeSpacePathLoss,
    LinkGains,
    LogDistancePathLoss,
    NoFading,
    Node,
    RayleighFading,
    RicianFading,
    Scene,
    TwoRayGroundPathLoss,
)
from repro.fullduplex import (
    FeedbackDecoder,
    FeedbackProtocol,
    FullDuplexConfig,
    FullDuplexExchange,
    FullDuplexLink,
    RateAdapter,
)
from repro.hardware import (
    EnergyHarvester,
    EnergyLedger,
    EnergyModel,
    ReflectionStates,
    TagFrontEnd,
)
from repro.mac import (
    FullDuplexAbortPolicy,
    HalfDuplexArqPolicy,
    NetworkSimulator,
    NoArqPolicy,
    SimulationConfig,
)
from repro.phy import (
    BackscatterReceiver,
    BackscatterTransmitter,
    Frame,
    PhyConfig,
)
from repro.campaigns import CampaignRunner, CampaignSpec, campaign_names, get_campaign
from repro.phy.framing import random_frame
from repro.store import ResultStore, cached_run
from repro.utils.rng import random_bits

__all__ = [
    "AmbientSource",
    "BackscatterReceiver",
    "BackscatterTransmitter",
    "CampaignRunner",
    "CampaignSpec",
    "ChannelModel",
    "EnergyHarvester",
    "EnergyLedger",
    "EnergyModel",
    "ExperimentRunner",
    "FeedbackDecoder",
    "FeedbackProtocol",
    "FilteredNoiseSource",
    "Frame",
    "FreeSpacePathLoss",
    "FullDuplexAbortPolicy",
    "FullDuplexConfig",
    "FullDuplexExchange",
    "FullDuplexLink",
    "HalfDuplexArqPolicy",
    "LinkGains",
    "LogDistancePathLoss",
    "NetworkSimulator",
    "NoArqPolicy",
    "NoFading",
    "Node",
    "OfdmLikeSource",
    "PhyConfig",
    "RateAdapter",
    "RayleighFading",
    "ReflectionStates",
    "ResultStore",
    "ResultTable",
    "RicianFading",
    "ScenarioSpec",
    "ScenarioStack",
    "Scene",
    "SimulationConfig",
    "TagFrontEnd",
    "ToneSource",
    "TwoRayGroundPathLoss",
    "cached_run",
    "campaign_names",
    "get_campaign",
    "get_scenario",
    "random_bits",
    "random_frame",
    "scenario_names",
]
