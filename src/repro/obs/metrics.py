"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per observability session holds every
instrument the instrumented code paths touch.  Instruments are created
lazily on first use (``registry.inc("store.get.hit")`` just works), all
mutation is serialised through one registry lock so concurrent chunk
runners cannot lose increments, and a snapshot serialises to canonical
strict-finite JSON (sorted keys, ``allow_nan=False`` — the same rules
``repro.lint`` enforces on the store and campaign layers).

Histograms use **fixed bucket edges**, declared at creation and
immutable afterwards: observations land in the bucket
``edges[i-1] < value <= edges[i]`` with an implicit overflow bucket
above the last edge.  Fixed edges keep snapshots mergeable across
sessions and trivially diffable between runs — there is no adaptive
resizing to make two snapshots structurally incomparable.

Everything here is stdlib-only and deliberately ignorant of the rest
of the package: the observability layer must never import simulation
code (no cycle, no numpy cost at import time).
"""

from __future__ import annotations

import json
import math
import numbers
import threading

__all__ = [
    "DEFAULT_TIME_EDGES_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default bucket edges (seconds) for duration histograms: spans in
#: this codebase range from sub-millisecond store reads to multi-second
#: campaign units, so a decade ladder covers the dynamic range.
DEFAULT_TIME_EDGES_S = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)


def _as_number(value) -> int | float:
    """Coerce a numeric-ish value (incl. numpy scalars) to int/float."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    raise TypeError(f"metric values must be numeric, got {type(value).__name__}")


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def _inc(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time numeric value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float | None = None

    def _set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-edge bucket counts plus exact count/sum of observations.

    ``counts[i]`` tallies observations with ``value <= edges[i]`` (and
    above the previous edge); ``counts[-1]`` is the overflow bucket.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(self, name: str, edges) -> None:
        cleaned = tuple(float(e) for e in edges)
        if not cleaned:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if list(cleaned) != sorted(set(cleaned)):
            raise ValueError(
                f"histogram {name!r} edges must be strictly increasing, "
                f"got {cleaned}"
            )
        self.name = name
        self.edges = cleaned
        self.counts = [0] * (len(cleaned) + 1)
        self.count = 0
        self.total = 0.0

    def _observe(self, value: float) -> None:
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value


class MetricsRegistry:
    """Lazily created, lock-serialised instruments, by dotted name.

    One name maps to exactly one instrument kind for the lifetime of
    the registry; reusing a counter name as a histogram (or re-declaring
    a histogram with different edges) raises instead of silently
    recording into the wrong shape.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation / lookup ---------------------------------------------------

    def _check_unique(self, name: str, table: dict) -> None:
        for kind, instruments in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if instruments is not table and name in instruments:
                raise ValueError(
                    f"metric name {name!r} is already a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                self._check_unique(name, self._counters)
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                self._check_unique(name, self._gauges)
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(self, name: str, edges=DEFAULT_TIME_EDGES_S) -> Histogram:
        """The histogram called ``name`` (edges fixed on first use)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._check_unique(name, self._histograms)
                hist = self._histograms[name] = Histogram(name, edges)
            elif hist.edges != tuple(float(e) for e in edges):
                raise ValueError(
                    f"histogram {name!r} already exists with edges "
                    f"{hist.edges}, requested {tuple(edges)}"
                )
            return hist

    # -- mutation ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount`` (default 1)."""
        counter = self.counter(name)
        with self._lock:
            counter._inc(int(_as_number(amount)))

    def set_gauge(self, name: str, value) -> None:
        """Set the gauge ``name`` to ``value``."""
        gauge = self.gauge(name)
        with self._lock:
            gauge._set(_as_number(value))

    def observe(self, name: str, value, edges=DEFAULT_TIME_EDGES_S) -> None:
        """Record one observation into the histogram ``name``."""
        hist = self.histogram(name, edges)
        observed = float(_as_number(value))
        if not math.isfinite(observed):
            # The snapshot is strict-finite JSON; a NaN/Inf observation
            # would poison the histogram sum and fail serialisation.
            raise ValueError(
                f"histogram {name!r} observation must be finite, "
                f"got {observed!r}"
            )
        with self._lock:
            hist._observe(observed)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as one JSON-able document."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: {
                        "edges": list(h.edges),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.total,
                    }
                    for name, h in self._histograms.items()
                },
            }

    def to_json(self) -> str:
        """Canonical strict-finite JSON rendering of :meth:`snapshot`."""
        return json.dumps(
            self.snapshot(), indent=2, sort_keys=True, allow_nan=False
        )
