"""The one blessed clock: monotonic durations for observability.

Every duration the observability layer measures — span wall times,
chunk timings, engine build costs — is read here and nowhere else.
Package code reading a clock directly is a lint error (``DET004``):
wall-clock reads in records, keys or checkpoints make identical runs
produce different bytes (``DET001``), and even *monotonic* reads
scattered through the tree are an audit burden — each one is a site
where timing could leak into results.  One module, one function, two
justified suppressions below; everything else imports this.

The clock is monotonic only.  Nothing in this module (or in the
observability layer it feeds) can tell you what time it is — only how
long something took.  Absolute timestamps stay out of traces on
purpose: they are the classic source of run-to-run diff noise, and the
trace schema (DESIGN §11) is defined relative to the session start.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_ns", "monotonic_s"]


def monotonic_s() -> float:
    """Seconds on the process-local monotonic clock (float).

    Suitable only for measuring durations: the zero point is arbitrary
    and differs between processes.
    """
    # The blessed read: all repro.obs timing flows through this call.
    return time.perf_counter()  # repro: noqa[DET004] -- the one blessed monotonic clock read


def monotonic_ns() -> int:
    """Nanoseconds on the process-local monotonic clock (int).

    The integer twin of :func:`monotonic_s`, for callers that want to
    avoid float accumulation over long sessions.
    """
    return time.perf_counter_ns()  # repro: noqa[DET004] -- the one blessed monotonic clock read
