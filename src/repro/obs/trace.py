"""JSON-lines trace writer: thread-safe, canonical, strict-finite.

A trace is one event per line.  The first line is always a ``meta``
event pinning the schema version and the clock contract; every later
line is a ``span`` event emitted when a span *closes* (so children
appear before their parents — readers reconstruct nesting from the
``id``/``parent`` fields, not from file order):

.. code-block:: json

    {"clock":"monotonic","type":"meta","version":1}
    {"attrs":{"outcome":"hit"},"dur_s":0.0003,"id":2,"name":"store.get",
     "parent":1,"t0_s":0.012,"type":"span"}

Timestamps are **relative to the session start** on the process-local
monotonic clock (:mod:`repro.obs.clock`) — a trace never contains wall
time, so diffing two traces of the same run shows only genuine timing
differences, not when you happened to run them.

Every line is serialised with the repo's canonical JSON discipline
(sorted keys, ``allow_nan=False``, compact separators); non-finite
attribute values are wrapped in the same ``{"$nonfinite": ...}``
sentinels the result store uses.  Writing is serialised through one
lock so spans closing on different threads interleave as whole lines,
never as torn ones.
"""

from __future__ import annotations

import json
import math
import numbers
import pathlib
import threading

__all__ = ["TRACE_VERSION", "TraceWriter", "sanitize"]

#: Trace schema version stamped into the meta line.
TRACE_VERSION = 1

#: Sentinel key wrapping non-finite floats (mirrors
#: ``repro.experiments.results.NONFINITE_KEY`` without importing it —
#: the observability layer stays free of simulation imports).
NONFINITE_KEY = "$nonfinite"


def sanitize(value):
    """``value`` as a JSON-able, strict-finite document.

    Scalars are canonicalised (numpy integers/floats become python
    ints/floats via :mod:`numbers`, non-finite floats become
    ``{"$nonfinite": ...}`` sentinels), containers recurse, and
    anything else falls back to ``str`` — a trace attribute must never
    be able to crash the traced code.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        out = float(value)
        if math.isnan(out):
            return {NONFINITE_KEY: "nan"}
        if out == math.inf:
            return {NONFINITE_KEY: "inf"}
        if out == -math.inf:
            return {NONFINITE_KEY: "-inf"}
        return out
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    # numpy scalars outside the numbers ABCs (np.bool_) unwrap to
    # python scalars via .item() — without this module importing numpy.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            unwrapped = item()
        except (TypeError, ValueError):
            return str(value)
        if type(unwrapped) is not type(value):
            return sanitize(unwrapped)
    return str(value)


def encode_event(event: dict) -> str:
    """One canonical JSON line (no newline) for ``event``."""
    return json.dumps(
        sanitize(event),
        sort_keys=True,
        allow_nan=False,
        separators=(",", ":"),
        ensure_ascii=True,
    )


class TraceWriter:
    """Append-only JSON-lines sink, buffered and lock-serialised.

    Parameters
    ----------
    path:
        Destination file (opened eagerly, truncating).  ``None`` keeps
        events in memory only — :attr:`events` — which is what the
        in-process report tests use.
    clock_label:
        Free-text description of the time base, stamped into the meta
        line (the default documents the monotonic contract).
    """

    #: Buffered event lines are flushed to disk every this many events,
    #: so a crashed run still leaves a mostly-complete trace behind.
    FLUSH_EVERY = 64

    def __init__(self, path=None, *, clock_label: str = "monotonic") -> None:
        self._lock = threading.Lock()
        self._closed = False
        self._pending = 0
        self.path = pathlib.Path(path) if path is not None else None
        self.events: list[dict] = []
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        self.write(
            {"type": "meta", "version": TRACE_VERSION, "clock": clock_label}
        )

    def write(self, event: dict) -> None:
        """Append one event (one line), thread-safely."""
        line = encode_event(event)
        with self._lock:
            if self._closed:
                raise ValueError("trace writer is closed")
            self.events.append(event)
            if self._fh is not None:
                self._fh.write(line + "\n")
                self._pending += 1
                if self._pending >= self.FLUSH_EVERY:
                    self._fh.flush()
                    self._pending = 0

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None
