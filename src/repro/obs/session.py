"""Observability sessions: spans, nesting, and the global on/off switch.

The whole subsystem hinges on one module-level slot, ``_SESSION``.
When it is ``None`` (the default), every instrumentation entry point —
:func:`span`, :func:`inc`, :func:`observe` — takes a single attribute
load and a falsy check before returning a shared no-op object.  No
clock read, no allocation, no lock.  That is the "null recorder" the
perf guard (``bench_o1_obs_overhead.py``) bounds at ≤2 % overhead.

When a session is started (:func:`start`), spans become real: each
carries a process-unique id from a locked counter, nests via a
*per-thread* stack (so parallel chunk workers build independent span
trees without sharing state), reads :mod:`repro.obs.clock` exactly
twice (enter + exit), and on exit emits one trace event plus a
``span.<name>`` counter and ``span.<name>.s`` duration histogram into
the session's :class:`~repro.obs.metrics.MetricsRegistry`.

Determinism contract: nothing in this module touches an RNG, and the
instrumented code paths never branch on anything a span returns — so
an instrumented run produces bitwise-identical records, store bytes
and result keys to an uninstrumented one (pinned by
``tests/test_obs_integration.py``).
"""

from __future__ import annotations

import functools
import threading

from repro.obs import clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceWriter

__all__ = [
    "NOOP_SPAN",
    "ObsSession",
    "current_session",
    "inc",
    "observe",
    "set_gauge",
    "span",
    "start",
    "stop",
    "traced",
]


class _NoopSpan:
    """The disabled-path span: every operation is a cheap no-op.

    One shared instance (:data:`NOOP_SPAN`) is returned by every
    :func:`span` call while no session is active, so the disabled path
    allocates nothing.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **attrs) -> None:
        """Discard ``attrs`` (the live twin records them on the span)."""


#: The shared do-nothing span handed out while observability is off.
NOOP_SPAN = _NoopSpan()


class _Span:
    """One live timed region; created by :meth:`ObsSession.span`.

    Use as a context manager.  The trace event is emitted at exit so a
    span's duration and final attributes travel in one line; nesting
    is reconstructed from ``id``/``parent``, not file order.
    """

    __slots__ = ("_session", "name", "attrs", "span_id", "parent_id", "_t0")

    def __init__(self, session: "ObsSession", name: str, attrs: dict) -> None:
        self._session = session
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self._t0 = 0.0

    def note(self, **attrs) -> None:
        """Attach or update attributes on this span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        session = self._session
        self.span_id = session._next_id()
        stack = session._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._t0 = clock.monotonic_s()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = clock.monotonic_s()
        session = self._session
        stack = session._stack()
        # Pop our own id even if an inner span leaked (defensive: a
        # mismatched stack must never corrupt *other* threads' trees).
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:
            stack.remove(self.span_id)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        session._finish_span(self, self._t0, t1)
        return False


class ObsSession:
    """One observability run: a metrics registry plus an optional trace.

    Parameters
    ----------
    trace_path:
        Where to stream JSON-lines span events.  ``None`` records
        metrics only (spans still feed counters/histograms).
    collect_events:
        Keep span events in memory (``writer.events``) even without a
        file — used by in-process report tests and ``repro obs``.
    """

    def __init__(self, trace_path=None, *, collect_events: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self.writer: TraceWriter | None = None
        if trace_path is not None or collect_events:
            self.writer = TraceWriter(trace_path)
        self._id_lock = threading.Lock()
        self._last_id = 0
        self._local = threading.local()
        self._t_start = clock.monotonic_s()

    # -- span plumbing -------------------------------------------------------

    def _next_id(self) -> int:
        with self._id_lock:
            self._last_id += 1
            return self._last_id

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish_span(self, span: _Span, t0: float, t1: float) -> None:
        dur = t1 - t0
        self.metrics.inc(f"span.{span.name}")
        self.metrics.observe(f"span.{span.name}.s", dur)
        if self.writer is not None:
            self.writer.write(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "t0_s": t0 - self._t_start,
                    "dur_s": dur,
                    "attrs": span.attrs,
                }
            )

    # -- public API ----------------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """A new timed region named ``name`` (use as a context manager)."""
        return _Span(self, name, attrs)

    def close(self) -> None:
        """Flush and close the trace writer (idempotent)."""
        if self.writer is not None:
            self.writer.close()


# -- global session ----------------------------------------------------------

#: The active session, or ``None`` (observability disabled — default).
_SESSION: ObsSession | None = None
_SESSION_LOCK = threading.Lock()


def start(trace_path=None, *, collect_events: bool = False) -> ObsSession:
    """Start (and install) the global observability session.

    Starting while a session is already active replaces it after
    closing the old one — the common case is one session per CLI
    invocation, so last-start-wins keeps the API un-fussy.
    """
    global _SESSION
    session = ObsSession(trace_path, collect_events=collect_events)
    with _SESSION_LOCK:
        previous, _SESSION = _SESSION, session
    if previous is not None:
        previous.close()
    return session


def stop() -> ObsSession | None:
    """Stop the global session, close its trace, and return it."""
    global _SESSION
    with _SESSION_LOCK:
        session, _SESSION = _SESSION, None
    if session is not None:
        session.close()
    return session


def current_session() -> ObsSession | None:
    """The active global session, or ``None`` when disabled."""
    return _SESSION


def span(name: str, **attrs):
    """A span on the global session, or :data:`NOOP_SPAN` when disabled.

    The disabled path is the hot path: one global load, one ``is None``
    check, return a shared object.  Keep it that way.
    """
    session = _SESSION
    if session is None:
        return NOOP_SPAN
    return session.span(name, **attrs)


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the global session (no-op when disabled)."""
    session = _SESSION
    if session is not None:
        session.metrics.inc(name, amount)


def observe(name: str, value, **kwargs) -> None:
    """Record a histogram observation (no-op when disabled)."""
    session = _SESSION
    if session is not None:
        session.metrics.observe(name, value, **kwargs)


def set_gauge(name: str, value) -> None:
    """Set a gauge on the global session (no-op when disabled)."""
    session = _SESSION
    if session is not None:
        session.metrics.set_gauge(name, value)


def traced(name: str | None = None, **span_attrs):
    """Decorator: wrap a callable in a span named after it.

    ``@traced()`` uses the function's qualified name; ``@traced("x")``
    overrides it.  Extra keyword arguments become static span attrs.
    """

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            session = _SESSION
            if session is None:
                return fn(*args, **kwargs)
            with session.span(span_name, **span_attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
