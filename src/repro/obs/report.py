"""Run reports: turn a trace (file or in-memory events) into answers.

A report aggregates span events by name — count, total/min/max/mean
duration — and, when the trace came from a campaign run, reconciles
the ``campaign.unit`` spans into the same accounting
:class:`~repro.campaigns.runner.CampaignRunResult` reports: outcome
counts, trials computed, and the store hit rate
``(hit + truncated) / units``.  The CI warm-run gate is exactly this
reconciliation: a second run of an unchanged campaign must show
``trials_computed == 0`` and ``store_hit_rate == 1.0``.

Both renderings are deterministic given the trace: the JSON form is
canonical (sorted keys, strict-finite), the text form is sorted by
span name.  Durations obviously differ run to run; everything else in
a report is a pure function of the recorded events.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.trace import TRACE_VERSION

__all__ = ["RunReport", "load_trace", "report_from_events", "report_from_trace"]

#: Outcomes of ``store.cached_run`` that were answered from the store
#: without recomputing every trial (top-ups recompute the tail, so they
#: count as computed work, not hits).
_STORE_HIT_OUTCOMES = ("hit", "truncated")


def load_trace(path) -> list[dict]:
    """All events from a JSON-lines trace file, meta line included.

    Raises ``ValueError`` on a missing/garbled meta line or an
    unsupported schema version — a report must never silently
    misread a trace written by a different layout.
    """
    events: list[dict] = []
    with open(pathlib.Path(path), encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trace line ({exc})"
                ) from None
    if not events or events[0].get("type") != "meta":
        raise ValueError(f"{path}: missing meta line; not a repro trace?")
    version = events[0].get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"{path}: trace version {version!r} unsupported "
            f"(reader expects {TRACE_VERSION})"
        )
    return events


class RunReport:
    """Aggregated view of one trace: span stats + campaign accounting."""

    def __init__(self, events: list[dict]) -> None:
        self.meta = events[0] if events and events[0].get("type") == "meta" else {}
        self.spans = [e for e in events if e.get("type") == "span"]
        self.by_name: dict[str, dict] = {}
        for event in self.spans:
            stats = self.by_name.setdefault(
                event["name"],
                {"count": 0, "total_s": 0.0, "min_s": None, "max_s": 0.0},
            )
            dur = float(event.get("dur_s", 0.0))
            stats["count"] += 1
            stats["total_s"] += dur
            stats["max_s"] = max(stats["max_s"], dur)
            stats["min_s"] = dur if stats["min_s"] is None else min(stats["min_s"], dur)
        self.campaign = self._campaign_section()

    # -- campaign reconciliation --------------------------------------------

    def _campaign_section(self) -> dict | None:
        units = [s for s in self.spans if s["name"] == "campaign.unit"]
        if not units:
            return None
        outcome_counts: dict[str, int] = {}
        trials_computed = 0
        for unit in units:
            attrs = unit.get("attrs", {})
            outcome = str(attrs.get("outcome", "unknown"))
            outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
            trials_computed += int(attrs.get("trials_computed", 0))
        n_units = len(units)
        hits = sum(outcome_counts.get(o, 0) for o in _STORE_HIT_OUTCOMES)
        return {
            "units": n_units,
            "outcome_counts": dict(sorted(outcome_counts.items())),
            "trials_computed": trials_computed,
            "store_hit_rate": hits / n_units,
        }

    # -- renderings ----------------------------------------------------------

    def to_dict(self) -> dict:
        """The report as one JSON-able document."""
        names = {}
        for name in sorted(self.by_name):
            stats = self.by_name[name]
            names[name] = {
                "count": stats["count"],
                "total_s": stats["total_s"],
                "mean_s": stats["total_s"] / stats["count"],
                "min_s": stats["min_s"],
                "max_s": stats["max_s"],
            }
        doc = {
            "trace_version": self.meta.get("version"),
            "n_spans": len(self.spans),
            "spans": names,
        }
        if self.campaign is not None:
            doc["campaign"] = self.campaign
        return doc

    def to_json(self) -> str:
        """Canonical strict-finite JSON rendering."""
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, allow_nan=False
        )

    def to_text(self) -> str:
        """Human-readable table, sorted by span name."""
        lines = [f"run report — {len(self.spans)} spans"]
        if self.by_name:
            width = max(len(n) for n in self.by_name)
            header = (
                f"  {'span':<{width}}  {'count':>7}  {'total_s':>10}  "
                f"{'mean_s':>10}  {'max_s':>10}"
            )
            lines.append(header)
            for name in sorted(self.by_name):
                stats = self.by_name[name]
                mean = stats["total_s"] / stats["count"]
                lines.append(
                    f"  {name:<{width}}  {stats['count']:>7}  "
                    f"{stats['total_s']:>10.4f}  {mean:>10.6f}  "
                    f"{stats['max_s']:>10.6f}"
                )
        if self.campaign is not None:
            c = self.campaign
            lines.append("")
            lines.append("campaign")
            lines.append(f"  units           {c['units']}")
            for outcome, count in c["outcome_counts"].items():
                lines.append(f"    {outcome:<14}{count}")
            lines.append(f"  trials computed {c['trials_computed']}")
            lines.append(f"  store hit rate  {c['store_hit_rate']:.1%}")
        return "\n".join(lines)


def report_from_events(events: list[dict]) -> RunReport:
    """A :class:`RunReport` over in-memory trace events."""
    return RunReport(events)


def report_from_trace(path) -> RunReport:
    """A :class:`RunReport` over a JSON-lines trace file."""
    return RunReport(load_trace(path))
