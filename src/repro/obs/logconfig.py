"""CLI logging setup: one verbosity knob for the ``repro.*`` hierarchy.

Every module in the package logs through ``logging.getLogger("repro.
<area>")`` — ``repro.store``, ``repro.campaigns``, ``repro.cli`` — and
this module maps the CLI's ``-v``/``-q`` count onto that hierarchy:

====================  =========
verbosity             level
====================  =========
``-q`` (−1 or lower)  ERROR
default (0)           WARNING
``-v`` (1)            INFO
``-vv`` (2+)          DEBUG
====================  =========

Configuration is idempotent (re-running replaces our handler instead
of stacking duplicates) and deliberately leaves ``propagate`` alone so
pytest's ``caplog`` — which listens on the root logger — keeps seeing
package log records in tests.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "verbosity_to_level"]

#: Marker attribute so we can find (and replace) our own handler.
_HANDLER_TAG = "_repro_cli_handler"


def verbosity_to_level(verbosity: int) -> int:
    """The :mod:`logging` level for a ``-v``/``-q`` count."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0, *, stream=None) -> logging.Logger:
    """Point the ``repro`` logger at stderr at the requested verbosity.

    Returns the configured ``repro`` logger.  Safe to call repeatedly
    (e.g. across CLI invocations in one process): the previous handler
    installed here is removed first.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(verbosity_to_level(verbosity))
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    return logger
