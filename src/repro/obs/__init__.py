"""``repro.obs`` — deterministic tracing, metrics, and run reports.

The observability layer for the whole stack: spans over the hot paths
(store gets, runner chunks, campaign units, engine builds), a metrics
registry of counters/gauges/histograms, JSON-lines traces, and run
reports that reconcile a trace against campaign accounting.

Design constraints (see DESIGN.md §11):

* **Off by default, free when off.**  Until :func:`start` is called,
  every entry point is a null recorder — one global check, no clock
  read, no allocation.
* **One blessed clock.**  All timing flows through
  :mod:`repro.obs.clock` (monotonic only); direct clock reads in
  package code are a lint error (``DET004``).
* **Never perturb the science.**  Instrumentation touches no RNG and
  no record bytes; instrumented runs are bitwise-identical to
  uninstrumented ones.
* **Canonical JSON everywhere.**  Traces, metrics snapshots, and
  reports all serialise sorted-key, strict-finite.

Typical use::

    from repro import obs

    obs.start(trace_path="trace.jsonl")
    with obs.span("my.phase", size=n):
        ...
    session = obs.stop()
    print(session.metrics.to_json())
"""

from __future__ import annotations

from repro.obs.logconfig import configure_logging, verbosity_to_level
from repro.obs.metrics import DEFAULT_TIME_EDGES_S, MetricsRegistry
from repro.obs.report import (
    RunReport,
    load_trace,
    report_from_events,
    report_from_trace,
)
from repro.obs.session import (
    NOOP_SPAN,
    ObsSession,
    current_session,
    inc,
    observe,
    set_gauge,
    span,
    start,
    stop,
    traced,
)
from repro.obs.trace import TRACE_VERSION, TraceWriter

__all__ = [
    "DEFAULT_TIME_EDGES_S",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsSession",
    "RunReport",
    "TRACE_VERSION",
    "TraceWriter",
    "configure_logging",
    "current_session",
    "inc",
    "load_trace",
    "observe",
    "report_from_events",
    "report_from_trace",
    "set_gauge",
    "span",
    "start",
    "stop",
    "traced",
    "verbosity_to_level",
]
