"""Preamble patterns and templates.

A frame opens with a warm-up run (alternating bits that let the
receiver's moving-average threshold settle) followed by a Barker-13 sync
word, whose autocorrelation sidelobes are minimal — the correlator in
:mod:`repro.phy.sync` locks onto it to find the frame start.
"""

from __future__ import annotations

import numpy as np

from repro.phy.coding import encode

#: Barker-13 sequence mapped to bits (+1 → 1, −1 → 0).
BARKER13_BITS = np.array([1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=np.uint8)


def warmup_bits(count: int) -> np.ndarray:
    """Alternating 1/0 run that settles the adaptive threshold."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return (np.arange(count) % 2 == 0).astype(np.uint8)


def default_preamble_bits(warmup: int = 8) -> np.ndarray:
    """Warm-up run followed by the Barker-13 sync word."""
    return np.concatenate([warmup_bits(warmup), BARKER13_BITS])


def preamble_template(coding: str, warmup: int = 8) -> np.ndarray:
    """Chip-level template of the default preamble under a line code.

    The sync correlator matches this template (expanded to sample rate)
    against the sliced receive stream.
    """
    return encode(default_preamble_bits(warmup), coding)


def sync_word_template(coding: str) -> np.ndarray:
    """Chip-level template of just the Barker-13 sync word."""
    return encode(BARKER13_BITS, coding)
