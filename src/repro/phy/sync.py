"""Frame-start acquisition.

The receiver pre-averages the detector output over one chip period (the
analog integrator) and correlates the result against the known preamble
chip template, ±1-mapped and passed through the same averaging filter.
Normalised correlation makes the detector insensitive to the absolute
envelope level — only the *shape* of the chip modulation matters — and
pre-averaging recovers the chip-period processing gain that slicing the
raw envelope would destroy (ambient-envelope fluctuation per sample far
exceeds the backscatter modulation depth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import moving_average
from repro.dsp.ops import normalized_correlation, repeat_samples
from repro.phy.config import PhyConfig
from repro.phy.preamble import preamble_template


@dataclass(frozen=True)
class SyncResult:
    """Outcome of preamble acquisition.

    Attributes
    ----------
    found:
        Whether the correlation peak cleared the detection threshold.
    start_sample:
        Sample index of the first preamble chip (valid when ``found``).
    peak_correlation:
        Peak |normalised correlation| in [0, 1].
    polarity:
        +1 when "reflect" raises the envelope, -1 when the backscatter
        path adds *destructively* to the direct ambient path and the
        levels invert.  The inversion is a real property of envelope-
        detected backscatter (it depends on the relative phase of the
        direct and dyadic paths); the receiver resolves it from the sign
        of the preamble correlation, exactly as real receivers resolve
        it from a known preamble.
    """

    found: bool
    start_sample: int
    peak_correlation: float
    polarity: int = 1


def matched_template(config: PhyConfig) -> np.ndarray:
    """±1 preamble chip template after the chip-period averaging filter.

    Matches what the preamble looks like in the pre-averaged envelope, so
    the correlation peak lands exactly on the frame-start sample.
    """
    chips = preamble_template(config.coding, config.warmup_bits)
    square = repeat_samples(
        chips.astype(float) * 2.0 - 1.0, config.samples_per_chip
    )
    return moving_average(square, config.samples_per_chip)


def acquire_frame_start(
    envelope: np.ndarray,
    config: PhyConfig,
    threshold: float = 0.5,
    search_limit: int | None = None,
) -> SyncResult:
    """Locate the preamble in a detector-output envelope.

    Parameters
    ----------
    envelope:
        Smoothed envelope-power samples (detector output), *before* any
        chip integration — this function applies its own chip-period
        moving average.
    config:
        PHY parameters (chip template, samples per chip).
    threshold:
        Minimum normalised correlation to declare detection.  For a
        template of L chips, noise-only correlation is ~N(0, 1/sqrt(L));
        0.5 is > 6 sigma for the 42-chip default preamble while tolerating
        substantial chip corruption.
    search_limit:
        Restrict the search to the first ``search_limit`` samples
        (latency control in streaming use); ``None`` searches everything.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    env = np.asarray(envelope, dtype=float)
    averaged = moving_average(env, config.samples_per_chip)
    template = matched_template(config)
    if search_limit is not None:
        averaged = averaged[: max(int(search_limit), template.size)]
    corr = normalized_correlation(averaged, template)
    if corr.size == 0:
        return SyncResult(found=False, start_sample=-1, peak_correlation=0.0)
    peak = int(np.argmax(np.abs(corr)))
    value = float(corr[peak])
    return SyncResult(
        found=abs(value) >= threshold,
        start_sample=peak,
        peak_correlation=abs(value),
        polarity=1 if value >= 0 else -1,
    )
