"""Backscatter receive chain.

The pipeline, modelled after the analog/digital split of the prototype
hardware:

1. square-law envelope detection with light RC smoothing (analog);
2. chip-period integration — the analog integrator that recovers the
   processing gain over the fluctuating ambient envelope;
3. adaptive moving-average threshold over a few bits of chip integrals
   (analog RC divider);
4. comparator → hard chips (analog→digital);
5. preamble correlation on the pre-averaged envelope → frame start;
6. line-code decode → bits → frame parse + CRC (digital).

The same chain serves half-duplex reception and the receive half of
full-duplex operation — in the latter case the caller passes the
device's *own* transmit chip waveform so the front end applies the
self-reception gating, and the adaptive threshold absorbs the resulting
slow level steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.filters import integrate_and_dump, moving_average
from repro.hardware.comparator import HysteresisComparator
from repro.hardware.detector import EnvelopeDetector
from repro.hardware.reflection import ReflectionStates
from repro.hardware.tag import TagFrontEnd
from repro.phy import coding as lc
from repro.phy.config import PhyConfig
from repro.phy.framing import (
    LENGTH_FIELD_BITS,
    Frame,
    body_bits_for_payload,
    parse_frame,
)
from repro.phy.preamble import default_preamble_bits
from repro.phy.sync import SyncResult, acquire_frame_start


@dataclass(frozen=True)
class ReceiveResult:
    """Outcome of one frame reception attempt.

    Attributes
    ----------
    frame:
        Parsed frame, or ``None`` when sync or parsing failed.
    crc_ok:
        True only when a frame parsed and its CRC validated.
    sync:
        Preamble acquisition details.
    body_bits:
        The decoded post-preamble bits (diagnostics; empty on sync fail).
    """

    frame: Frame | None
    crc_ok: bool
    sync: SyncResult
    body_bits: np.ndarray

    @property
    def delivered(self) -> bool:
        """Frame received intact (sync + parse + CRC)."""
        return self.crc_ok


@dataclass
class BackscatterReceiver:
    """Configurable receive chain.

    Attributes
    ----------
    config:
        PHY rates/coding (must match the transmitter's).
    adaptive:
        Use the moving-average threshold (the paper's design).  False
        switches to a fixed whole-record mean threshold — the ablation
        strawman that breaks under full-duplex self-interference.
    states:
        This device's impedance states (used only for self-reception
        gating when it is also transmitting).
    sync_threshold:
        Minimum preamble correlation to accept a frame.
    self_compensation:
        When receiving while transmitting (full-duplex), divide the
        envelope by the known through-power of the device's *own*
        reflection state.  The device knows its own switching waveform
        exactly, so this digital correction removes the self-interference
        steps up to the detector's RC smearing at edges.  Disable for the
        F6 ablation, which shows the residual 1/r error floor without it.
    """

    config: PhyConfig
    adaptive: bool = True
    states: ReflectionStates = field(default_factory=ReflectionStates)
    sync_threshold: float = 0.5
    self_compensation: bool = True

    def __post_init__(self) -> None:
        detector = EnvelopeDetector(
            sample_rate_hz=self.config.sample_rate_hz,
            smoothing_tau_seconds=self.config.smoothing_tau_s,
        )
        self._front_end = TagFrontEnd(
            detector=detector,
            comparator=HysteresisComparator(),
            states=self.states,
        )

    @property
    def front_end(self) -> TagFrontEnd:
        """The analog front end (exposed for energy accounting)."""
        return self._front_end

    def envelope(
        self,
        incident: np.ndarray,
        own_chip_waveform: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stage 1: smoothed detector output (with self-reception gating
        when the device is concurrently transmitting, and the known-state
        compensation that undoes it digitally)."""
        env = self._front_end.receive_envelope(incident, own_chip_waveform)
        if own_chip_waveform is not None and self.self_compensation:
            from repro.dsp.filters import alpha_for_time_constant
            from repro.fullduplex.selfinterference import compensate_envelope

            alpha = alpha_for_time_constant(
                self.config.smoothing_tau_s, self.config.sample_rate_hz
            )
            env = compensate_envelope(
                env, own_chip_waveform, self.states, smoothing_alpha=alpha
            )
        return env

    def soft_chips(self, envelope: np.ndarray, start_sample: int,
                   count: int) -> np.ndarray:
        """Stage 2: per-chip envelope integrals from a start offset."""
        if start_sample < 0:
            raise ValueError("start_sample must be non-negative")
        spc = self.config.samples_per_chip
        segment = np.asarray(envelope, dtype=float)[
            start_sample : start_sample + count * spc
        ]
        if segment.size < count * spc:
            return np.empty(0, dtype=float)
        return integrate_and_dump(segment, spc)

    def chip_threshold(self, soft_chips: np.ndarray) -> np.ndarray:
        """Stage 3: comparator threshold over chip integrals."""
        window_chips = self.config.threshold_window_bits * self.config.chips_per_bit
        if self.adaptive:
            return moving_average(soft_chips, window_chips)
        return np.full_like(soft_chips, float(np.mean(soft_chips)))

    def hard_chips(self, soft_chips: np.ndarray) -> np.ndarray:
        """Stages 3–4: threshold + comparator → hard chip decisions."""
        thr = self.chip_threshold(soft_chips)
        return self._front_end.slice(soft_chips, thr)

    def soft_decode_bits(self, soft_chips: np.ndarray,
                         polarity: int = 1) -> np.ndarray:
        """Chip integrals → bits, using the strongest decision rule the
        line code admits.

        Manchester decodes *differentially* — each bit compares its two
        half-bit integrals directly, cancelling the threshold and any
        slow envelope drift.  FM0 and NRZ go through the threshold +
        hard-chip path.

        ``polarity`` is the reflect-raises-envelope sign resolved by the
        preamble correlator (see
        :class:`repro.phy.sync.SyncResult.polarity`); −1 flips the
        decision sense.  FM0 is transition-coded and therefore polarity-
        invariant by construction.
        """
        if polarity not in (1, -1):
            raise ValueError("polarity must be +1 or -1")
        soft = np.asarray(soft_chips, dtype=float)
        if self.config.coding == "manchester":
            if soft.size % 2:
                raise ValueError("Manchester soft decode needs an even "
                                 "number of chips")
            first, second = soft[0::2], soft[1::2]
            if polarity > 0:
                return (first > second).astype(np.uint8)
            return (first < second).astype(np.uint8)
        hard = self.hard_chips(soft)
        if polarity < 0:
            hard = (1 - hard).astype(np.uint8)
        return lc.decode(hard, self.config.coding)

    def receive_frame(
        self,
        incident: np.ndarray,
        own_chip_waveform: np.ndarray | None = None,
    ) -> ReceiveResult:
        """Full chain: incident complex samples → parsed frame."""
        env = self.envelope(incident, own_chip_waveform)
        sync = acquire_frame_start(env, self.config, self.sync_threshold)
        empty = np.empty(0, dtype=np.uint8)
        if not sync.found:
            return ReceiveResult(frame=None, crc_ok=False, sync=sync,
                                 body_bits=empty)
        cpb = self.config.chips_per_bit
        preamble_chips = default_preamble_bits(self.config.warmup_bits).size * cpb
        body_start = sync.start_sample + preamble_chips * self.config.samples_per_chip
        # Decode the length field first, then exactly the bits it implies.
        # The threshold is computed over the whole available chip run so
        # the comparator has context on both sides of each decision.
        max_chips = (env.size - body_start) // self.config.samples_per_chip
        header_chip_count = LENGTH_FIELD_BITS * cpb
        if max_chips < header_chip_count:
            return ReceiveResult(frame=None, crc_ok=False, sync=sync,
                                 body_bits=empty)
        soft = self.soft_chips(env, body_start, max_chips)
        header_bits = self.soft_decode_bits(soft[:header_chip_count],
                                            polarity=sync.polarity)
        length = 0
        for b in header_bits:
            length = (length << 1) | int(b)
        try:
            body_bit_count = body_bits_for_payload(length)
        except ValueError:
            return ReceiveResult(frame=None, crc_ok=False, sync=sync,
                                 body_bits=header_bits)
        if soft.size < body_bit_count * cpb:
            return ReceiveResult(frame=None, crc_ok=False, sync=sync,
                                 body_bits=header_bits)
        body_bits = self.soft_decode_bits(soft[: body_bit_count * cpb],
                                          polarity=sync.polarity)
        frame, ok = parse_frame(body_bits)
        return ReceiveResult(frame=frame, crc_ok=ok, sync=sync,
                             body_bits=body_bits)

    def decode_aligned_bits(
        self,
        incident: np.ndarray,
        num_bits: int,
        own_chip_waveform: np.ndarray | None = None,
        start_sample: int = 0,
        compensate_delay: bool = True,
        pilot_bits: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode ``num_bits`` with known alignment (no sync search).

        The raw-BER harness uses this: the trial controls timing, so sync
        errors are measured separately from chip errors.
        ``compensate_delay`` shifts the start by the detector's RC group
        delay, which callers quoting transmit-time offsets want.

        ``pilot_bits`` — a known prefix of the transmitted bits — lets
        the receiver resolve the backscatter polarity sign (see
        :class:`repro.phy.sync.SyncResult.polarity`): the stream is
        decoded at both polarities and the one matching the pilot wins.
        Without a pilot, positive polarity is assumed (correct for
        static co-phased channels only).
        """
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if compensate_delay:
            start_sample += self.config.detector_delay_samples
        env = self.envelope(incident, own_chip_waveform)
        soft = self.soft_chips(env, start_sample,
                               num_bits * self.config.chips_per_bit)
        if soft.size < num_bits * self.config.chips_per_bit:
            raise ValueError(
                "incident waveform too short for the requested bit count"
            )
        if pilot_bits is None:
            return self.soft_decode_bits(soft)
        pilot = np.asarray(pilot_bits).astype(np.uint8)
        if pilot.size == 0 or pilot.size > num_bits:
            raise ValueError("pilot must be a non-empty prefix of the bits")
        pilot_chips = pilot.size * self.config.chips_per_bit
        if self.config.coding == "manchester":
            # Matched-filter polarity: correlate the pilot's soft
            # half-differences against the known pilot signs.
            head = soft[:pilot_chips]
            margins = head[0::2] - head[1::2]
            signs = pilot.astype(float) * 2.0 - 1.0
            best_polarity = 1 if float(np.dot(margins, signs)) >= 0 else -1
        else:
            best_polarity = 1
            best_errors = None
            for polarity in (1, -1):
                decoded = self.soft_decode_bits(soft[:pilot_chips], polarity)
                errors = int(np.count_nonzero(decoded != pilot))
                if best_errors is None or errors < best_errors:
                    best_errors = errors
                    best_polarity = polarity
        return self.soft_decode_bits(soft, best_polarity)
