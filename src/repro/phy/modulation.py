"""Bits → sample-level chip waveforms."""

from __future__ import annotations

import numpy as np

from repro.dsp.ops import repeat_samples
from repro.phy import coding as lc
from repro.phy.config import PhyConfig


def chips_for_bits(bits: np.ndarray, config: PhyConfig) -> np.ndarray:
    """Line-code a bit array into chips under a PHY config."""
    return lc.encode(bits, config.coding)


def chip_waveform(chips: np.ndarray, config: PhyConfig) -> np.ndarray:
    """Expand a chip array to a rectangular 0/1 waveform at sample rate."""
    return repeat_samples(np.asarray(chips, dtype=np.uint8),
                          config.samples_per_chip)


def bits_to_waveform(bits: np.ndarray, config: PhyConfig) -> np.ndarray:
    """Bits straight to the sample-level switching waveform."""
    return chip_waveform(chips_for_bits(bits, config), config)
