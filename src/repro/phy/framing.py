"""Frame structure: preamble | length | payload | CRC-16.

The over-the-air bit layout of one frame:

====================  =====================================================
field                 bits
====================  =====================================================
warm-up               ``warmup_bits`` alternating bits
sync word             Barker-13 (13 bits)
length                8 bits, payload length in *bytes* (0–255)
payload               ``8 * length`` bits
CRC-16                over length + payload
====================  =====================================================

The whole frame (including the preamble bits) is then line-coded in one
pass, so the FM0 state is deterministic and the preamble chip template is
known to the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy import coding as lc
from repro.phy.crc import append_crc16, check_crc16
from repro.phy.preamble import default_preamble_bits

#: Bits in the length field.
LENGTH_FIELD_BITS = 8

#: Maximum payload size in bytes.
MAX_PAYLOAD_BYTES = (1 << LENGTH_FIELD_BITS) - 1


@dataclass(frozen=True)
class Frame:
    """A parsed (or to-be-sent) frame.

    Attributes
    ----------
    payload_bits:
        The application payload as a 0/1 array; length must be a multiple
        of 8 (whole bytes), matching the byte-granular length field.
    """

    payload_bits: np.ndarray

    def __post_init__(self) -> None:
        bits = np.asarray(self.payload_bits)
        if bits.ndim != 1 or bits.size % 8 != 0:
            raise ValueError("payload must be a 1-D bit array of whole bytes")
        if bits.size // 8 > MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload exceeds {MAX_PAYLOAD_BYTES} bytes")
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ValueError("payload bits must be 0/1")
        object.__setattr__(self, "payload_bits", bits.astype(np.uint8))

    @property
    def payload_bytes(self) -> int:
        """Payload length in bytes."""
        return self.payload_bits.size // 8


def _length_field(num_bytes: int) -> np.ndarray:
    return np.array(
        [(num_bytes >> (LENGTH_FIELD_BITS - 1 - i)) & 1
         for i in range(LENGTH_FIELD_BITS)],
        dtype=np.uint8,
    )


def frame_body_bits(frame: Frame) -> np.ndarray:
    """Length + payload + CRC-16 (everything after the preamble)."""
    header = _length_field(frame.payload_bytes)
    return append_crc16(np.concatenate([header, frame.payload_bits]))


def build_frame(frame: Frame, warmup: int = 8) -> np.ndarray:
    """Complete over-the-air bit stream for a frame (before line coding)."""
    return np.concatenate([default_preamble_bits(warmup), frame_body_bits(frame)])


def build_frame_chips(frame: Frame, coding: str, warmup: int = 8) -> np.ndarray:
    """Line-coded chip stream for a complete frame."""
    return lc.encode(build_frame(frame, warmup), coding)


def body_bits_for_payload(payload_bytes: int) -> int:
    """Number of post-preamble bits for a payload of ``payload_bytes``."""
    if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload_bytes must be in [0, {MAX_PAYLOAD_BYTES}]")
    return LENGTH_FIELD_BITS + 8 * payload_bytes + 16


def parse_frame(body_bits: np.ndarray) -> tuple[Frame | None, bool]:
    """Parse post-preamble bits into a frame.

    Returns ``(frame, crc_ok)``.  ``frame`` is ``None`` when the stream is
    too short or the length field is inconsistent with the available
    bits; ``crc_ok`` is False in every failure case.
    """
    bits = np.asarray(body_bits).astype(np.uint8)
    if bits.size < LENGTH_FIELD_BITS + 16:
        return None, False
    length = 0
    for b in bits[:LENGTH_FIELD_BITS]:
        length = (length << 1) | int(b)
    needed = body_bits_for_payload(length)
    if bits.size < needed:
        return None, False
    body = bits[:needed]
    ok = check_crc16(body)
    payload = body[LENGTH_FIELD_BITS:-16]
    return Frame(payload_bits=payload), ok


def random_frame(payload_bytes: int, rng=None) -> Frame:
    """A frame with uniform random payload — the Monte-Carlo workload."""
    from repro.utils.rng import random_bits

    if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload_bytes must be in [0, {MAX_PAYLOAD_BYTES}]")
    return Frame(payload_bits=random_bits(rng, 8 * payload_bytes))
