"""Half-duplex ambient backscatter PHY (the SIGCOMM 2013 baseline).

The layer stack, bottom-up:

* :mod:`repro.phy.crc` — CRC-8/16 frame checks;
* :mod:`repro.phy.coding` — DC-balanced line codes (FM0, Manchester, NRZ);
* :mod:`repro.phy.preamble` — sync patterns and correlation detection;
* :mod:`repro.phy.framing` — frame build/parse (preamble | length |
  payload | CRC-16);
* :mod:`repro.phy.modulation` — bits → chip waveforms at sample rate;
* :mod:`repro.phy.transmitter` / :mod:`repro.phy.receiver` — the full TX
  and RX chains over a channel realisation;
* :mod:`repro.phy.sync` — frame-start acquisition;
* :mod:`repro.phy.config` — one dataclass tying the rates together.

The full-duplex layer (:mod:`repro.fullduplex`) composes these chains —
it changes *when* devices reflect, not how bits are coded.
"""

from repro.phy.coding import (
    fm0_decode,
    fm0_encode,
    manchester_decode,
    manchester_encode,
    nrz_decode,
    nrz_encode,
)
from repro.phy.config import PhyConfig
from repro.phy.crc import append_crc16, check_crc16, crc16, crc8
from repro.phy.framing import Frame, build_frame, parse_frame
from repro.phy.modulation import chip_waveform, chips_for_bits
from repro.phy.preamble import default_preamble_bits, preamble_template
from repro.phy.receiver import BackscatterReceiver, ReceiveResult
from repro.phy.sync import acquire_frame_start
from repro.phy.transmitter import BackscatterTransmitter, TxWaveforms

__all__ = [
    "BackscatterReceiver",
    "BackscatterTransmitter",
    "Frame",
    "PhyConfig",
    "ReceiveResult",
    "TxWaveforms",
    "acquire_frame_start",
    "append_crc16",
    "build_frame",
    "check_crc16",
    "chip_waveform",
    "chips_for_bits",
    "crc16",
    "crc8",
    "default_preamble_bits",
    "fm0_decode",
    "fm0_encode",
    "manchester_decode",
    "manchester_encode",
    "nrz_decode",
    "nrz_encode",
    "parse_frame",
    "preamble_template",
]
