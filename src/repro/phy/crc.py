"""Cyclic redundancy checks over bit arrays.

Bit-serial implementations of CRC-8 (poly 0x07) and CRC-16-CCITT
(poly 0x1021, init 0xFFFF), operating directly on 0/1 ``uint8`` arrays —
the native currency of the PHY layer.  Bit-serial is exactly how a tag's
tiny logic computes it, and at frame sizes of a few hundred bits the cost
is irrelevant.
"""

from __future__ import annotations

import numpy as np


def _as_bits(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return arr.astype(np.uint8)


def crc8(bits) -> np.ndarray:
    """CRC-8 (poly 0x07, init 0x00) of a bit array, as 8 bits MSB-first."""
    data = _as_bits(bits)
    reg = 0
    for b in data:
        reg ^= int(b) << 7
        if reg & 0x80:
            reg = ((reg << 1) ^ 0x07) & 0xFF
        else:
            reg = (reg << 1) & 0xFF
    return np.array([(reg >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)


def crc16(bits) -> np.ndarray:
    """CRC-16-CCITT (poly 0x1021, init 0xFFFF) of a bit array, as 16 bits
    MSB-first."""
    data = _as_bits(bits)
    reg = 0xFFFF
    for b in data:
        reg ^= int(b) << 15
        if reg & 0x8000:
            reg = ((reg << 1) ^ 0x1021) & 0xFFFF
        else:
            reg = (reg << 1) & 0xFFFF
    return np.array([(reg >> (15 - i)) & 1 for i in range(16)], dtype=np.uint8)


def append_crc16(bits) -> np.ndarray:
    """Return ``bits`` with its CRC-16 appended."""
    data = _as_bits(bits)
    return np.concatenate([data, crc16(data)])


def check_crc16(bits_with_crc) -> bool:
    """Validate a bit array whose last 16 bits are its CRC-16."""
    data = _as_bits(bits_with_crc)
    if data.size < 16:
        return False
    body, tail = data[:-16], data[-16:]
    return bool(np.array_equal(crc16(body), tail))
