"""Line codes: FM0, Manchester, NRZ.

The moving-average threshold at the receiver only works if the chip
stream is DC-balanced over the averaging window; FM0 (the RFID standard
the prototype uses) and Manchester both guarantee a transition per bit,
so any window of a few bits averages to the midpoint.  NRZ is provided
as the unbalanced strawman for tests and ablations.

All encoders map a bit array to a **chip** array (0/1 levels, 2 chips/bit
for FM0 and Manchester, 1 for NRZ); decoders invert them from hard chip
decisions — which is literally what the hardware does with the comparator
output.
"""

from __future__ import annotations

import numpy as np

CHIPS_PER_BIT = {"fm0": 2, "manchester": 2, "nrz": 1}


def _as_bits(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return arr.astype(np.uint8)


def nrz_encode(bits) -> np.ndarray:
    """NRZ: one chip per bit, level = bit."""
    return _as_bits(bits).copy()


def nrz_decode(chips) -> np.ndarray:
    """NRZ decode: identity on hard chips."""
    return _as_bits(chips).copy()


def manchester_encode(bits) -> np.ndarray:
    """IEEE Manchester: bit 1 → chips ``[1, 0]``, bit 0 → ``[0, 1]``."""
    b = _as_bits(bits)
    chips = np.empty(2 * b.size, dtype=np.uint8)
    chips[0::2] = b
    chips[1::2] = 1 - b
    return chips


def manchester_decode(chips) -> np.ndarray:
    """Manchester decode from hard chips: the first half-chip wins.

    Tolerates corrupted pairs (no transition) by taking the first chip,
    which matches a majority-free hardware decoder.
    """
    c = _as_bits(chips)
    if c.size % 2:
        raise ValueError("Manchester chip stream must have even length")
    return c[0::2].copy()


def fm0_encode(bits, initial_level: int = 1) -> np.ndarray:
    """FM0 (bi-phase space): invert at every bit boundary; a data 0 adds a
    mid-bit inversion, a data 1 does not.

    ``initial_level`` is the line level *before* the first boundary
    transition; the decoder must be seeded with the same value.
    """
    b = _as_bits(bits)
    if initial_level not in (0, 1):
        raise ValueError("initial_level must be 0 or 1")
    chips = np.empty(2 * b.size, dtype=np.uint8)
    level = int(initial_level)
    for i, bit in enumerate(b):
        level ^= 1  # boundary transition
        chips[2 * i] = level
        if bit == 0:
            level ^= 1  # mid-bit transition encodes a 0
        chips[2 * i + 1] = level
    return chips


def fm0_decode(chips, initial_level: int = 1) -> np.ndarray:
    """FM0 decode from hard chips: a bit is 1 iff its two half-chips are
    equal.  ``initial_level`` is accepted for signature symmetry (the
    mid-bit rule alone determines the data)."""
    c = _as_bits(chips)
    if c.size % 2:
        raise ValueError("FM0 chip stream must have even length")
    first = c[0::2]
    second = c[1::2]
    return (first == second).astype(np.uint8)


_ENCODERS = {
    "fm0": fm0_encode,
    "manchester": manchester_encode,
    "nrz": nrz_encode,
}

_DECODERS = {
    "fm0": fm0_decode,
    "manchester": manchester_decode,
    "nrz": nrz_decode,
}


def encode(bits, coding: str) -> np.ndarray:
    """Encode with a named line code (``"fm0"``/``"manchester"``/``"nrz"``)."""
    if coding not in _ENCODERS:
        raise ValueError(f"unknown coding {coding!r}; choose from {sorted(_ENCODERS)}")
    return _ENCODERS[coding](bits)


def _as_bits_2d(bits) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ValueError("bits must be a 2-D (batch, bits) array")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0 and 1")
    return arr.astype(np.uint8)


def encode_batch(bits, coding: str, initial_level: int = 1) -> np.ndarray:
    """Encode a ``(batch, bits)`` array into ``(batch, chips)`` chips.

    Row ``i`` of the output equals ``encode(bits[i], coding)`` exactly —
    the batched trial engine's lane-equivalence guarantee rests on this.
    The FM0 scan is closed-form here: the line level before chip ``2i``
    has flipped once per bit boundary plus once per earlier data 0, so a
    cumulative count of zero-bits replaces the per-bit loop.
    """
    b = _as_bits_2d(bits)
    n = b.shape[1]
    if coding == "nrz":
        return b.copy()
    chips = np.empty((b.shape[0], 2 * n), dtype=np.uint8)
    if coding == "manchester":
        chips[:, 0::2] = b
        chips[:, 1::2] = 1 - b
        return chips
    if coding == "fm0":
        if initial_level not in (0, 1):
            raise ValueError("initial_level must be 0 or 1")
        zeros_before = np.zeros((b.shape[0], n), dtype=np.int64)
        if n > 1:
            zeros_before[:, 1:] = np.cumsum(b[:, :-1] == 0, axis=1)
        index = np.arange(1, n + 1)
        first = (initial_level + index + zeros_before) & 1
        chips[:, 0::2] = first.astype(np.uint8)
        chips[:, 1::2] = (first ^ (b == 0)).astype(np.uint8)
        return chips
    raise ValueError(
        f"unknown coding {coding!r}; choose from {sorted(_ENCODERS)}"
    )


def decode(chips, coding: str) -> np.ndarray:
    """Decode hard chips with a named line code."""
    if coding not in _DECODERS:
        raise ValueError(f"unknown coding {coding!r}; choose from {sorted(_DECODERS)}")
    return _DECODERS[coding](chips)
