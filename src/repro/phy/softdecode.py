"""Batched soft-decision decoding: many trials' chip integrals at once.

The scalar receive chain (:class:`repro.phy.receiver.BackscatterReceiver`)
decodes one exchange's per-chip envelope integrals; the batched trial
engine stacks N independent exchanges into an ``(N, chips)`` array and
decodes every lane in one pass.  Each function here mirrors one scalar
decision rule *operation for operation*, so lane ``i`` of every output is
bitwise identical to running the scalar receiver on row ``i`` — the
contract :mod:`repro.experiments.batch` is built on:

* :func:`soft_decode_bits_batch` ↔
  :meth:`~repro.phy.receiver.BackscatterReceiver.soft_decode_bits`
  (differential Manchester, thresholded FM0/NRZ);
* :func:`resolve_polarity_batch` ↔ the pilot-driven polarity search in
  :meth:`~repro.phy.receiver.BackscatterReceiver.decode_aligned_bits`.

Only the zero-hysteresis comparator (the receiver's default) is modelled
in the hard-chip path; the scalar chain is the reference for anything
more exotic.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import moving_average
from repro.phy import coding as lc
from repro.phy.config import PhyConfig


def _as_soft_batch(soft_chips) -> np.ndarray:
    soft = np.asarray(soft_chips, dtype=float)
    if soft.ndim != 2:
        raise ValueError("soft chips must be a 2-D (lanes, chips) array")
    return soft


def _as_polarity(polarity, lanes: int) -> np.ndarray:
    pol = np.broadcast_to(np.asarray(polarity, dtype=np.int64), (lanes,))
    if not np.all((pol == 1) | (pol == -1)):
        raise ValueError("polarity must be +1 or -1 per lane")
    return pol


def chip_threshold_batch(
    soft_chips: np.ndarray, config: PhyConfig, adaptive: bool = True
) -> np.ndarray:
    """Per-lane comparator threshold over chip integrals.

    Mirrors :meth:`BackscatterReceiver.chip_threshold`: a causal moving
    average over ``threshold_window_bits`` of chips (or each lane's whole
    run mean for the fixed-threshold ablation).
    """
    soft = _as_soft_batch(soft_chips)
    window_chips = config.threshold_window_bits * config.chips_per_bit
    if adaptive:
        return moving_average(soft, window_chips)
    means = np.array([float(np.mean(row)) for row in soft])
    return np.broadcast_to(means[:, None], soft.shape).astype(float)


def hard_chips_batch(
    soft_chips: np.ndarray, config: PhyConfig, adaptive: bool = True
) -> np.ndarray:
    """Threshold + zero-hysteresis comparator → hard chips per lane."""
    soft = _as_soft_batch(soft_chips)
    thr = chip_threshold_batch(soft, config, adaptive)
    return (soft > thr).astype(np.uint8)


def soft_decode_bits_batch(
    soft_chips: np.ndarray,
    config: PhyConfig,
    polarity=1,
    adaptive: bool = True,
) -> np.ndarray:
    """Chip integrals → bits for every lane at once.

    ``polarity`` is a scalar or per-lane array of ±1 (the sign resolved
    by each lane's pilot, see :func:`resolve_polarity_batch`).
    Manchester decodes differentially; FM0/NRZ go through the batched
    threshold + comparator path, with negative-polarity lanes' hard
    chips inverted before line decoding — the scalar rule, row for row.
    """
    soft = _as_soft_batch(soft_chips)
    pol = _as_polarity(polarity, soft.shape[0])
    if config.coding == "manchester":
        if soft.shape[1] % 2:
            raise ValueError(
                "Manchester soft decode needs an even number of chips"
            )
        first, second = soft[:, 0::2], soft[:, 1::2]
        positive = first > second
        negative = first < second
        return np.where(pol[:, None] > 0, positive, negative).astype(np.uint8)
    hard = hard_chips_batch(soft, config, adaptive)
    hard = np.where(pol[:, None] < 0, 1 - hard, hard).astype(np.uint8)
    return lc.decode(hard.reshape(-1), config.coding).reshape(
        hard.shape[0], -1
    )


def resolve_polarity_batch(
    soft_chips: np.ndarray,
    pilot_bits: np.ndarray,
    config: PhyConfig,
    adaptive: bool = True,
) -> np.ndarray:
    """Per-lane backscatter polarity from a known pilot prefix.

    Manchester lanes correlate the pilot's soft half-differences against
    the known pilot signs (matched filter); other codings decode the
    pilot at both polarities and keep the one with fewer pilot errors,
    preferring +1 on ties — both exactly the scalar receiver's rules.
    """
    soft = _as_soft_batch(soft_chips)
    pilot = np.asarray(pilot_bits).astype(np.uint8)
    if pilot.size == 0:
        raise ValueError("pilot must be non-empty")
    pilot_chips = pilot.size * config.chips_per_bit
    if soft.shape[1] < pilot_chips:
        raise ValueError("soft chip run shorter than the pilot")
    signs = pilot.astype(float) * 2.0 - 1.0
    lanes = soft.shape[0]
    polarity = np.ones(lanes, dtype=np.int64)
    if config.coding == "manchester":
        head = soft[:, :pilot_chips]
        margins = head[:, 0::2] - head[:, 1::2]
        for lane in range(lanes):
            # Per-lane np.dot keeps the accumulation order of the
            # scalar matched filter (a batched gemv may not).
            if float(np.dot(margins[lane], signs)) < 0:
                polarity[lane] = -1
        return polarity
    head = soft[:, :pilot_chips]
    errors_by_pol = {}
    for pol in (1, -1):
        decoded = soft_decode_bits_batch(head, config, pol, adaptive)
        errors_by_pol[pol] = np.count_nonzero(decoded != pilot, axis=1)
    flip = errors_by_pol[-1] < errors_by_pol[1]
    polarity[flip] = -1
    return polarity
