"""Backscatter transmit chain.

Takes a frame, produces the two sample-level waveforms the rest of the
simulator needs:

* ``chip_waveform`` — the 0/1 switching control (what the device's own
  front end gates its receive/harvest path with);
* ``reflection_waveform`` — the instantaneous reflection amplitude Γ[n]
  the channel multiplies into the backscattered path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.reflection import ReflectionModulator, ReflectionStates
from repro.phy.config import PhyConfig
from repro.phy.framing import Frame, build_frame_chips
from repro.phy.modulation import chip_waveform


@dataclass(frozen=True)
class TxWaveforms:
    """Sample-level output of one frame transmission.

    Attributes
    ----------
    chips:
        The line-coded chip array (one entry per chip).
    chip_waveform:
        Chips expanded to the sample rate (0/1).
    reflection_waveform:
        Instantaneous reflection amplitude Γ[n] (same length).
    """

    chips: np.ndarray
    chip_waveform: np.ndarray
    reflection_waveform: np.ndarray

    @property
    def num_samples(self) -> int:
        """Transmission length in samples."""
        return self.chip_waveform.size


@dataclass
class BackscatterTransmitter:
    """Frame → waveforms under a PHY config and impedance states."""

    config: PhyConfig
    states: ReflectionStates = field(default_factory=ReflectionStates)

    def transmit(self, frame: Frame) -> TxWaveforms:
        """Build the switching and reflection waveforms for ``frame``."""
        chips = build_frame_chips(
            frame, self.config.coding, warmup=self.config.warmup_bits
        )
        wave = chip_waveform(chips, self.config)
        modulator = ReflectionModulator(
            states=self.states, samples_per_chip=self.config.samples_per_chip
        )
        gamma = modulator.reflection_waveform(chips)
        return TxWaveforms(
            chips=chips, chip_waveform=wave, reflection_waveform=gamma
        )

    def transmit_bits(self, bits: np.ndarray) -> TxWaveforms:
        """Raw-bit transmission (no framing) for BER measurements."""
        from repro.phy.modulation import chips_for_bits

        chips = chips_for_bits(np.asarray(bits, dtype=np.uint8), self.config)
        wave = chip_waveform(chips, self.config)
        modulator = ReflectionModulator(
            states=self.states, samples_per_chip=self.config.samples_per_chip
        )
        gamma = modulator.reflection_waveform(chips)
        return TxWaveforms(
            chips=chips, chip_waveform=wave, reflection_waveform=gamma
        )
