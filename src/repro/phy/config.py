"""PHY configuration: rates, coding and receiver windows.

One frozen dataclass ties together the sample rate, bit rate, line code
and receiver constants, and derives the integer samples-per-chip the
sample-level simulator requires.  Defaults follow the ambient-backscatter
operating point: 1 kbps data over a wideband ambient source, envelope
smoothing well under a chip, threshold window of a few bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.coding import CHIPS_PER_BIT
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PhyConfig:
    """Rates and receiver constants for one backscatter link.

    Attributes
    ----------
    sample_rate_hz:
        Simulation sample rate.  Must be an integer multiple of the chip
        rate (``bit_rate_bps * chips_per_bit``).
    bit_rate_bps:
        Data bit rate (1 kbps default — the paper's prototype rate).
    coding:
        Line code: ``"manchester"`` (default), ``"fm0"`` or ``"nrz"``.
        The prototype used an FM0-style code; we default to Manchester
        because its half-bit structure admits a *differential* soft bit
        decision (compare the two half-bit integrals directly), which
        needs no threshold in the data path and is markedly more robust
        over a fluctuating ambient envelope.  FM0 remains available and
        is decoded from hard chips.
    warmup_bits:
        Alternating bits prepended to every frame so the adaptive
        threshold settles before the sync word.
    threshold_window_bits:
        Moving-average threshold length in *bits*.  Must be several bits
        (so data averages out) and — for full-duplex operation — well
        under one feedback bit.
    smoothing_fraction_of_chip:
        Detector RC time constant as a fraction of a chip period.
    """

    sample_rate_hz: float = 256_000.0
    bit_rate_bps: float = 1_000.0
    coding: str = "manchester"
    warmup_bits: int = 8
    threshold_window_bits: int = 4
    smoothing_fraction_of_chip: float = 0.125

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("bit_rate_bps", self.bit_rate_bps)
        if self.coding not in CHIPS_PER_BIT:
            raise ValueError(
                f"unknown coding {self.coding!r}; "
                f"choose from {sorted(CHIPS_PER_BIT)}"
            )
        if self.warmup_bits < 2:
            raise ValueError("warmup_bits must be >= 2")
        check_positive("threshold_window_bits", self.threshold_window_bits)
        if not 0.0 < self.smoothing_fraction_of_chip <= 1.0:
            raise ValueError("smoothing_fraction_of_chip must be in (0, 1]")
        ratio = self.sample_rate_hz / self.chip_rate_hz
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 4:
            raise ValueError(
                "sample_rate_hz must be an integer multiple (>= 4x) of the "
                f"chip rate {self.chip_rate_hz} Hz, got ratio {ratio}"
            )

    @property
    def chips_per_bit(self) -> int:
        """Chips per data bit under the configured line code."""
        return CHIPS_PER_BIT[self.coding]

    @property
    def chip_rate_hz(self) -> float:
        """Chip rate = bit rate × chips per bit."""
        return self.bit_rate_bps * self.chips_per_bit

    @property
    def samples_per_chip(self) -> int:
        """Integer samples per chip at the simulation rate."""
        return int(round(self.sample_rate_hz / self.chip_rate_hz))

    @property
    def samples_per_bit(self) -> int:
        """Integer samples per data bit."""
        return self.samples_per_chip * self.chips_per_bit

    @property
    def bit_period_s(self) -> float:
        """Duration of one data bit [s]."""
        return 1.0 / self.bit_rate_bps

    @property
    def smoothing_tau_s(self) -> float:
        """Detector RC time constant [s]."""
        chip_period = 1.0 / self.chip_rate_hz
        return self.smoothing_fraction_of_chip * chip_period

    @property
    def threshold_window_samples(self) -> int:
        """Moving-average threshold window in samples."""
        return self.threshold_window_bits * self.samples_per_bit

    @property
    def detector_delay_samples(self) -> int:
        """Group delay of the detector's RC smoothing stage.

        A single-pole smoother delays the envelope by roughly its time
        constant; aligned-decode callers shift their start offsets by
        this much (the sync correlator finds the delayed position on its
        own, since it searches the same smoothed envelope).
        """
        return int(round(self.smoothing_fraction_of_chip * self.samples_per_chip))

    def with_bit_rate(self, bit_rate_bps: float) -> "PhyConfig":
        """Copy with a different bit rate (used by rate sweeps)."""
        from dataclasses import replace

        return replace(self, bit_rate_bps=bit_rate_bps)
