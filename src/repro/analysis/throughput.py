"""Closed-form protocol economics.

Independent stop-and-wait renewal analysis used to cross-check the event
simulator on single-link scenarios (no contention, Bernoulli loss ``p``):

* Half-duplex ARQ: every attempt costs a full packet; a success
  additionally costs the turnaround + ACK exchange; expected attempts
  per delivered packet is ``1/(1-p)`` (unbounded retries).
* Full-duplex abort: a failed attempt costs only the bits up to the
  abort point; success costs the packet plus the trailing feedback slot.

These are renewal-reward results — the simulator should land within
Monte-Carlo error of them, and the F5 bench prints both.
"""

from __future__ import annotations

from repro.analysis.theory import expected_abort_savings_fraction
from repro.hardware.energy import EnergyModel
from repro.utils.validation import check_probability


def expected_attempts(loss_probability: float) -> float:
    """Mean attempts per delivered packet with unbounded retries."""
    check_probability("loss_probability", loss_probability)
    if loss_probability >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - loss_probability)


def expected_energy_per_delivered_hd(
    loss_probability: float,
    packet_bits: int,
    ack_bits: int,
    energy: EnergyModel,
) -> float:
    """Expected transmitter+receiver energy [J] per delivered packet
    under half-duplex stop-and-wait ARQ (ACK assumed loss-free for the
    closed form; the simulator models ACK loss too)."""
    check_probability("loss_probability", loss_probability)
    if packet_bits <= 0 or ack_bits < 0:
        raise ValueError("packet_bits must be positive, ack_bits >= 0")
    attempts = expected_attempts(loss_probability)
    per_attempt = energy.tx_cost(packet_bits) + energy.rx_cost(packet_bits)
    ack_exchange = energy.tx_cost(ack_bits) + energy.rx_cost(ack_bits)
    # Every attempt pays the data cost; only the final (successful) one
    # is followed by a decoded ACK, but the receiver ACKs every correct
    # reception — with loss-free ACKs, exactly one ACK happens.
    return attempts * per_attempt + ack_exchange


def expected_energy_per_delivered_fd(
    loss_probability: float,
    packet_bits: int,
    asymmetry_ratio: int,
    detection_latency_bits: int,
    energy: EnergyModel,
) -> float:
    """Expected energy [J] per delivered packet under full-duplex early
    abort (uniform corruption onset)."""
    check_probability("loss_probability", loss_probability)
    if packet_bits <= 0:
        raise ValueError("packet_bits must be positive")
    attempts = expected_attempts(loss_probability)
    saved = expected_abort_savings_fraction(
        asymmetry_ratio, detection_latency_bits, packet_bits
    )
    failed_bits = packet_bits * (1.0 - saved)
    fb_per_bit = energy.feedback_bit_joule / asymmetry_ratio
    cost_success = (
        energy.tx_cost(packet_bits)
        + energy.rx_cost(packet_bits)
        + fb_per_bit * packet_bits
    )
    cost_failure = (
        energy.tx_cost(1) * failed_bits
        + energy.rx_cost(1) * failed_bits
        + fb_per_bit * failed_bits
    )
    failures = attempts - 1.0
    return cost_success + failures * cost_failure


def goodput_ratio_fd_over_hd(
    loss_probability: float,
    packet_bits: int,
    ack_bits: int,
    turnaround_bits: int,
    asymmetry_ratio: int,
    detection_latency_bits: int,
) -> float:
    """Closed-form goodput ratio of FD-abort over HD-ARQ on a saturated
    single link (airtime renewal argument)."""
    check_probability("loss_probability", loss_probability)
    attempts = expected_attempts(loss_probability)
    saved = expected_abort_savings_fraction(
        asymmetry_ratio, detection_latency_bits, packet_bits
    )
    hd_time = attempts * (packet_bits + turnaround_bits + ack_bits)
    fd_time = (
        packet_bits
        + asymmetry_ratio  # trailing ACK slot
        + (attempts - 1.0) * packet_bits * (1.0 - saved)
    )
    return hd_time / fd_time
