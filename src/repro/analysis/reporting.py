"""Plain-text report formatting for benchmark output."""

from __future__ import annotations


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Fixed-width aligned table, ready to print.

    Numeric cells are right-aligned, text cells left-aligned; floats are
    trimmed to 4 significant digits (scientific for extremes).
    """
    cells = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row, raw in zip(cells, rows):
        parts = []
        for i, cell in enumerate(row):
            if isinstance(raw[i], (int, float)):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        lines.append("  ".join(parts))
    return "\n".join(lines)


def format_series(name: str, xs, ys) -> str:
    """A one-line-per-point series (``x -> y``) block with a title."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {_format_cell(x):>12}  ->  {_format_cell(y)}")
    return "\n".join(lines)


def format_sweep(sweep) -> str:
    """Render a :class:`repro.analysis.sweep.Sweep1D` as a table."""
    return format_table(sweep.header(), sweep.rows())
