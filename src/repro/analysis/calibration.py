"""Simulator calibration invariants.

The reproduction's absolute numbers are only meaningful while three
calibration properties hold (DESIGN.md §6).  This module measures them
so tests and downstream users can verify the operating point instead of
trusting it:

1. **ambient chip-mean stability** — the relative std of per-chip
   ambient-envelope means (the noise floor the receiver integrates
   against) stays in the low single-digit percents;
2. **modulation depth at the design range** — the backscatter on/off
   envelope contrast at 0.5 m exceeds that floor by a healthy factor;
3. **noise margin** — the thermal floor sits far below the ambient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ambient.sources import AmbientSource
from repro.channel.geometry import Scene
from repro.channel.link import ChannelModel
from repro.hardware.reflection import ReflectionStates
from repro.phy.config import PhyConfig
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class CalibrationReport:
    """Measured calibration quantities (all dimensionless ratios).

    Attributes
    ----------
    chip_mean_rel_std:
        Relative std of per-chip ambient means (property 1).
    modulation_depth:
        Fractional envelope-power contrast between reflect and absorb
        states at the probe distance (property 2).
    depth_over_floor:
        ``modulation_depth / chip_mean_rel_std`` — the per-chip decision
        SNR proxy; > 2 means the operating point is healthy.
    ambient_over_noise_db:
        Direct ambient power over thermal noise at the device [dB].
    """

    chip_mean_rel_std: float
    modulation_depth: float
    depth_over_floor: float
    ambient_over_noise_db: float

    def healthy(self) -> bool:
        """The three DESIGN.md calibration properties in one flag."""
        return (
            self.chip_mean_rel_std < 0.08
            and self.depth_over_floor > 2.0
            and self.ambient_over_noise_db > 20.0
        )


def calibration_report(
    phy: PhyConfig,
    source: AmbientSource,
    channel: ChannelModel | None = None,
    probe_distance_m: float = 0.5,
    chips: int = 400,
    rng=None,
) -> CalibrationReport:
    """Measure the calibration invariants of a PHY/source/channel stack."""
    gen = ensure_rng(rng)
    rng_amb, rng_ch = spawn_rngs(gen, 2)
    model = channel if channel is not None else ChannelModel()
    spc = phy.samples_per_chip

    # 1. per-chip ambient stability.
    wave = source.samples(chips * spc, rng_amb)
    power = (wave * wave.conj()).real
    chip_means = power.reshape(chips, spc).mean(axis=1)
    rel_std = float(chip_means.std() / chip_means.mean())

    # 2. modulation depth at the probe distance.
    scene = Scene.two_device_line(device_separation_m=probe_distance_m)
    gains = model.realize(scene, rng_ch)
    states = ReflectionStates()
    n = 64 * spc
    ambient = source.samples(n, rng_amb)
    on = gains.received(
        "bob", ambient, {"alice": np.full(n, states.gamma_for(1))},
        include_noise=False,
    )
    off = gains.received(
        "bob", ambient, {"alice": np.full(n, states.gamma_for(0))},
        include_noise=False,
    )
    p_on = float(np.mean((on * on.conj()).real))
    p_off = float(np.mean((off * off.conj()).real))
    depth = abs(p_on - p_off) / p_off if p_off else 0.0

    # 3. ambient over noise.
    direct = gains.direct_power("bob")
    noise = max(gains.noise_power_watt, 1e-30)
    ambient_over_noise_db = 10.0 * np.log10(direct / noise)

    return CalibrationReport(
        chip_mean_rel_std=rel_std,
        modulation_depth=depth,
        depth_over_floor=(depth / rel_std) if rel_std else float("inf"),
        ambient_over_noise_db=float(ambient_over_noise_db),
    )
