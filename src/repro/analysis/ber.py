"""Monte-Carlo BER / PER measurement over the sample-level link.

Each harness repeatedly runs a :class:`repro.fullduplex.link.FullDuplexLink`
exchange over fresh channel/ambient/noise realisations and tallies
errors.  Trials stop early once both an error budget and a trial floor
are met, so sweeps spend their time on the interesting (low-error)
points without starving the noisy ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.theory import wilson_interval
from repro.channel.geometry import Scene
from repro.channel.link import ChannelModel
from repro.fullduplex.link import FullDuplexLink
from repro.phy.framing import random_frame
from repro.utils.rng import ensure_rng, random_bits, spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BerEstimate:
    """A measured error rate with its sampling uncertainty.

    Attributes
    ----------
    errors / trials:
        Raw tallies (bits for BER, frames for PER).
    """

    errors: int
    trials: int

    @property
    def rate(self) -> float:
        """Point estimate ``errors / trials`` (0 for empty).

        The zero-trials point estimate is a convention, not a
        measurement — :attr:`confidence` returns the vacuous ``(0, 1)``
        interval in that case, so downstream comparisons can detect an
        empty estimate instead of trusting the 0.0.
        """
        return self.errors / self.trials if self.trials else 0.0

    @property
    def confidence(self) -> tuple[float, float]:
        """95 % Wilson interval on the rate (``(0.0, 1.0)`` for empty)."""
        return wilson_interval(self.errors, self.trials)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.confidence
        return f"{self.rate:.3e} [{lo:.2e}, {hi:.2e}] ({self.errors}/{self.trials})"


def _combine(a: BerEstimate, errors: int, trials: int) -> BerEstimate:
    return BerEstimate(errors=a.errors + errors, trials=a.trials + trials)


def measure_forward_ber(
    link: FullDuplexLink,
    channel: ChannelModel,
    scene: Scene,
    bits_per_trial: int = 256,
    min_errors: int = 30,
    max_trials: int = 200,
    min_trials: int = 10,
    feedback_enabled: bool = True,
    rng=None,
) -> BerEstimate:
    """Raw data-direction (A→B) BER over fresh channel realisations.

    ``feedback_enabled=False`` measures the half-duplex baseline on the
    same draws — the F1 comparison arm.
    """
    check_positive("bits_per_trial", bits_per_trial)
    gen = ensure_rng(rng)
    estimate = BerEstimate(0, 0)
    r = link.config.asymmetry_ratio
    for trial in range(max_trials):
        rng_ch, rng_bits, rng_run = spawn_rngs(gen, 3)
        gains = channel.realize(scene, rng_ch)
        data = random_bits(rng_bits, bits_per_trial)
        fb = random_bits(rng_bits, max(1, bits_per_trial // r))
        decoded, _, _ = link.run_raw_bits(
            gains, data, fb, rng=rng_run, feedback_enabled=feedback_enabled
        )
        estimate = _combine(
            estimate, int(np.count_nonzero(decoded != data)), data.size
        )
        if trial + 1 >= min_trials and estimate.errors >= min_errors:
            break
    return estimate


def measure_feedback_ber(
    link: FullDuplexLink,
    channel: ChannelModel,
    scene: Scene,
    bits_per_trial: int = 256,
    min_errors: int = 30,
    max_trials: int = 200,
    min_trials: int = 10,
    rng=None,
) -> BerEstimate:
    """Feedback-direction (B→A) BER over fresh channel realisations."""
    check_positive("bits_per_trial", bits_per_trial)
    gen = ensure_rng(rng)
    estimate = BerEstimate(0, 0)
    r = link.config.asymmetry_ratio
    for trial in range(max_trials):
        rng_ch, rng_bits, rng_run = spawn_rngs(gen, 3)
        gains = channel.realize(scene, rng_ch)
        data = random_bits(rng_bits, bits_per_trial)
        fb = random_bits(rng_bits, max(1, bits_per_trial // r))
        _, fb_sent, fb_decoded = link.run_raw_bits(
            gains, data, fb, rng=rng_run, feedback_enabled=True
        )
        estimate = _combine(
            estimate,
            int(np.count_nonzero(fb_sent != fb_decoded)),
            fb_sent.size,
        )
        if trial + 1 >= min_trials and estimate.errors >= min_errors:
            break
    return estimate


def measure_frame_delivery(
    link: FullDuplexLink,
    channel: ChannelModel,
    scene: Scene,
    payload_bytes: int = 16,
    trials: int = 50,
    feedback_enabled: bool = True,
    rng=None,
) -> BerEstimate:
    """Framed packet-error rate (sync + decode + CRC) — "errors" counts
    undelivered frames."""
    check_positive("trials", trials)
    gen = ensure_rng(rng)
    failures = 0
    for _ in range(trials):
        # One spawned stream per independent draw (channel, frame
        # payload, feedback bits, run noise) — the lane-seeding layout
        # of DESIGN §7.  Sharing one stream between the frame and the
        # feedback would couple the feedback realisation to the payload
        # length.
        rng_ch, rng_frame, rng_fb, rng_run = spawn_rngs(gen, 4)
        gains = channel.realize(scene, rng_ch)
        frame = random_frame(payload_bytes, rng_frame)
        fb_count = max(
            1,
            (payload_bytes * 8 + 64) // link.config.asymmetry_ratio,
        )
        fb = random_bits(rng_fb, fb_count)
        exchange = link.run(
            gains, frame, fb, rng=rng_run, feedback_enabled=feedback_enabled
        )
        ok = exchange.data_delivered and np.array_equal(
            exchange.data_result.frame.payload_bits, frame.payload_bits
        )
        failures += 0 if ok else 1
    return BerEstimate(errors=failures, trials=trials)
