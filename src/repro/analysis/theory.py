"""Closed-form references used to sanity-check the simulators.

None of these *drive* the system — they are independent cross-checks the
tests and benchmarks compare measured results against:

* :func:`q_function` / :func:`ook_envelope_ber` — detection theory for
  on-off keying with an energy detector;
* :func:`aloha_throughput` — the classic unslotted-ALOHA load curve the
  contention simulator should approach for the no-ARQ policy;
* :func:`wilson_interval` — confidence intervals on measured error
  rates, so benches can report uncertainty honestly.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative, check_probability


def q_function(x: float) -> float:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def ook_envelope_ber(separation: float, sigma: float) -> float:
    """BER of binary amplitude levels separated by ``separation`` with
    per-decision Gaussian dispersion ``sigma``, under the differential
    (half-vs-half) decision rule.

    The differential comparison doubles the noise variance, giving
    ``Q(separation / (sigma * sqrt(2)))`` — the reference curve the
    sample-level receiver should approach when the chip-mean statistics
    are near-Gaussian.
    """
    check_non_negative("separation", separation)
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return q_function(separation / (sigma * math.sqrt(2.0)))


def aloha_throughput(offered_load: float) -> float:
    """Unslotted ALOHA success throughput ``S = G · exp(-2G)``.

    ``offered_load`` G and the result are both in packets per packet
    time.  Peaks at ``1/(2e) ≈ 0.184`` at ``G = 0.5``.
    """
    check_non_negative("offered_load", offered_load)
    return offered_load * math.exp(-2.0 * offered_load)


def aloha_success_probability(offered_load: float) -> float:
    """Probability an unslotted-ALOHA attempt escapes collision,
    ``exp(-2G)``."""
    check_non_negative("offered_load", offered_load)
    return math.exp(-2.0 * offered_load)


def wilson_interval(
    errors: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at 0 and small counts, which BER measurements hit
    constantly.  Returns ``(low, high)``.
    """
    if trials < 0 or errors < 0 or errors > trials:
        raise ValueError("need 0 <= errors <= trials")
    if trials == 0:
        return 0.0, 1.0
    p = errors / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def wilson_halfwidth(errors: int, trials: int, z: float = 1.96) -> float:
    """Half the width of the Wilson interval — the ``±`` precision.

    The adaptive campaign scheduler's convergence measure: a grid cell
    is "precise to ±p" once ``wilson_halfwidth(k, n) <= p``.
    """
    low, high = wilson_interval(errors, trials, z)
    return 0.5 * (high - low)


def expected_abort_savings_fraction(
    asymmetry_ratio: int,
    detection_latency_bits: int,
    packet_bits: int,
) -> float:
    """Expected fraction of a *doomed* packet's bits saved by early abort,
    for a corruption onset uniform over the packet.

    For onset ``u``, the sender stops at
    ``(floor((u + L)/r) + 2) · r`` (or never, when that passes the end).
    Averaging the saved fraction ``max(0, 1 - stop/packet)`` over uniform
    ``u`` gives this closed form's numerical evaluation — the F4 bench
    compares the simulator against it.
    """
    check_non_negative("detection_latency_bits", detection_latency_bits)
    if asymmetry_ratio <= 0 or packet_bits <= 0:
        raise ValueError("asymmetry_ratio and packet_bits must be positive")
    r = asymmetry_ratio
    total_saved = 0.0
    for onset in range(packet_bits):
        stop = (math.floor((onset + detection_latency_bits) / r) + 2) * r
        if stop < packet_bits:
            total_saved += 1.0 - stop / packet_bits
    return total_saved / packet_bits


def check_probability_valid(p: float) -> None:
    """Raise unless ``p`` is a probability (re-exported convenience)."""
    check_probability("p", p)
