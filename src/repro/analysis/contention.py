"""Aggregation of replicated MAC contention runs.

A MAC experiment is a table of flattened
:class:`~repro.mac.metrics.NetworkMetrics` records (one per seeded
replication, see :mod:`repro.experiments.mac`).  This module reduces
such a table to one :class:`ContentionSummary`: every ratio is
recomputed from the pooled counts — the estimator a mean of per-trial
ratios only approximates — and the delivery ratio carries its 95 %
Wilson interval over the pooled packet count, so benchmark tables can
state how sure they are before declaring one policy arm the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.theory import wilson_interval


@dataclass(frozen=True)
class ContentionSummary:
    """Pooled statistics of one scenario × policy arm.

    Attributes
    ----------
    trials:
        Replications pooled.
    offered_packets / delivered_packets / attempts / aborted_attempts:
        Pooled counts across replications.
    goodput_bps:
        Mean delivered payload rate per replication.
    delivery_ratio / delivery_lo / delivery_hi:
        Pooled delivered / offered with its 95 % Wilson bounds.
    mean_latency_seconds:
        Pooled latency sum over pooled deliveries (delivery-weighted,
        not a mean of per-trial means).
    energy_per_delivered_bit:
        Pooled energy over pooled delivered payload bits (0.0 when
        nothing was delivered).
    abort_fraction:
        Pooled aborted / attempted.
    """

    trials: int
    offered_packets: int
    delivered_packets: int
    attempts: int
    aborted_attempts: int
    goodput_bps: float
    delivery_ratio: float
    delivery_lo: float
    delivery_hi: float
    mean_latency_seconds: float
    energy_per_delivered_bit: float
    abort_fraction: float

    def to_record(self) -> dict:
        """Flat dict form (one sweep-point / benchmark-table row)."""
        return {
            "offered_packets": self.offered_packets,
            "delivered_packets": self.delivered_packets,
            "goodput_bps": self.goodput_bps,
            "delivery_ratio": self.delivery_ratio,
            "delivery_lo": self.delivery_lo,
            "delivery_hi": self.delivery_hi,
            "mean_latency_seconds": self.mean_latency_seconds,
            "energy_per_delivered_bit": self.energy_per_delivered_bit,
            "abort_fraction": self.abort_fraction,
        }


def summarize_mac_table(table) -> ContentionSummary:
    """Reduce a MAC trial :class:`~repro.experiments.results.ResultTable`
    (or any object with its ``column``/``__len__`` interface) to a
    :class:`ContentionSummary`.
    """
    trials = len(table)
    offered = int(sum(table.column("offered_packets"))) if trials else 0
    delivered = int(sum(table.column("delivered_packets"))) if trials else 0
    attempts = int(sum(table.column("attempts"))) if trials else 0
    aborted = int(sum(table.column("aborted_attempts"))) if trials else 0
    latency_sum = sum(table.column("latency_sum_seconds")) if trials else 0.0
    payload_bits = (
        int(sum(table.column("payload_bits_delivered"))) if trials else 0
    )
    energy = sum(table.column("total_energy_joule")) if trials else 0.0
    goodput = (
        sum(table.column("goodput_bps")) / trials if trials else 0.0
    )
    lo, hi = wilson_interval(delivered, offered)
    return ContentionSummary(
        trials=trials,
        offered_packets=offered,
        delivered_packets=delivered,
        attempts=attempts,
        aborted_attempts=aborted,
        goodput_bps=goodput,
        delivery_ratio=delivered / offered if offered else 0.0,
        delivery_lo=lo,
        delivery_hi=hi,
        mean_latency_seconds=latency_sum / delivered if delivered else 0.0,
        energy_per_delivered_bit=energy / payload_bits if payload_bits else 0.0,
        abort_fraction=aborted / attempts if attempts else 0.0,
    )
