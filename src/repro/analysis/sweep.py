"""Parameter sweeps producing report-ready rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Sweep1D:
    """One-dimensional sweep result.

    Attributes
    ----------
    parameter:
        Swept parameter name (e.g. ``"distance_m"``).
    values:
        Swept values in run order.
    columns:
        Metric name → list of measured values (parallel to ``values``).
    """

    parameter: str
    values: list = field(default_factory=list)
    columns: dict[str, list] = field(default_factory=dict)

    def add_point(self, value, **metrics) -> None:
        """Append one sweep point with its metric values.

        Every point after the first must supply exactly the metric names
        the first point established — a missing or brand-new name would
        leave ragged columns, so both raise :class:`ValueError` before
        any state is mutated.
        """
        if self.columns:
            new = sorted(set(metrics) - set(self.columns))
            if new:
                raise ValueError(
                    f"unknown metric(s) {new} at value {value!r}; "
                    f"the sweep records {sorted(self.columns)}"
                )
            for name in self.columns:
                if name not in metrics:
                    raise ValueError(
                        f"metric {name!r} missing at value {value!r}"
                    )
        self.values.append(value)
        for name, metric in metrics.items():
            self.columns.setdefault(name, []).append(metric)

    def column(self, name: str) -> list:
        """One metric's series across the sweep."""
        return list(self.columns[name])

    def rows(self) -> list[tuple]:
        """``(value, *metrics)`` tuples in column order, for tables."""
        names = list(self.columns)
        return [
            (v, *(self.columns[n][i] for n in names))
            for i, v in enumerate(self.values)
        ]

    def header(self) -> list[str]:
        """Column headers matching :meth:`rows`."""
        return [self.parameter, *self.columns.keys()]


def sweep1d(
    parameter: str,
    values,
    fn: Callable[[object], dict],
) -> Sweep1D:
    """Evaluate ``fn(value) -> {metric: number}`` at each value."""
    sweep = Sweep1D(parameter=parameter)
    for value in values:
        sweep.add_point(value, **fn(value))
    return sweep
