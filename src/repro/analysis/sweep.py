"""Legacy sweep shim, re-platformed on :class:`ResultTable`.

:class:`Sweep1D` predates the experiments API; since the result store
landed there is exactly one table shape in the codebase —
:class:`repro.experiments.results.ResultTable` — and this module keeps
the historical sweep interface alive as a thin veneer over it.  Every
``Sweep1D`` *is* a ``ResultTable`` underneath (``.table``), so existing
consumers keep working while new code should use
:meth:`ExperimentRunner.sweep <repro.experiments.runner.ExperimentRunner.sweep>`
or build tables directly.

Both entry points emit :class:`DeprecationWarning`; the shim (not the
behaviour) is scheduled to go once nothing in-tree constructs one.
"""

from __future__ import annotations

import warnings
from typing import Callable

from repro.experiments.results import ResultTable

_DEPRECATION = (
    "Sweep1D is deprecated: it is now a shim over "
    "repro.experiments.results.ResultTable (the single table shape); "
    "use ExperimentRunner.sweep or ResultTable directly"
)


class Sweep1D:
    """One-dimensional sweep result (legacy interface).

    Attributes
    ----------
    parameter:
        Swept parameter name (e.g. ``"distance_m"``).
    table:
        The backing :class:`ResultTable`: one record per sweep point,
        first column the parameter, metadata carrying ``parameter``.
    values / columns:
        The historical views, derived from ``table``: swept values in
        run order, and metric name → list of measured values.  These
        are read-only *snapshots* now — mutate via :meth:`add_point`
        (or the table), not by appending to the returned lists.

    The historical dataclass fields ``values=``/``columns=`` are still
    accepted by the constructor (they seed the backing table).
    """

    def __init__(
        self,
        parameter: str,
        table: ResultTable | None = None,
        values=None,
        columns=None,
    ):
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        if table is not None and (values is not None or columns is not None):
            raise TypeError(
                "pass either table or the legacy values/columns, not both"
            )
        self.parameter = parameter
        if table is None:
            table = ResultTable(metadata={"parameter": parameter})
            for i, value in enumerate(values or []):
                table.append(
                    {
                        parameter: value,
                        **{
                            name: series[i]
                            for name, series in (columns or {}).items()
                        },
                    }
                )
        elif table.columns and table.columns[0] != parameter:
            raise ValueError(
                f"table's first column is {table.columns[0]!r}, "
                f"expected the swept parameter {parameter!r}"
            )
        self.table = table

    # -- the historical views ------------------------------------------------

    @property
    def values(self) -> list:
        """Swept values in run order."""
        if not self.table.columns:
            return []
        return self.table.column(self.parameter)

    @property
    def columns(self) -> dict[str, list]:
        """Metric name → list of measured values (parallel to values)."""
        return {
            name: self.table.column(name)
            for name in self.table.columns
            if name != self.parameter
        }

    # -- the historical interface --------------------------------------------

    def add_point(self, value, **metrics) -> None:
        """Append one sweep point with its metric values.

        Every point after the first must supply exactly the metric names
        the first point established — a missing or brand-new name would
        leave ragged columns, so both raise :class:`ValueError` before
        any state is mutated (the same contract ``ResultTable.append``
        enforces, with the sweep's historical messages).
        """
        if self.parameter in metrics:
            # The record is one flat dict, so a metric named after the
            # swept parameter would overwrite the swept value (the old
            # dataclass "accepted" this but produced duplicate headers
            # and misaligned rows).
            raise ValueError(
                f"metric name {self.parameter!r} collides with the "
                "swept parameter"
            )
        if self.table.columns:
            known = set(self.table.columns) - {self.parameter}
            new = sorted(set(metrics) - known)
            if new:
                raise ValueError(
                    f"unknown metric(s) {new} at value {value!r}; "
                    f"the sweep records {sorted(known)}"
                )
            for name in known:
                if name not in metrics:
                    raise ValueError(
                        f"metric {name!r} missing at value {value!r}"
                    )
        self.table.append({self.parameter: value, **metrics})

    def column(self, name: str) -> list:
        """One metric's series across the sweep."""
        if name == self.parameter:
            raise KeyError(name)
        return self.table.column(name)

    def rows(self) -> list[tuple]:
        """``(value, *metrics)`` tuples in column order, for tables."""
        return self.table.rows()

    def header(self) -> list[str]:
        """Column headers matching :meth:`rows`."""
        if not self.table.columns:
            return [self.parameter]
        return list(self.table.columns)


def sweep1d(
    parameter: str,
    values,
    fn: Callable[[object], dict],
) -> Sweep1D:
    """Evaluate ``fn(value) -> {metric: number}`` at each value.

    Deprecated with :class:`Sweep1D`; new code should call
    :meth:`ExperimentRunner.sweep
    <repro.experiments.runner.ExperimentRunner.sweep>` or append to a
    :class:`~repro.experiments.results.ResultTable` directly.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        sweep = Sweep1D(parameter=parameter)
    warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
    for value in values:
        sweep.add_point(value, **fn(value))
    return sweep
