"""Generic Monte-Carlo trial plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_positive

T = TypeVar("T")


@dataclass(frozen=True)
class TrialSummary:
    """Collected trial outputs plus bookkeeping."""

    results: list
    trials: int


def run_trials(
    fn: Callable[[object], T],
    trials: int,
    rng=None,
    stop_when: Callable[[list[T]], bool] | None = None,
) -> TrialSummary:
    """Run ``fn(trial_rng)`` up to ``trials`` times with independent
    generators.

    ``stop_when(results)`` — checked after each trial — allows error-
    budget early exit.  Results arrive in trial order.
    """
    check_positive("trials", trials)
    gen = ensure_rng(rng)
    rngs = spawn_rngs(gen, trials)
    results: list[T] = []
    for trial_rng in rngs:
        results.append(fn(trial_rng))
        if stop_when is not None and stop_when(results):
            break
    return TrialSummary(results=results, trials=len(results))


def mean_and_stderr(values) -> tuple[float, float]:
    """Sample mean and standard error of a sequence of floats."""
    import math

    xs = [float(v) for v in values]
    n = len(xs)
    if n == 0:
        return 0.0, 0.0
    mean = sum(xs) / n
    if n == 1:
        return mean, 0.0
    var = sum((x - mean) ** 2 for x in xs) / (n - 1)
    return mean, math.sqrt(var / n)
