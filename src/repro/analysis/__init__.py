"""Measurement harnesses, theory references and report formatting.

* :mod:`repro.analysis.ber` — Monte-Carlo BER/PER measurement over the
  sample-level link;
* :mod:`repro.analysis.montecarlo` — generic trial runners with error
  budgets;
* :mod:`repro.analysis.sweep` — parameter sweeps producing table rows;
* :mod:`repro.analysis.contention` — pooled summaries of replicated MAC
  contention runs, with Wilson bounds on delivery;
* :mod:`repro.analysis.theory` — closed-form references (Q function,
  envelope-detection BER, ALOHA throughput, Wilson intervals) used to
  sanity-check the simulators;
* :mod:`repro.analysis.throughput` — closed-form protocol economics
  (expected energy / airtime per delivered packet) cross-checking the
  event simulator;
* :mod:`repro.analysis.reporting` — plain-text tables the benchmarks
  print.
"""

from repro.analysis.ber import (
    BerEstimate,
    measure_feedback_ber,
    measure_forward_ber,
    measure_frame_delivery,
)
from repro.analysis.contention import ContentionSummary, summarize_mac_table
from repro.analysis.montecarlo import run_trials
from repro.analysis.reporting import format_series, format_table
from repro.analysis.sweep import Sweep1D, sweep1d
from repro.analysis.theory import (
    aloha_throughput,
    ook_envelope_ber,
    q_function,
    wilson_interval,
)
from repro.analysis.throughput import (
    expected_energy_per_delivered_fd,
    expected_energy_per_delivered_hd,
    goodput_ratio_fd_over_hd,
)

__all__ = [
    "BerEstimate",
    "ContentionSummary",
    "Sweep1D",
    "aloha_throughput",
    "expected_energy_per_delivered_fd",
    "expected_energy_per_delivered_hd",
    "format_series",
    "format_table",
    "goodput_ratio_fd_over_hd",
    "measure_feedback_ber",
    "measure_forward_ber",
    "measure_frame_delivery",
    "ook_envelope_ber",
    "q_function",
    "run_trials",
    "summarize_mac_table",
    "sweep1d",
    "wilson_interval",
]
