"""Vectorized Monte-Carlo trials: N lanes of one scenario per call.

This module is the ``backend="vectorized"`` implementation behind
:class:`~repro.experiments.runner.ExperimentRunner`.  A *batched trial
function* takes a spec and a list of per-trial
:class:`numpy.random.SeedSequence` children and returns one record per
child — the same records, in the same order, as calling the scalar
trial function once per child.

Lane-seeding contract
---------------------
Lane ``i`` consumes exactly the child streams the scalar path derives
for trial ``i``:

1. the runner spawns one ``SeedSequence`` child per trial index from
   the root seed (identical for every backend);
2. each lane materialises ``default_rng(child)`` and splits it into the
   scalar trial's (channel, bits, run) generators with
   :func:`repro.utils.rng.spawn_rngs`;
3. every random draw (fading, payload bits, ambient coefficients,
   front-end noise) happens per lane, from the lane's own generator, in
   the scalar order — only the *deterministic* synthesis and DSP between
   the draws is batched (see :mod:`repro.fullduplex.batch`).

For the sample-level trial kinds (the BER pair, frame delivery and the
energy exchange) the batched kernels are bitwise identical to their
scalar counterparts, so ``backend="vectorized"`` reproduces
``backend="serial"`` records exactly.  The ``mac`` kind runs on the
slotted contention engine (:mod:`repro.mac.batch`), whose slot
quantisation makes it *statistically* rather than bitwise equivalent —
see DESIGN §7 for the contract.  ``tests/test_batch_equivalence.py``
enforces both, and ``benchmarks/bench_f7_batch_speedup.py`` /
``benchmarks/bench_m1_contention.py`` track the speedups.

Custom trials can join the fast path with
:func:`register_batched_trial`, pairing a scalar ``trial(spec, rng)``
with a batched ``batch(spec, children)`` implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from repro import obs
from repro.experiments.mac import mac_trial
from repro.experiments.runner import (
    BITS_PER_TRIAL,
    _stack_for,
    energy_trial,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
)
from repro.experiments.spec import ScenarioSpec
from repro.fullduplex.batch import BatchFullDuplexEngine
from repro.fullduplex.link import DATA_PILOT_BITS
from repro.mac.batch import SlottedMacEngine
from repro.phy import coding as lc
from repro.utils.rng import ensure_rng, random_bits, spawn_rngs

#: Upper bound on cached engines per process (each cache separately).
#: A campaign grid can visit hundreds of distinct specs; every engine
#: pins a built stack, so the caches evict least-recently-used entries
#: past this cap instead of growing without limit.
MAX_CACHED_ENGINES = 32

#: Per-process LRU cache of batched PHY engines, keyed by the spec.
_ENGINE_CACHE: OrderedDict[ScenarioSpec, BatchFullDuplexEngine] = (
    OrderedDict()
)

#: Per-process LRU cache of slotted MAC engines, keyed by the spec.
_MAC_ENGINE_CACHE: OrderedDict[ScenarioSpec, SlottedMacEngine] = (
    OrderedDict()
)


def _cached_engine(
    cache: OrderedDict, spec: ScenarioSpec, build: Callable,
    label: str = "engine",
):
    """LRU lookup: build on miss, refresh on hit, evict past the cap."""
    engine = cache.get(spec)
    if engine is None:
        with obs.span(f"batch.{label}.build"):
            engine = build(spec)
        cache[spec] = engine
        obs.inc(f"batch.{label}.build")
    else:
        cache.move_to_end(spec)
        obs.inc(f"batch.{label}.hit")
    while len(cache) > MAX_CACHED_ENGINES:
        cache.popitem(last=False)
        obs.inc(f"batch.{label}.evict")
    return engine


def _engine_for(spec: ScenarioSpec) -> BatchFullDuplexEngine:
    """Build (or reuse) the batched engine for ``spec`` in this process.

    The underlying stack comes from the runner's own cache, so scalar
    and batched trials of one spec share a single built stack (and the
    ambient source's amortised synthesis state).
    """
    return _cached_engine(
        _ENGINE_CACHE,
        spec,
        lambda s: BatchFullDuplexEngine(link=_stack_for(s).link),
        label="phy_engine",
    )


def _mac_engine_for(spec: ScenarioSpec) -> SlottedMacEngine:
    """Build (or reuse) the slotted MAC engine for ``spec``."""
    return _cached_engine(
        _MAC_ENGINE_CACHE, spec, SlottedMacEngine, label="mac_engine"
    )


def _lane_streams(children, count: int = 3) -> tuple[list, ...]:
    """Each child sequence → the scalar trial's ``count`` generators.

    The raw-bit trials spawn three streams per trial; the framed trial
    spawns four (channel, frame, feedback, run).
    """
    streams: tuple[list, ...] = tuple([] for _ in range(count))
    for child in children:
        rng = ensure_rng(child)
        for lane, gen in zip(streams, spawn_rngs(rng, count)):
            lane.append(gen)
    return streams


def _stage_raw_exchange(spec, children, need_data: bool, need_feedback: bool):
    """Shared staging + decode of the unframed BER exchange.

    Mirrors ``forward_ber_trial`` / ``feedback_ber_trial``: both scalar
    trials perform the identical draws and staging and differ only in
    which direction they tally, so one batched staging serves both —
    the direction not asked for is skipped (its decode is deterministic
    and its noise generator is private, so skipping cannot perturb the
    records).
    """
    stack = _stack_for(spec)
    engine = _engine_for(spec)
    rng_ch, rng_bits, rng_run = _lane_streams(children)
    gains = stack.channel.realize_batch(stack.scene, rng_ch)
    data = np.stack([random_bits(r, BITS_PER_TRIAL) for r in rng_bits])
    fb = np.stack(
        [
            random_bits(r, max(1, BITS_PER_TRIAL // spec.asymmetry_ratio))
            for r in rng_bits
        ]
    )
    pilot = DATA_PILOT_BITS
    stream = np.concatenate(
        [np.tile(pilot, (len(children), 1)), data], axis=1
    )
    chips = lc.encode_batch(stream, stack.config.phy.coding)
    waves = np.repeat(chips, stack.config.phy.samples_per_chip, axis=1)
    staged = engine.stage(
        gains, waves, fb, feedback_enabled=True, rngs=rng_run,
        need_a=need_feedback, need_b=need_data,
    )
    decoded_data = None
    if need_data:
        decoded_stream = engine.decode_aligned_bits(
            staged, stream.shape[1], pilot, feedback_enabled=True
        )
        decoded_data = decoded_stream[:, pilot.size :]
    fb_sent = fb_decoded = None
    if need_feedback:
        fb_sent, fb_decoded = engine.decode_feedback(
            staged, feedback_enabled=True
        )
    return data, decoded_data, fb_sent, fb_decoded


def batch_forward_ber_trials(spec: ScenarioSpec, children) -> list[dict]:
    """Batched :func:`~repro.experiments.runner.forward_ber_trial`."""
    children = list(children)
    if not children:
        return []
    data, decoded, _, _ = _stage_raw_exchange(
        spec, children, need_data=True, need_feedback=False
    )
    errors = np.count_nonzero(decoded != data, axis=1)
    bits = int(data.shape[1])
    return [
        {"errors": int(e), "bits": bits, "ber": int(e) / bits}
        for e in errors
    ]


def batch_feedback_ber_trials(spec: ScenarioSpec, children) -> list[dict]:
    """Batched :func:`~repro.experiments.runner.feedback_ber_trial`."""
    children = list(children)
    if not children:
        return []
    _, _, fb_sent, fb_decoded = _stage_raw_exchange(
        spec, children, need_data=False, need_feedback=True
    )
    errors = np.count_nonzero(fb_sent != fb_decoded, axis=1)
    bits = int(fb_sent.shape[1])
    return [
        {
            "errors": int(e),
            "bits": bits,
            "ber": int(e) / bits if bits else 0.0,
        }
        for e in errors
    ]


def batch_frame_delivery_trials(spec: ScenarioSpec, children) -> list[dict]:
    """Batched :func:`~repro.experiments.runner.frame_delivery_trial`.

    Synthesis, channel composition and staging are batched; preamble
    acquisition and frame parsing stay per lane (sync is data-dependent
    control flow), running the scalar receiver on each staged lane.
    """
    from repro.phy.framing import random_frame
    from repro.phy.receiver import BackscatterReceiver
    from repro.phy.transmitter import BackscatterTransmitter

    children = list(children)
    if not children:
        return []
    stack = _stack_for(spec)
    engine = _engine_for(spec)
    rng_ch, rng_frame, rng_fb, rng_run = _lane_streams(children, 4)
    gains = stack.channel.realize_batch(stack.scene, rng_ch)
    payload_bytes = 16
    frames = [random_frame(payload_bytes, r) for r in rng_frame]
    fb = np.stack(
        [
            random_bits(
                r,
                max(1, (payload_bytes * 8 + 64) // spec.asymmetry_ratio),
            )
            for r in rng_fb
        ]
    )
    phy = stack.config.phy
    tx = BackscatterTransmitter(phy, states=stack.link.states_a)
    waves = np.stack([tx.transmit(f).chip_waveform for f in frames])
    staged = engine.stage(
        gains, waves, fb, feedback_enabled=True, rngs=rng_run,
        need_a=False, need_b=True,
    )
    rx = BackscatterReceiver(
        phy,
        states=stack.link.states_b,
        self_compensation=stack.config.self_compensation,
    )
    records = []
    for lane, frame in enumerate(frames):
        result = rx.receive_frame(
            staged.incident_b[lane], own_chip_waveform=staged.chips_b[lane]
        )
        ok = result.delivered and np.array_equal(
            result.frame.payload_bits, frame.payload_bits
        )
        records.append(
            {"errors": 0 if ok else 1, "bits": 1,
             "delivered": 1.0 if ok else 0.0}
        )
    return records


def batch_energy_trials(spec: ScenarioSpec, children) -> list[dict]:
    """Batched :func:`~repro.experiments.runner.energy_trial` (bitwise).

    Same staging as :func:`batch_frame_delivery_trials` but with *both*
    antennas' incident fields composed (the harvest books need A's side
    too), then the scalar receive chain and the deterministic energy
    accounting per lane — record-for-record identical to the scalar
    trial.
    """
    from repro.hardware.energy import EnergyModel
    from repro.phy.framing import build_frame, random_frame
    from repro.phy.receiver import BackscatterReceiver
    from repro.phy.transmitter import BackscatterTransmitter

    children = list(children)
    if not children:
        return []
    stack = _stack_for(spec)
    engine = _engine_for(spec)
    rng_ch, rng_frame, rng_fb, rng_run = _lane_streams(children, 4)
    gains = stack.channel.realize_batch(stack.scene, rng_ch)
    payload_bytes = 16
    frames = [random_frame(payload_bytes, r) for r in rng_frame]
    fb = np.stack(
        [
            random_bits(
                r,
                max(1, (payload_bytes * 8 + 64) // spec.asymmetry_ratio),
            )
            for r in rng_fb
        ]
    )
    phy = stack.config.phy
    tx = BackscatterTransmitter(phy, states=stack.link.states_a)
    waves = np.stack([tx.transmit(f).chip_waveform for f in frames])
    staged = engine.stage(
        gains, waves, fb, feedback_enabled=True, rngs=rng_run,
        need_a=True, need_b=True,
    )
    rx_b = BackscatterReceiver(
        phy,
        states=stack.link.states_b,
        self_compensation=stack.config.self_compensation,
    )
    rx_a = BackscatterReceiver(phy, states=stack.link.states_a)
    model = EnergyModel()
    records = []
    for lane, frame in enumerate(frames):
        result = rx_b.receive_frame(
            staged.incident_b[lane], own_chip_waveform=staged.chips_b[lane]
        )
        ok = result.delivered and np.array_equal(
            result.frame.payload_bits, frame.payload_bits
        )
        harvested_a = rx_a.front_end.harvested_energy(
            staged.incident_a[lane], staged.chips_a[lane]
        )
        harvested_b = rx_b.front_end.harvested_energy(
            staged.incident_b[lane], staged.chips_b[lane]
        )
        air_bits = int(build_frame(frame, phy.warmup_bits).size)
        records.append({
            "delivered": 1.0 if ok else 0.0,
            "harvested_a_joule": float(harvested_a),
            "harvested_b_joule": float(harvested_b),
            "tx_energy_joule": float(model.tx_cost(air_bits)),
            "airtime_seconds": air_bits / spec.bit_rate_bps,
        })
    return records


def batch_mac_trials(spec: ScenarioSpec, children) -> list[dict]:
    """Batched :func:`~repro.experiments.mac.mac_trial` (statistical).

    Runs whole chunks of contention replications on the slotted engine
    (:class:`repro.mac.batch.SlottedMacEngine`).  Offered workloads are
    bit-identical to the serial trials'; delivery/abort/energy dynamics
    are statistically equivalent under the slot-quantisation contract
    documented in DESIGN §7 and pinned by the golden suite.
    """
    children = list(children)
    if not children:
        return []
    return _mac_engine_for(spec).run_chunk(children)


# The slot loop's per-iteration cost is amortised across lanes, so the
# MAC batch wants far more lanes per call than the sample-level trials
# (whose memory footprint per lane is a full waveform window).
batch_mac_trials.preferred_chunk = 512


#: Scalar trial function → batched implementation.
_BATCH_TRIALS: dict[Callable, Callable] = {
    forward_ber_trial: batch_forward_ber_trials,
    feedback_ber_trial: batch_feedback_ber_trials,
    frame_delivery_trial: batch_frame_delivery_trials,
    energy_trial: batch_energy_trials,
    mac_trial: batch_mac_trials,
}


def register_batched_trial(trial: Callable, batch: Callable) -> None:
    """Pair a scalar trial with its ``batch(spec, children)`` fast path."""
    _BATCH_TRIALS[trial] = batch


def batched_trial_for(trial: Callable) -> Callable:
    """The batched implementation backing ``trial``, or a clear error."""
    batch = _BATCH_TRIALS.get(trial)
    if batch is None:
        known = sorted(fn.__name__ for fn in _BATCH_TRIALS)
        raise ValueError(
            "no batched implementation registered for "
            f"{getattr(trial, '__name__', trial)!r}; register one with "
            "register_batched_trial() or use backend='serial'/'parallel' "
            f"(batched trials: {known})"
        )
    return batch
