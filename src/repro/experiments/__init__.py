"""Declarative experiment layer: scenarios, presets and trial runners.

Every consumer of the library needs the same four objects wired
together — a :class:`~repro.fullduplex.config.FullDuplexConfig`, a
:class:`~repro.fullduplex.link.FullDuplexLink`, a
:class:`~repro.channel.link.ChannelModel` and a
:class:`~repro.channel.geometry.Scene` — and most measurements are the
same shape: many independent Monte-Carlo trials over that stack.  This
package owns both halves:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec`, one declarative
  record that builds the whole stack and round-trips through JSON;
* :mod:`repro.experiments.registry` — named presets (``"calibrated-
  default"``, ``"rayleigh-mobile"``, …) registered via decorator;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, a
  reproducible Monte-Carlo trial driver (serial, parallel or
  vectorized) with adaptive stopping;
* :mod:`repro.experiments.batch` — the vectorized backend: batched
  trial implementations that run whole seed chunks as stacked numpy
  arrays, bit-for-bit equal to the scalar path;
* :mod:`repro.experiments.mac` — MAC contention as a replicated trial
  kind: :func:`mac_trial` runs one seeded
  :class:`~repro.mac.simulator.NetworkSimulator` replication per trial
  under the scenario's ``mac_policy`` arm, :func:`run_mac_arms` pairs
  policy arms on one seed, and :func:`mac_aggregate` pools records with
  Wilson bounds on delivery;
* :mod:`repro.experiments.results` — :class:`ResultTable`, the records
  + metadata container every runner returns.

Quickstart::

    from repro.experiments import ExperimentRunner, get_scenario
    from repro.experiments.runner import forward_ber_trial

    spec = get_scenario("calibrated-default").replace(distance_m=1.0)
    runner = ExperimentRunner(trial=forward_ber_trial, max_trials=20,
                              workers=4)
    table = runner.run(spec, seed=0)
    print(table.format())
"""

from repro.experiments.mac import (
    build_mac_policy,
    mac_aggregate,
    mac_trial,
    run_mac_arms,
)
from repro.experiments.registry import (
    get_scenario,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    BACKENDS,
    ExperimentRunner,
    ber_aggregate,
    energy_aggregate,
    energy_trial,
    error_budget,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
    precision_budget,
)
from repro.experiments.spec import (
    MAC_POLICY_KINDS,
    ScenarioSpec,
    ScenarioStack,
)

#: Metric name → standard trial function.  This is the vocabulary the
#: CLI (``--metric``), the campaign layer (``kinds=``) and the result
#: store (trial-kind component of the content address) all share — a
#: kind name must stay stable once results are cached under it.
TRIAL_KINDS = {
    "forward-ber": forward_ber_trial,
    "feedback-ber": feedback_ber_trial,
    "frame-delivery": frame_delivery_trial,
    "energy": energy_trial,
    "mac": mac_trial,
}

#: Metric name → table aggregate producing one report record.  The BER
#: kinds pool error/bit tallies exactly; ``mac`` pools packet counts
#: with Wilson bounds; ``energy`` derives the duty-cycle economics.
TRIAL_AGGREGATES = {
    "forward-ber": ber_aggregate,
    "feedback-ber": ber_aggregate,
    "frame-delivery": ber_aggregate,
    "energy": energy_aggregate,
    "mac": mac_aggregate,
}

#: Re-exported lazily: repro.experiments.batch pulls in the full
#: sample-level stack, which consumers that never run the vectorized
#: backend (CLI startup, synthetic-trial runs, pool workers) should not
#: pay to import.
_LAZY_BATCH_EXPORTS = ("batched_trial_for", "register_batched_trial")


def __getattr__(name):
    if name in _LAZY_BATCH_EXPORTS:
        from repro.experiments import batch

        return getattr(batch, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "BACKENDS",
    "MAC_POLICY_KINDS",
    "TRIAL_AGGREGATES",
    "TRIAL_KINDS",
    "ExperimentRunner",
    "ResultTable",
    "ScenarioSpec",
    "ScenarioStack",
    "batched_trial_for",
    "ber_aggregate",
    "build_mac_policy",
    "energy_aggregate",
    "energy_trial",
    "error_budget",
    "feedback_ber_trial",
    "forward_ber_trial",
    "frame_delivery_trial",
    "get_scenario",
    "mac_aggregate",
    "mac_trial",
    "precision_budget",
    "register_batched_trial",
    "register_scenario",
    "run_mac_arms",
    "scenario",
    "scenario_names",
]
