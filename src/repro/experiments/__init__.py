"""Declarative experiment layer: scenarios, presets and trial runners.

Every consumer of the library needs the same four objects wired
together — a :class:`~repro.fullduplex.config.FullDuplexConfig`, a
:class:`~repro.fullduplex.link.FullDuplexLink`, a
:class:`~repro.channel.link.ChannelModel` and a
:class:`~repro.channel.geometry.Scene` — and most measurements are the
same shape: many independent Monte-Carlo trials over that stack.  This
package owns both halves:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec`, one declarative
  record that builds the whole stack and round-trips through JSON;
* :mod:`repro.experiments.registry` — named presets (``"calibrated-
  default"``, ``"rayleigh-mobile"``, …) registered via decorator;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner`, a
  reproducible serial/parallel Monte-Carlo trial driver with adaptive
  stopping;
* :mod:`repro.experiments.results` — :class:`ResultTable`, the records
  + metadata container every runner returns.

Quickstart::

    from repro.experiments import ExperimentRunner, get_scenario
    from repro.experiments.runner import forward_ber_trial

    spec = get_scenario("calibrated-default").replace(distance_m=1.0)
    runner = ExperimentRunner(trial=forward_ber_trial, max_trials=20,
                              workers=4)
    table = runner.run(spec, seed=0)
    print(table.format())
"""

from repro.experiments.registry import (
    get_scenario,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    ExperimentRunner,
    error_budget,
    feedback_ber_trial,
    forward_ber_trial,
    frame_delivery_trial,
)
from repro.experiments.spec import ScenarioSpec, ScenarioStack

__all__ = [
    "ExperimentRunner",
    "ResultTable",
    "ScenarioSpec",
    "ScenarioStack",
    "error_budget",
    "feedback_ber_trial",
    "forward_ber_trial",
    "frame_delivery_trial",
    "get_scenario",
    "register_scenario",
    "scenario",
    "scenario_names",
]
