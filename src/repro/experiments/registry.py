"""Named scenario presets.

A preset is a zero-argument factory returning a
:class:`~repro.experiments.spec.ScenarioSpec`, registered under a name
via the :func:`scenario` decorator.  New workloads are one function
each::

    @scenario("warehouse-aisle")
    def _warehouse_aisle() -> ScenarioSpec:
        return ScenarioSpec(name="warehouse-aisle",
                            description="10 m cluttered aisle",
                            source_pathloss_exponent=3.2, distance_m=2.0)

The registry is the single source of scenario diversity: the CLI's
``scenario list``/``sweep`` subcommands, the benchmarks and the examples
all look their stacks up here instead of hand-wiring them.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.spec import ScenarioSpec

_REGISTRY: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(
    name: str, factory: Callable[[], ScenarioSpec]
) -> None:
    """Register ``factory`` under ``name`` (duplicate names are an error)."""
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} already registered")
    _REGISTRY[name] = factory


def scenario(name: str):
    """Decorator form of :func:`register_scenario`."""

    def decorate(factory: Callable[[], ScenarioSpec]):
        register_scenario(name, factory)
        return factory

    return decorate


def get_scenario(name: str) -> ScenarioSpec:
    """Build the named preset's spec (fresh instance each call)."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    return _REGISTRY[name]()


def scenario_names() -> list[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def describe_scenarios() -> list[tuple[str, str]]:
    """``(name, description)`` rows for every preset, sorted by name."""
    return [(name, get_scenario(name).description) for name in scenario_names()]


# ---------------------------------------------------------------------------
# Built-in presets.  The calibrated default is the operating point every
# benchmark and example historically hand-wired; the rest are the
# deployment scenes the paper's story ranges over.
# ---------------------------------------------------------------------------


@scenario("calibrated-default")
def _calibrated_default() -> ScenarioSpec:
    return ScenarioSpec(
        name="calibrated-default",
        description="canonical operating point: 1 kbps, r=64, 0.5 m, "
        "TV-mux ambient, static channel",
    )


@scenario("near-field")
def _near_field() -> ScenarioSpec:
    return ScenarioSpec(
        name="near-field",
        description="tags almost touching (0.2 m): the high-SNR regime",
        distance_m=0.2,
    )


@scenario("far-edge")
def _far_edge() -> ScenarioSpec:
    return ScenarioSpec(
        name="far-edge",
        description="2.5 m separation: the edge of the operating range",
        distance_m=2.5,
    )


@scenario("rayleigh-mobile")
def _rayleigh_mobile() -> ScenarioSpec:
    return ScenarioSpec(
        name="rayleigh-mobile",
        description="1 m link under Rayleigh block fading (rich "
        "scattering, people moving)",
        distance_m=1.0,
        device_fading="rayleigh",
    )


@scenario("rician-cluttered")
def _rician_cluttered() -> ScenarioSpec:
    return ScenarioSpec(
        name="rician-cluttered",
        description="1 m link with a dominant line of sight plus "
        "clutter (Rician K=4)",
        distance_m=1.0,
        device_fading="rician",
        fading_k_factor=4.0,
    )


@scenario("tone-source")
def _tone_source() -> ScenarioSpec:
    return ScenarioSpec(
        name="tone-source",
        description="constant-envelope illuminator: isolates the "
        "receiver from ambient fluctuation",
        source_kind="tone",
    )


@scenario("slow-robust")
def _slow_robust() -> ScenarioSpec:
    return ScenarioSpec(
        name="slow-robust",
        description="500 bps long-integration point for extended range",
        bit_rate_bps=500.0,
        distance_m=1.5,
    )


@scenario("fast-short-range")
def _fast_short_range() -> ScenarioSpec:
    return ScenarioSpec(
        name="fast-short-range",
        description="4 kbps at 0.3 m: rate-for-range trade, near end",
        bit_rate_bps=4_000.0,
        distance_m=0.3,
    )


@scenario("uncompensated")
def _uncompensated() -> ScenarioSpec:
    return ScenarioSpec(
        name="uncompensated",
        description="self-interference compensation disabled (ablation)",
        self_compensation=False,
    )


@scenario("fine-feedback")
def _fine_feedback() -> ScenarioSpec:
    return ScenarioSpec(
        name="fine-feedback",
        description="asymmetry ratio 16: fast abort decisions, less "
        "feedback averaging gain",
        asymmetry_ratio=16,
    )


@scenario("dense-mac")
def _dense_mac() -> ScenarioSpec:
    return ScenarioSpec(
        name="dense-mac",
        description="24 contending links at high load: the congested "
        "collision domain",
        mac_num_links=24,
        mac_arrival_rate_pps=1.0,
        mac_loss_probability=0.2,
    )


@scenario("sparse-mac")
def _sparse_mac() -> ScenarioSpec:
    return ScenarioSpec(
        name="sparse-mac",
        description="3 lightly-loaded links: collisions rare, channel "
        "loss dominates",
        mac_num_links=3,
        mac_arrival_rate_pps=0.1,
        mac_loss_probability=0.05,
        mac_horizon_seconds=240.0,
    )


@scenario("dense-bursty-mac")
def _dense_bursty_mac() -> ScenarioSpec:
    return ScenarioSpec(
        name="dense-bursty-mac",
        description="16 links near the ALOHA knee with short packets: "
        "collision-dominated contention",
        mac_num_links=16,
        mac_arrival_rate_pps=0.7,
        mac_payload_bytes=32,
        mac_loss_probability=0.05,
    )


@scenario("lossy-channel-mac")
def _lossy_channel_mac() -> ScenarioSpec:
    return ScenarioSpec(
        name="lossy-channel-mac",
        description="moderate contention under 40 % per-attempt channel "
        "loss: the regime where early abort pays most",
        mac_num_links=8,
        mac_arrival_rate_pps=0.3,
        mac_loss_probability=0.4,
    )


@scenario("asymmetric-load-mac")
def _asymmetric_load_mac() -> ScenarioSpec:
    return ScenarioSpec(
        name="asymmetric-load-mac",
        description="12 links with an 8:1 heaviest-to-lightest load "
        "spread: fairness under skewed offered load",
        mac_num_links=12,
        mac_arrival_rate_pps=0.4,
        mac_load_asymmetry=8.0,
        mac_loss_probability=0.1,
    )
