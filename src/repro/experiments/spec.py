"""Declarative scenario description → fully wired simulation stack.

:class:`ScenarioSpec` is one flat, frozen record of every knob a
deployment scene exposes: the ambient excitation, the PHY operating
point, the full-duplex parameters, the propagation environment, the
geometry, and the MAC workload.  ``spec.build()`` turns it into the
stack every measurement consumes; ``to_dict``/``from_dict`` round-trip
it through plain JSON so scenario files, CLI flags and registry presets
all speak the same schema.

Keeping every field a scalar does two jobs: the spec stays hashable
(worker processes cache built stacks per spec) and the JSON form stays
a flat, diffable document.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields

from repro.ambient.sources import (
    AmbientSource,
    FilteredNoiseSource,
    OfdmLikeSource,
    ToneSource,
)
from repro.channel.fading import make_fading
from repro.channel.geometry import Scene
from repro.channel.link import ChannelModel
from repro.channel.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
    TwoRayGroundPathLoss,
)
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.link import FullDuplexLink
from repro.phy.config import PhyConfig
from repro.utils.validation import check_positive

#: Path-loss model kinds accepted by :attr:`ScenarioSpec.source_pathloss`
#: and :attr:`ScenarioSpec.device_pathloss`.
PATHLOSS_KINDS = ("free-space", "log-distance", "two-ray")

#: Ambient source kinds accepted by :attr:`ScenarioSpec.source_kind`.
SOURCE_KINDS = ("ofdm", "tone", "noise")

#: Fading kinds accepted by the two fading fields.
FADING_KINDS = ("static", "rayleigh", "rician")

#: Link-layer policy arms accepted by :attr:`ScenarioSpec.mac_policy`
#: (see :mod:`repro.experiments.mac` for the arm → policy wiring).
MAC_POLICY_KINDS = ("no-arq", "hd-arq", "fd-abort", "fd-resume")


def _make_pathloss(kind: str, exponent: float) -> PathLossModel:
    if kind == "free-space":
        return FreeSpacePathLoss()
    if kind == "log-distance":
        return LogDistancePathLoss(exponent=exponent)
    if kind == "two-ray":
        return TwoRayGroundPathLoss()
    raise ValueError(
        f"unknown pathloss kind {kind!r}; choose from {sorted(PATHLOSS_KINDS)}"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One deployment scenario, declaratively.

    Attributes
    ----------
    name / description:
        Identification, carried into result metadata and reports.
    source_kind:
        Ambient excitation: ``"ofdm"`` (TV-mux-like), ``"tone"``
        (RFID-reader-like carrier) or ``"noise"`` (band-limited noise
        with tunable coherence).
    source_bandwidth_hz:
        Occupied bandwidth of the OFDM-like source.
    source_subcarriers:
        Subcarrier count of the OFDM-like source (calibration dial).
    source_coherence_samples:
        Envelope coherence of the ``"noise"`` source.
    sample_rate_hz / bit_rate_bps / coding:
        PHY operating point (see :class:`repro.phy.config.PhyConfig`).
    asymmetry_ratio / feedback_decode / self_compensation:
        Full-duplex knobs (see
        :class:`repro.fullduplex.config.FullDuplexConfig`).
    source_pathloss / source_pathloss_exponent:
        Large-scale model of the broadcast path; the exponent applies to
        the log-distance model only.
    device_pathloss / device_pathloss_exponent:
        Large-scale model of the tag-to-tag path (exponent likewise
        log-distance-only).
    device_fading / fading_k_factor:
        Small-scale fading of the tag-to-tag path; the K-factor applies
        to Rician only.
    source_power_watt / noise_power_watt:
        Link-budget anchors (ambient EIRP, front-end noise).
    distance_m / source_distance_m:
        Geometry of the canonical two-device line scene.
    mac_num_links / mac_arrival_rate_pps / mac_payload_bytes /
    mac_loss_probability / mac_horizon_seconds / mac_load_asymmetry:
        Protocol-simulator workload (see
        :class:`repro.mac.simulator.SimulationConfig`).
    mac_policy:
        Link-layer policy arm a MAC trial runs (``"no-arq"``,
        ``"hd-arq"``, ``"fd-abort"`` or ``"fd-resume"``); the
        full-duplex arms inherit :attr:`asymmetry_ratio`.
    mac_detection_latency_bits / mac_max_retries:
        Policy knobs: in-reception detector latency of the full-duplex
        arms, and the retry budget of every ARQ arm (``"no-arq"`` never
        retries regardless).
    """

    name: str = "custom"
    description: str = ""
    # -- ambient excitation ------------------------------------------------
    source_kind: str = "ofdm"
    source_bandwidth_hz: float = 200e3
    source_subcarriers: int = 32
    source_coherence_samples: int = 4
    # -- PHY ---------------------------------------------------------------
    sample_rate_hz: float = 256_000.0
    bit_rate_bps: float = 1_000.0
    coding: str = "manchester"
    # -- full duplex -------------------------------------------------------
    asymmetry_ratio: int = 64
    feedback_decode: str = "gated"
    self_compensation: bool = True
    # -- propagation -------------------------------------------------------
    source_pathloss: str = "log-distance"
    source_pathloss_exponent: float = 2.4
    device_pathloss: str = "free-space"
    device_pathloss_exponent: float = 2.7
    device_fading: str = "static"
    fading_k_factor: float = 4.0
    source_power_watt: float = 1.0e3
    noise_power_watt: float = 1.0e-13
    # -- geometry ----------------------------------------------------------
    distance_m: float = 0.5
    source_distance_m: float = 1000.0
    # -- MAC workload ------------------------------------------------------
    mac_num_links: int = 8
    mac_arrival_rate_pps: float = 0.3
    mac_payload_bytes: int = 64
    mac_loss_probability: float = 0.1
    mac_horizon_seconds: float = 120.0
    mac_load_asymmetry: float = 1.0
    mac_policy: str = "fd-abort"
    mac_detection_latency_bits: int = 8
    mac_max_retries: int = 5

    def __post_init__(self) -> None:
        if self.source_kind not in SOURCE_KINDS:
            raise ValueError(
                f"unknown source kind {self.source_kind!r}; "
                f"choose from {sorted(SOURCE_KINDS)}"
            )
        for attr in ("source_pathloss", "device_pathloss"):
            if getattr(self, attr) not in PATHLOSS_KINDS:
                raise ValueError(
                    f"unknown {attr} {getattr(self, attr)!r}; "
                    f"choose from {sorted(PATHLOSS_KINDS)}"
                )
        if self.device_fading not in FADING_KINDS:
            raise ValueError(
                f"unknown device_fading {self.device_fading!r}; "
                f"choose from {sorted(FADING_KINDS)}"
            )
        check_positive("distance_m", self.distance_m)
        check_positive("source_distance_m", self.source_distance_m)
        if not 0.0 <= self.mac_loss_probability <= 1.0:
            raise ValueError("mac_loss_probability must be in [0, 1]")
        check_positive("mac_num_links", self.mac_num_links)
        check_positive("mac_arrival_rate_pps", self.mac_arrival_rate_pps)
        check_positive("mac_payload_bytes", self.mac_payload_bytes)
        check_positive("mac_horizon_seconds", self.mac_horizon_seconds)
        if self.mac_load_asymmetry < 1.0:
            raise ValueError("mac_load_asymmetry must be >= 1.0")
        if self.mac_policy not in MAC_POLICY_KINDS:
            raise ValueError(
                f"unknown mac_policy {self.mac_policy!r}; "
                f"choose from {sorted(MAC_POLICY_KINDS)}"
            )
        if self.mac_detection_latency_bits < 0:
            raise ValueError("mac_detection_latency_bits must be >= 0")
        if self.mac_max_retries < 0:
            raise ValueError("mac_max_retries must be >= 0")
        # Fail fast on PHY / full-duplex knobs: constructing the configs
        # runs their own validation (rate divisibility, even ratio, ...).
        self.build_config()

    # -- derived builders --------------------------------------------------

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def build_phy(self) -> PhyConfig:
        """The PHY configuration this scenario runs at."""
        return PhyConfig(
            sample_rate_hz=self.sample_rate_hz,
            bit_rate_bps=self.bit_rate_bps,
            coding=self.coding,
        )

    def build_config(self) -> FullDuplexConfig:
        """The full-duplex link configuration."""
        return FullDuplexConfig(
            phy=self.build_phy(),
            asymmetry_ratio=self.asymmetry_ratio,
            feedback_decode=self.feedback_decode,
            self_compensation=self.self_compensation,
        )

    def build_source(self) -> AmbientSource:
        """The ambient excitation generator."""
        if self.source_kind == "ofdm":
            return OfdmLikeSource(
                sample_rate_hz=self.sample_rate_hz,
                bandwidth_hz=self.source_bandwidth_hz,
                subcarriers=self.source_subcarriers,
            )
        if self.source_kind == "tone":
            return ToneSource(sample_rate_hz=self.sample_rate_hz)
        return FilteredNoiseSource(
            sample_rate_hz=self.sample_rate_hz,
            coherence_samples=self.source_coherence_samples,
        )

    def build_channel(self) -> ChannelModel:
        """The propagation model (path loss, fading, link budget)."""
        return ChannelModel(
            source_pathloss=_make_pathloss(
                self.source_pathloss, self.source_pathloss_exponent
            ),
            device_pathloss=_make_pathloss(
                self.device_pathloss, self.device_pathloss_exponent
            ),
            device_fading=make_fading(
                self.device_fading,
                **(
                    {"k_factor": self.fading_k_factor}
                    if self.device_fading == "rician"
                    else {}
                ),
            ),
            source_power_watt=self.source_power_watt,
            noise_power_watt=self.noise_power_watt,
        )

    def build_scene(self, distance_m: float | None = None) -> Scene:
        """The canonical two-device line scene (distance overridable)."""
        return Scene.two_device_line(
            device_separation_m=(
                self.distance_m if distance_m is None else distance_m
            ),
            source_distance_m=self.source_distance_m,
        )

    def build_mac_config(self):
        """The protocol-simulator workload this scenario describes."""
        from repro.mac.simulator import SimulationConfig
        from repro.mac.traffic import BernoulliLoss

        return SimulationConfig(
            num_links=self.mac_num_links,
            arrival_rate_pps=self.mac_arrival_rate_pps,
            load_asymmetry=self.mac_load_asymmetry,
            horizon_seconds=self.mac_horizon_seconds,
            payload_bytes=self.mac_payload_bytes,
            bit_rate_bps=self.bit_rate_bps,
            loss=BernoulliLoss(self.mac_loss_probability),
        )

    def build_mac_policy(self):
        """A fresh link-layer policy instance for :attr:`mac_policy`."""
        from repro.experiments.mac import build_mac_policy

        return build_mac_policy(self)

    def build(self) -> "ScenarioStack":
        """Construct the full simulation stack in one call."""
        config = self.build_config()
        source = self.build_source()
        return ScenarioStack(
            spec=self,
            config=config,
            source=source,
            link=FullDuplexLink(config, source),
            channel=self.build_channel(),
            scene=self.build_scene(),
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-ready dict of every field."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec fields: {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class ScenarioStack:
    """A built scenario: every wired object plus the spec that made it.

    Attributes
    ----------
    spec:
        The originating declarative record.
    config / source / link / channel / scene:
        The wired simulation objects (see their classes).
    """

    spec: ScenarioSpec
    config: FullDuplexConfig
    source: AmbientSource
    link: FullDuplexLink
    channel: ChannelModel
    scene: Scene = field(repr=False)

    def realize(self, rng=None):
        """One block's channel gains for this stack's scene."""
        return self.channel.realize(self.scene, rng)
