"""Reproducible Monte-Carlo experiment driver: serial, parallel or vectorized.

:class:`ExperimentRunner` executes independent trials of a picklable
``trial(spec, rng) -> dict`` function with one of three backends:
``"serial"`` runs trials inline, ``"parallel"`` fans them out over a
``multiprocessing`` pool, and ``"vectorized"`` hands whole chunks of
trial seeds to a batched implementation that runs them as stacked numpy
arrays (:mod:`repro.experiments.batch`).  Reproducibility rests on
:class:`numpy.random.SeedSequence`: the root seed spawns one child
sequence per trial index *before* any work is dispatched, so trial ``i``
sees the same stream no matter which process — or which batch lane —
runs it.  Serial and parallel are **bitwise identical** for every trial
kind, and the vectorized backend matches them bitwise for every
sample-level kind; the ``mac`` kind's vectorized path runs on a slotted
engine that is statistically rather than bitwise equivalent (DESIGN
§7).

Adaptive stopping generalises the ``min_errors`` / ``max_trials`` logic
of :mod:`repro.analysis.ber`: a ``stop_when(records)`` predicate is
evaluated over the *ordered* prefix of results, and the run is truncated
at the earliest trial where it fires.  A parallel run may compute a few
trials beyond that point (they are in flight when the budget is met) but
discards them, keeping serial and parallel outputs identical.

The module also ships four standard trial functions (forward BER,
feedback BER, frame delivery, energy exchange) as module-level
picklable callables, with a per-process stack cache so workers build
each scenario only once.  The fifth standard trial kind — one seeded
MAC contention replication per trial — lives in
:mod:`repro.experiments.mac` (:func:`mac_trial`).  Every standard kind
runs on all three backends.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.experiments.results import ResultTable
from repro.experiments.spec import ScenarioSpec, ScenarioStack
from repro.utils.rng import ensure_rng, random_bits, spawn_rngs
from repro.utils.validation import check_positive

#: Per-process cache of built stacks, keyed by the (hashable) spec.
_STACK_CACHE: dict[ScenarioSpec, ScenarioStack] = {}


def _stack_for(spec: ScenarioSpec) -> ScenarioStack:
    """Build (or reuse) the simulation stack for ``spec`` in this process."""
    stack = _STACK_CACHE.get(spec)
    if stack is None:
        stack = spec.build()
        _STACK_CACHE[spec] = stack
    return stack


def _invoke(args) -> dict:
    """Pool-side shim: materialise the rng and stamp the trial index."""
    trial, spec, seed_seq, index = args
    rng = ensure_rng(seed_seq)
    record = trial(spec, rng)
    return {"trial": index, **record}


def error_budget(
    min_errors: int, key: str = "errors"
) -> Callable[[list[dict]], bool]:
    """Stop once the summed ``key`` column reaches ``min_errors``.

    The standard BER stopping rule: spend trials until enough errors
    have been observed for a tight estimate, then move on.
    """
    check_positive("min_errors", min_errors)

    def stop(records: list[dict]) -> bool:
        return sum(r[key] for r in records) >= min_errors

    return stop


def precision_budget(
    max_halfwidth: float,
    successes: str = "delivered_packets",
    trials: str = "offered_packets",
) -> Callable[[list[dict]], bool]:
    """Stop once the pooled proportion is known to ``±max_halfwidth``.

    The MAC counterpart of :func:`error_budget`: records carry count
    columns (deliveries and offered packets by default), and the run
    stops at the earliest prefix whose 95 % Wilson interval on the
    pooled ``successes / trials`` proportion is narrower than
    ``2 * max_halfwidth``.  Evaluated over the ordered prefix, so it
    preserves serial == parallel equivalence like every stop rule.

    Caveat: the Wilson interval treats the pooled counts as i.i.d.
    Bernoulli draws.  Packet outcomes *within* one contention
    replication share a collision domain and are positively correlated,
    so the interval understates replication-to-replication variance —
    treat ``max_halfwidth`` as a workload-sizing dial and keep a
    ``min_trials`` floor of several replications, not as an exact
    coverage guarantee.
    """
    from repro.analysis.theory import wilson_interval

    check_positive("max_halfwidth", max_halfwidth)

    def stop(records: list[dict]) -> bool:
        n = sum(r[trials] for r in records)
        k = sum(r[successes] for r in records)
        if n == 0:
            return False
        lo, hi = wilson_interval(k, n)
        return (hi - lo) <= 2.0 * max_halfwidth

    return stop


#: Recognised execution backends.
BACKENDS = ("serial", "parallel", "vectorized")

#: Lanes per batch when ``backend="vectorized"`` and no chunk size is
#: given — bounds peak memory (each lane stages full sample-rate
#: waveforms) while amortising per-batch setup.
DEFAULT_VECTORIZED_CHUNK = 64


@dataclass
class ExperimentRunner:
    """Runs independent trials of one scenario on a chosen backend.

    Attributes
    ----------
    trial:
        Picklable ``trial(spec, rng) -> dict`` callable.  Records from
        one runner must share a key set (they form one table).
    max_trials:
        Hard trial ceiling.
    min_trials:
        Floor before adaptive stopping may trigger.
    stop_when:
        Optional predicate over the ordered record prefix; see
        :func:`error_budget`.
    workers:
        ``<= 1`` runs inline; ``N > 1`` uses an ``N``-process pool
        (ignored by the vectorized backend, which is single-process).
    chunk_size:
        Trials dispatched between stop-rule checks in parallel and
        vectorized modes (defaults: ``2 * workers`` parallel,
        ``DEFAULT_VECTORIZED_CHUNK`` vectorized).
    backend:
        ``"serial"``, ``"parallel"`` or ``"vectorized"``; ``None``
        (default) infers serial/parallel from ``workers``, preserving
        the historical constructor.  ``"vectorized"`` requires the
        trial to have a batched implementation registered in
        :mod:`repro.experiments.batch` (every standard trial kind does).
    """

    trial: Callable[[ScenarioSpec, np.random.Generator], dict]
    max_trials: int = 100
    min_trials: int = 1
    stop_when: Callable[[list[dict]], bool] | None = None
    workers: int = 1
    chunk_size: int | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        check_positive("max_trials", self.max_trials)
        check_positive("min_trials", self.min_trials)
        if self.min_trials > self.max_trials:
            raise ValueError("min_trials must not exceed max_trials")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )

    def resolved_backend(self) -> str:
        """The backend this runner executes on."""
        if self.backend is not None:
            return self.backend
        return "parallel" if self.workers > 1 else "serial"

    def run(
        self,
        spec: ScenarioSpec,
        seed=0,
        *,
        first_trial: int = 0,
        store=None,
    ) -> ResultTable:
        """Execute up to ``max_trials`` trials of ``spec``.

        ``seed`` may be an int or a :class:`numpy.random.SeedSequence`;
        identical seeds give identical tables at any worker count.

        ``first_trial`` resumes the trial sequence mid-way: trials
        ``first_trial … max_trials-1`` run with exactly the seed
        streams a full run would have given them (the root sequence is
        fast-forwarded by spawning and discarding the first
        ``first_trial`` children), so a resumed run concatenated after
        a prior prefix is bitwise identical to one cold run.  Requires
        ``stop_when`` unset — a stop rule is defined over the full
        record prefix, which a partial run cannot see.

        ``store`` (a :class:`repro.store.ResultStore`) makes the run
        cache-aware: the result is served from the store when present,
        topped up from the longest stored prefix when partially
        present, and stored after computing otherwise.  See
        :func:`repro.store.cached_run` for the full contract (which a
        caller needing hit/miss accounting should use directly).
        """
        if store is not None:
            if first_trial:
                raise ValueError(
                    "first_trial and store are mutually exclusive: the "
                    "store computes resume offsets itself"
                )
            from repro.store.cache import cached_run

            return cached_run(store, self, spec, seed=seed).table
        if not 0 <= first_trial <= self.max_trials:
            raise ValueError(
                "first_trial must be in [0, max_trials], got "
                f"{first_trial} with max_trials={self.max_trials}"
            )
        if first_trial and self.stop_when is not None:
            raise ValueError(
                "first_trial requires stop_when=None: adaptive stopping "
                "is defined over the full record prefix, which a "
                "resumed run cannot evaluate"
            )
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        # Child sequences are spawned lazily (per trial / per chunk) so a
        # huge ceiling with an error-budget stop rule costs O(chunk)
        # memory; incremental root.spawn() yields the same children as
        # one up-front root.spawn(max_trials), so results are unchanged.
        if first_trial:
            root.spawn(first_trial)
        backend = self.resolved_backend()
        with obs.span(
            "runner.run",
            backend=backend,
            workers=max(1, self.workers),
            max_trials=self.max_trials,
            first_trial=first_trial,
        ) as sp:
            if backend == "vectorized":
                records = self._run_vectorized(spec, root, first_trial)
            elif backend == "parallel":
                records = self._run_parallel(spec, root, first_trial)
            else:
                records = self._run_serial(spec, root, first_trial)
            sp.note(trials_run=len(records))
            obs.inc("runner.trials", len(records))
            obs.inc(f"runner.runs.{backend}")
        metadata = {
            "scenario": spec.to_dict(),
            "seed": _seed_repr(root),
            "backend": backend,
            "workers": max(1, self.workers),
            "max_trials": self.max_trials,
            "min_trials": self.min_trials,
            "trials_run": len(records),
            "stopped_early": len(records) < self.max_trials - first_trial,
        }
        if first_trial:
            metadata["first_trial"] = first_trial
        table = ResultTable(metadata=metadata)
        table.extend(records)
        return table

    def sweep(
        self,
        spec: ScenarioSpec,
        parameter: str,
        values,
        seed=0,
        aggregate: Callable[[ResultTable], dict] | None = None,
    ) -> ResultTable:
        """Run the trials at each value of one spec field.

        Each sweep point gets an independently spawned seed stream and is
        reduced to a single record by ``aggregate`` (default: the mean of
        every numeric column except ``trial``), prefixed with the swept
        value.
        """
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        reduce = aggregate if aggregate is not None else _mean_aggregate
        values = list(values)
        table = ResultTable(
            metadata={
                "scenario": spec.to_dict(),
                "parameter": parameter,
                "seed": _seed_repr(root),
                "backend": self.resolved_backend(),
                "workers": max(1, self.workers),
            }
        )
        point_trials: list[int] = []
        for value, child in zip(values, root.spawn(len(values))):
            point = self.run(spec.replace(**{parameter: value}), seed=child)
            record = {parameter: value, **reduce(point)}
            # Every sweep point carries its realised trial count: an
            # error-budget stop may truncate one point far below the
            # ceiling, and an aggregate computed over a short record
            # list must be visible as such, not silently comparable to
            # its fully-sampled neighbours.
            record.setdefault("n_trials", len(point))
            point_trials.append(len(point))
            table.append(record)
        table.metadata["point_trials"] = point_trials
        return table

    # -- execution strategies ----------------------------------------------

    def _run_serial(self, spec, root, first_trial=0) -> list[dict]:
        records: list[dict] = []
        for index in range(first_trial, self.max_trials):
            (child,) = root.spawn(1)
            records.append(_invoke((self.trial, spec, child, index)))
            if self._stop_index(records) is not None:
                break
        return records

    def _run_parallel(self, spec, root, first_trial=0) -> list[dict]:
        chunk = self.chunk_size or 2 * self.workers
        check_positive("chunk_size", chunk)
        records: list[dict] = []
        obs.set_gauge("runner.pool_workers", self.workers)
        with multiprocessing.Pool(processes=self.workers) as pool:
            for start in range(first_trial, self.max_trials, chunk):
                count = min(chunk, self.max_trials - start)
                batch = [
                    (self.trial, spec, child, start + offset)
                    for offset, child in enumerate(root.spawn(count))
                ]
                with obs.span(
                    "runner.chunk", backend="parallel",
                    start=start, count=count,
                ):
                    records.extend(pool.map(_invoke, batch))
                stop = self._stop_index(records)
                if stop is not None:
                    return records[:stop]
        return records

    def _run_vectorized(self, spec, root, first_trial=0) -> list[dict]:
        # Imported lazily: batch pulls in the full sample-level stack,
        # which serial/parallel runs of synthetic trials never need.
        from repro.experiments.batch import batched_trial_for

        batch_trial = batched_trial_for(self.trial)
        # A batched trial may declare its own sweet spot (the MAC slot
        # loop amortises per-slot cost over lanes and wants big chunks;
        # waveform-staging trials are memory-bound and want small ones).
        preferred = getattr(
            batch_trial, "preferred_chunk", DEFAULT_VECTORIZED_CHUNK
        )
        chunk = self.chunk_size or min(self.max_trials, preferred)
        check_positive("chunk_size", chunk)
        records: list[dict] = []
        for start in range(first_trial, self.max_trials, chunk):
            count = min(chunk, self.max_trials - start)
            with obs.span(
                "runner.chunk", backend="vectorized",
                start=start, count=count,
            ):
                batch = batch_trial(spec, root.spawn(count))
            if len(batch) != count:
                raise ValueError(
                    f"batched trial returned {len(batch)} records for "
                    f"{count} seeds"
                )
            records.extend(
                {"trial": start + offset, **record}
                for offset, record in enumerate(batch)
            )
            stop = self._stop_index(records)
            if stop is not None:
                return records[:stop]
        return records

    def _stop_index(self, records: list[dict]) -> int | None:
        """Earliest prefix length at which the stop rule fires, if any."""
        if self.stop_when is None:
            return None
        for n in range(self.min_trials, len(records) + 1):
            if self.stop_when(records[:n]):
                return n
        return None


def _seed_repr(root: np.random.SeedSequence):
    """JSON-safe representation of the root seed."""
    entropy = root.entropy
    if isinstance(entropy, (int, np.integer)):
        return int(entropy)
    return [int(e) for e in entropy]


def ber_aggregate(table: ResultTable) -> dict:
    """Collapse per-trial error tallies into one exact rate record.

    Sums the ``errors`` and ``bits`` columns and recomputes the rate
    from the totals (never a mean of per-trial ratios).  The sweep and
    campaign drivers stamp ``n_trials`` onto each point themselves, so
    the aggregate only reports the error statistics.
    """
    errors = int(table.sum("errors"))
    bits = int(table.sum("bits"))
    return {
        "errors": errors,
        "bits": bits,
        "rate": errors / bits if bits else 0.0,
    }


def energy_aggregate(table: ResultTable) -> dict:
    """Collapse energy trials into the paper's duty-cycle economics.

    From the per-exchange records: the delivery ratio, the mean energy
    harvested by each side per exchange, the transmitter's energy per
    *delivered* frame (attempt cost over delivery ratio — the quantity
    early abort attacks), the harvest income rate, and the renewal-bound
    sustainable report rate
    (:func:`repro.hardware.dutycycle.sustainable_packet_rate`) scaled to
    reports per hour.  ``energy_per_delivered_joule`` and the rate are
    0.0 when nothing was delivered (mirrors the MAC flattening
    convention) — a dead link sustains no reports.
    """
    from repro.hardware.dutycycle import sustainable_packet_rate

    n = len(table)
    if not n:
        return {
            "delivered": 0.0,
            "harvested_a_joule": 0.0,
            "harvested_b_joule": 0.0,
            "tx_energy_joule": 0.0,
            "energy_per_delivered_joule": 0.0,
            "harvest_rate_watt": 0.0,
            "sustainable_reports_per_hour": 0.0,
        }
    delivery = table.mean("delivered")
    attempt = table.mean("tx_energy_joule")
    airtime = table.mean("airtime_seconds")
    harvested_a = table.mean("harvested_a_joule")
    per_delivered = attempt / delivery if delivery > 0.0 else 0.0
    harvest_rate = harvested_a / airtime if airtime > 0.0 else 0.0
    sustainable = (
        sustainable_packet_rate(per_delivered, harvest_rate) * 3600.0
        if per_delivered > 0.0
        else 0.0
    )
    return {
        "delivered": delivery,
        "harvested_a_joule": harvested_a,
        "harvested_b_joule": table.mean("harvested_b_joule"),
        "tx_energy_joule": attempt,
        "energy_per_delivered_joule": per_delivered,
        "harvest_rate_watt": harvest_rate,
        "sustainable_reports_per_hour": sustainable,
    }


def _mean_aggregate(table: ResultTable) -> dict:
    """Mean of every numeric column except the trial index.

    The realised trial count is *not* part of the aggregate:
    :meth:`ExperimentRunner.sweep` stamps ``n_trials`` onto every sweep
    record itself, so custom aggregates cannot hide an early-stopped
    point.
    """
    out: dict = {}
    for name in table.columns:
        if name == "trial":
            continue
        values = table.column(name)
        if values and all(isinstance(v, (int, float)) for v in values):
            out[name] = float(sum(values) / len(values))
    return out


# ---------------------------------------------------------------------------
# Standard trial functions (picklable module-level callables).
# ---------------------------------------------------------------------------

#: Raw bits exchanged per BER trial (matches the historical harnesses).
BITS_PER_TRIAL = 256


def forward_ber_trial(spec: ScenarioSpec, rng) -> dict:
    """One unframed A→B exchange; returns data-direction error tallies."""
    stack = _stack_for(spec)
    rng_ch, rng_bits, rng_run = spawn_rngs(rng, 3)
    gains = stack.realize(rng_ch)
    data = random_bits(rng_bits, BITS_PER_TRIAL)
    fb = random_bits(
        rng_bits, max(1, BITS_PER_TRIAL // spec.asymmetry_ratio)
    )
    decoded, _, _ = stack.link.run_raw_bits(gains, data, fb, rng=rng_run)
    errors = int(np.count_nonzero(decoded != data))
    return {"errors": errors, "bits": int(data.size),
            "ber": errors / data.size}


def feedback_ber_trial(spec: ScenarioSpec, rng) -> dict:
    """One unframed exchange; returns feedback-direction error tallies."""
    stack = _stack_for(spec)
    rng_ch, rng_bits, rng_run = spawn_rngs(rng, 3)
    gains = stack.realize(rng_ch)
    data = random_bits(rng_bits, BITS_PER_TRIAL)
    fb = random_bits(
        rng_bits, max(1, BITS_PER_TRIAL // spec.asymmetry_ratio)
    )
    _, fb_sent, fb_decoded = stack.link.run_raw_bits(
        gains, data, fb, rng=rng_run
    )
    errors = int(np.count_nonzero(fb_sent != fb_decoded))
    bits = int(fb_sent.size)
    return {"errors": errors, "bits": bits,
            "ber": errors / bits if bits else 0.0}


def frame_delivery_trial(spec: ScenarioSpec, rng) -> dict:
    """One framed exchange (sync + decode + CRC); 1 error = lost frame."""
    from repro.phy.framing import random_frame

    stack = _stack_for(spec)
    # One spawned stream per draw (channel, frame, feedback, run) — the
    # DESIGN §7 lane layout; the feedback stream is separate from the
    # frame's so the feedback realisation cannot depend on the payload
    # length.
    rng_ch, rng_frame, rng_fb, rng_run = spawn_rngs(rng, 4)
    gains = stack.realize(rng_ch)
    payload_bytes = 16
    frame = random_frame(payload_bytes, rng_frame)
    fb = random_bits(
        rng_fb,
        max(1, (payload_bytes * 8 + 64) // spec.asymmetry_ratio),
    )
    exchange = stack.link.run(gains, frame, fb, rng=rng_run)
    ok = exchange.data_delivered and np.array_equal(
        exchange.data_result.frame.payload_bits, frame.payload_bits
    )
    return {"errors": 0 if ok else 1, "bits": 1,
            "delivered": 1.0 if ok else 0.0}


def energy_trial(spec: ScenarioSpec, rng) -> dict:
    """One framed exchange with the energy books kept on both sides.

    Same seed-stream layout as :func:`frame_delivery_trial` (channel,
    frame, feedback, run — DESIGN §7), plus deterministic energy
    accounting: the harvested energy each tag banks during the exchange
    (from the staged incident fields) and the transmitter's spend for
    the over-the-air bits under the default
    :class:`~repro.hardware.energy.EnergyModel`.  Feeds the
    range-versus-duty-cycle campaign via :func:`energy_aggregate`; the
    vectorized backend runs it bitwise-identically through
    :func:`repro.experiments.batch.batch_energy_trials`.
    """
    from repro.hardware.energy import EnergyModel
    from repro.phy.framing import random_frame

    stack = _stack_for(spec)
    rng_ch, rng_frame, rng_fb, rng_run = spawn_rngs(rng, 4)
    gains = stack.realize(rng_ch)
    payload_bytes = 16
    frame = random_frame(payload_bytes, rng_frame)
    fb = random_bits(
        rng_fb,
        max(1, (payload_bytes * 8 + 64) // spec.asymmetry_ratio),
    )
    exchange = stack.link.run(gains, frame, fb, rng=rng_run)
    ok = exchange.data_delivered and np.array_equal(
        exchange.data_result.frame.payload_bits, frame.payload_bits
    )
    model = EnergyModel()
    air_bits = int(exchange.data_bits_sent.size)
    return {
        "delivered": 1.0 if ok else 0.0,
        "harvested_a_joule": float(exchange.harvested_a_joule),
        "harvested_b_joule": float(exchange.harvested_b_joule),
        "tx_energy_joule": float(model.tx_cost(air_bits)),
        "airtime_seconds": air_bits / spec.bit_rate_bps,
    }
