"""Result container: uniform records plus run metadata.

:class:`ResultTable` is the one shape every experiment produces — a
fixed column set, one value per column per trial, plus a metadata dict
describing how they were obtained (scenario, seed, worker count,
stopping reason).  It renders to the benchmark table format, serialises
to JSON and CSV, and supersedes the per-use-case accumulators the
sweeps used to hand-roll.

Storage is *columnar* (DESIGN §9): each column lives as one growable
numpy array, typed ``bool``/``int64``/``float64`` when every value fits
and demoted to ``object`` dtype otherwise (strings, dicts, mixed
numerics).  The record-oriented API is unchanged — ``append`` takes a
dict, ``records`` materialises dicts — but whole-column access
(:meth:`ResultTable.array`) is a numpy view, which is what the store
codec and the columnar aggregates build on.

Two integrity rules the old list-of-dicts container got wrong are load
bearing here and frozen by regression tests:

* the **first appended record locks the column set unconditionally** —
  an empty first record locks zero columns, so a later keyed record is
  rejected instead of silently re-locking and leaving a ragged table;
* JSON serialisation is **strict**: non-finite floats are encoded as
  ``{"$nonfinite": "nan"|"inf"|"-inf"}`` sentinels (decoded losslessly
  by :meth:`ResultTable.from_json`) rather than emitted as bare
  ``NaN``/``Infinity`` tokens no strict parser accepts.
"""

from __future__ import annotations

import csv
import io
import json
import math

import numpy as np

#: Sentinel key wrapping non-finite floats in JSON documents.
NONFINITE_KEY = "$nonfinite"

_NONFINITE_DECODE = {
    "nan": math.nan,
    "inf": math.inf,
    "-inf": -math.inf,
}

#: Initial capacity of a freshly created column buffer.
_INITIAL_CAPACITY = 8


def encode_nonfinite(value):
    """``value`` with every non-finite float wrapped in a JSON sentinel.

    Recurses through dicts, lists and tuples; finite values come back
    unchanged, so encoding a finite-valued document is the identity and
    its JSON bytes match the pre-sentinel format exactly.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return {NONFINITE_KEY: "nan"}
        if value == math.inf:
            return {NONFINITE_KEY: "inf"}
        if value == -math.inf:
            return {NONFINITE_KEY: "-inf"}
        return value
    if isinstance(value, dict):
        return {k: encode_nonfinite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_nonfinite(v) for v in value]
    return value


def decode_nonfinite(value):
    """Inverse of :func:`encode_nonfinite`."""
    if isinstance(value, dict):
        if set(value) == {NONFINITE_KEY} and value[NONFINITE_KEY] in (
            _NONFINITE_DECODE
        ):
            return _NONFINITE_DECODE[value[NONFINITE_KEY]]
        return {k: decode_nonfinite(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(v) for v in value]
    return value


def _dtype_for(value) -> np.dtype:
    """The narrowest column dtype that stores ``value`` losslessly."""
    if isinstance(value, (bool, np.bool_)):
        return np.dtype(np.bool_)
    if isinstance(value, (int, np.integer)):
        if -(2**63) <= int(value) < 2**63:
            return np.dtype(np.int64)
        return np.dtype(object)
    if isinstance(value, (float, np.floating)):
        return np.dtype(np.float64)
    return np.dtype(object)


def _fits(dtype: np.dtype, value) -> bool:
    """Whether ``value`` can join a column of ``dtype`` losslessly."""
    if dtype == np.dtype(object):
        return True
    if isinstance(value, (bool, np.bool_)):
        return dtype == np.dtype(np.bool_)
    if dtype == np.dtype(np.bool_):
        return False
    if isinstance(value, (int, np.integer)):
        return (
            dtype == np.dtype(np.int64)
            and -(2**63) <= int(value) < 2**63
        )
    if isinstance(value, (float, np.floating)):
        return dtype == np.dtype(np.float64)
    return False


class _Column:
    """One growable typed buffer (amortised O(1) append)."""

    __slots__ = ("_data", "_size")

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        self._size = 0

    @classmethod
    def from_values(cls, values) -> "_Column":
        """A column pre-filled from an array or list (codec fast path)."""
        col = cls()
        if isinstance(values, np.ndarray) and values.dtype != object:
            col._data = np.array(values)  # owned, writable copy
        else:
            col._data = np.empty(len(values), dtype=object)
            col._data[:] = list(values)
        col._size = len(col._data)
        return col

    def append(self, value) -> None:
        if self._data is None:
            self._data = np.empty(_INITIAL_CAPACITY, dtype=_dtype_for(value))
        elif not _fits(self._data.dtype, value):
            # Demote the whole column to object dtype, preserving the
            # already-stored python values exactly.
            widened = np.empty(max(len(self._data), _INITIAL_CAPACITY),
                               dtype=object)
            widened[: self._size] = self._data[: self._size].tolist()
            self._data = widened
        if self._size == len(self._data):
            grown = np.empty(2 * len(self._data), dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    def array(self) -> np.ndarray:
        """View of the stored values (no copy)."""
        if self._data is None:
            return np.empty(0, dtype=object)
        return self._data[: self._size]

    def tolist(self) -> list:
        """Values as plain python scalars/objects."""
        view = self.array()
        if view.dtype == object:
            return list(view)
        return view.tolist()


class ResultTable:
    """Records with a fixed column set, plus run metadata.

    Parameters
    ----------
    columns:
        Record keys, in presentation order.  When omitted, the first
        appended record locks the column set (unconditionally — an
        empty first record locks zero columns).
    records:
        Initial records, appended with the usual validation.
    metadata:
        Provenance: scenario dict, seed, workers, stopping info, …
    """

    def __init__(self, columns=None, records=None, metadata=None) -> None:
        self._columns: list[str] = []
        self._store: dict[str, _Column] = {}
        self._size = 0
        self._locked = False
        self.metadata: dict = metadata if metadata is not None else {}
        if columns:
            self._lock(list(columns))
        if records:
            self.extend(records)

    @classmethod
    def _from_columns(cls, columns, arrays, metadata) -> "ResultTable":
        """Assemble directly from per-column value sequences (codec path).

        All sequences must share one length; dtypes are taken as-is for
        numpy arrays and fall back to object for lists.
        """
        table = cls(metadata=metadata)
        table._lock(list(columns))
        sizes = {len(values) for values in arrays}
        if len(sizes) > 1:
            raise ValueError(f"ragged column lengths {sorted(sizes)}")
        table._size = sizes.pop() if sizes else 0
        for name, values in zip(table._columns, arrays):
            table._store[name] = _Column.from_values(values)
        return table

    def _lock(self, names: list[str]) -> None:
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self._columns = list(names)
        self._store = {name: _Column() for name in names}
        self._locked = True

    # -- record API ---------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        """Record keys, in presentation order (copy)."""
        return list(self._columns)

    @property
    def records(self) -> list[dict]:
        """One dict per trial / sweep point (materialised copy)."""
        if not self._columns:
            return [{} for _ in range(self._size)]
        lists = [self._store[name].tolist() for name in self._columns]
        return [dict(zip(self._columns, row)) for row in zip(*lists)]

    def append(self, record: dict) -> None:
        """Add one record; its keys must match the table's columns.

        The first record appended to an unlocked table locks the column
        set — even when it is empty, so a ragged table can never form.
        """
        if not self._locked:
            self._lock(list(record))
        elif set(record) != set(self._columns):
            extra = sorted(set(record) - set(self._columns))
            missing = sorted(set(self._columns) - set(record))
            raise ValueError(
                "record keys do not match columns "
                f"(extra {extra}, missing {missing})"
            )
        for name in self._columns:
            self._store[name].append(record[name])
        self._size += 1

    def extend(self, records) -> None:
        """Append many records (same validation per record)."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return (
            self._columns == other._columns
            and self.records == other.records
            and self.metadata == other.metadata
        )

    def __repr__(self) -> str:
        return (
            f"ResultTable(columns={self._columns!r}, "
            f"n_records={self._size})"
        )

    def _check_column(self, name: str) -> None:
        if name not in self._store:
            raise KeyError(f"no column {name!r}; have {self._columns}")

    def column(self, name: str) -> list:
        """One column's values across all records (python scalars)."""
        self._check_column(name)
        return self._store[name].tolist()

    def array(self, name: str) -> np.ndarray:
        """One column as a numpy array (a view — do not mutate)."""
        self._check_column(name)
        return self._store[name].array()

    def rows(self) -> list[tuple]:
        """Records as tuples in column order (for table rendering)."""
        if not self._columns:
            return [() for _ in range(self._size)]
        lists = [self._store[name].tolist() for name in self._columns]
        return list(zip(*lists))

    def sum(self, name: str) -> float:
        """Sum of a numeric column (0.0 when empty).

        Exact-dtype columns (bool/int) sum on the array; float and
        object columns use sequential python summation so results are
        bit-identical to the record-oriented container.
        """
        if not self._size:
            return 0.0
        values = self.array(name)
        if values.dtype.kind in "bi":
            return float(int(values.sum()))
        return float(sum(values.tolist()))

    def mean(self, name: str) -> float:
        """Mean of a numeric column (0.0 when empty)."""
        if not self._size:
            return 0.0
        values = self.array(name)
        if values.dtype.kind in "bi":
            return float(int(values.sum()) / self._size)
        return float(sum(values.tolist()) / self._size)

    # -- rendering ---------------------------------------------------------

    def format(self) -> str:
        """Fixed-width plain-text table (benchmark house style)."""
        from repro.analysis.reporting import format_table

        return format_table(list(self.columns), self.rows())

    # -- serialisation -----------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        """Strict JSON document with columns, records and metadata.

        Non-finite floats are wrapped as ``{"$nonfinite": …}`` sentinels
        (:func:`encode_nonfinite`); finite-valued tables serialise to
        exactly the bytes the pre-columnar container produced.
        """
        return json.dumps(
            {
                "columns": list(self._columns),
                "records": [encode_nonfinite(r) for r in self.records],
                "metadata": encode_nonfinite(self.metadata),
            },
            indent=indent,
            allow_nan=False,
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Inverse of :meth:`to_json`.

        Also accepts legacy documents carrying bare ``NaN``/``Infinity``
        tokens (the stdlib parser is lenient), so pre-sentinel store
        payloads stay readable.
        """
        data = json.loads(text)
        table = cls(
            columns=list(data["columns"]),
            metadata=decode_nonfinite(dict(data.get("metadata", {}))),
        )
        table.extend(
            decode_nonfinite(record) for record in data.get("records", [])
        )
        return table

    def to_csv(self) -> str:
        """CSV text with a header row (metadata is not included)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows())
        return buf.getvalue()

    @classmethod
    def from_sweep(cls, sweep) -> "ResultTable":
        """Adapt a :class:`repro.analysis.sweep.Sweep1D` (legacy shape)."""
        table = cls(columns=sweep.header(),
                    metadata={"parameter": sweep.parameter})
        for row in sweep.rows():
            table.append(dict(zip(table.columns, row)))
        return table
