"""Result container: uniform records plus run metadata.

:class:`ResultTable` is the one shape every experiment produces — a list
of dict records sharing one column set, plus a metadata dict describing
how they were obtained (scenario, seed, worker count, stopping reason).
It renders to the benchmark table format, serialises to JSON and CSV,
and supersedes the per-use-case accumulators the sweeps used to
hand-roll.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field


@dataclass
class ResultTable:
    """Records with a fixed column set, plus run metadata.

    Attributes
    ----------
    columns:
        Record keys, in presentation order.  Locked in by the first
        appended record when constructed empty.
    records:
        One dict per trial / sweep point, keys exactly ``columns``.
    metadata:
        Provenance: scenario dict, seed, workers, stopping info, …
    """

    columns: list[str] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def append(self, record: dict) -> None:
        """Add one record; its keys must match the table's columns."""
        if not self.columns:
            self.columns = list(record)
        elif set(record) != set(self.columns):
            extra = sorted(set(record) - set(self.columns))
            missing = sorted(set(self.columns) - set(record))
            raise ValueError(
                f"record keys do not match columns "
                f"(extra {extra}, missing {missing})"
            )
        self.records.append(dict(record))

    def extend(self, records) -> None:
        """Append many records (same validation per record)."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def column(self, name: str) -> list:
        """One column's values across all records."""
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; have {self.columns}")
        return [r[name] for r in self.records]

    def rows(self) -> list[tuple]:
        """Records as tuples in column order (for table rendering)."""
        return [tuple(r[c] for c in self.columns) for r in self.records]

    def sum(self, name: str) -> float:
        """Sum of a numeric column (0.0 when empty)."""
        return float(sum(self.column(name))) if self.records else 0.0

    def mean(self, name: str) -> float:
        """Mean of a numeric column (0.0 when empty)."""
        values = self.column(name)
        return float(sum(values) / len(values)) if values else 0.0

    # -- rendering ---------------------------------------------------------

    def format(self) -> str:
        """Fixed-width plain-text table (benchmark house style)."""
        from repro.analysis.reporting import format_table

        return format_table(list(self.columns), self.rows())

    # -- serialisation -----------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        """JSON document with columns, records and metadata."""
        return json.dumps(
            {
                "columns": list(self.columns),
                "records": self.records,
                "metadata": self.metadata,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        table = cls(
            columns=list(data["columns"]),
            metadata=dict(data.get("metadata", {})),
        )
        table.extend(data.get("records", []))
        return table

    def to_csv(self) -> str:
        """CSV text with a header row (metadata is not included)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows())
        return buf.getvalue()

    @classmethod
    def from_sweep(cls, sweep) -> "ResultTable":
        """Adapt a :class:`repro.analysis.sweep.Sweep1D` (legacy shape)."""
        table = cls(columns=sweep.header(),
                    metadata={"parameter": sweep.parameter})
        for row in sweep.rows():
            table.append(dict(zip(table.columns, row)))
        return table
