"""MAC contention as a first-class replicated trial kind.

One trial = one seeded :class:`repro.mac.simulator.NetworkSimulator`
replication of the scenario's contention workload under the scenario's
policy arm (:attr:`~repro.experiments.spec.ScenarioSpec.mac_policy`).
:func:`mac_trial` is a picklable ``trial(spec, rng) -> dict`` callable,
so :class:`~repro.experiments.runner.ExperimentRunner` gives MAC
experiments everything the PHY trials already have: seeds-spawned
reproducibility, serial == parallel bitwise equivalence, adaptive
stopping and sweepable ``mac_*`` knobs.

The record is the flattened :class:`~repro.mac.metrics.NetworkMetrics`
(network-total counts plus derived rates); :func:`mac_aggregate`
re-derives every ratio from the summed counts, so aggregates are exact
rather than means-of-ratios, and stamps Wilson confidence bounds on the
delivery ratio (see :func:`repro.analysis.theory.wilson_interval`).

Policy arms are compared by running one runner per arm on the same root
seed (:func:`run_mac_arms`): identical seeds pair the arrival processes
across arms, so every arm faces the same offered workload.  (Later
draws — per-attempt loss, backoff, ACK corruption — interleave with
policy behaviour and diverge once the arms act differently, so the
pairing reduces variance on the offered side only.)
"""

from __future__ import annotations

import numpy as np

from repro.experiments.results import ResultTable
from repro.experiments.spec import MAC_POLICY_KINDS, ScenarioSpec
from repro.mac.arq import LinkPolicy
from repro.mac.metrics import NetworkMetrics
from repro.mac.node import standard_policies
from repro.mac.resume import ResumeFromAbortPolicy
from repro.mac.simulator import NetworkSimulator


def build_mac_policy(spec: ScenarioSpec) -> LinkPolicy:
    """A fresh policy instance for ``spec.mac_policy``.

    The arm → constructor wiring is
    :func:`repro.mac.node.standard_policies` (plus the ``fd-resume``
    extension): the full-duplex arms inherit the scenario's
    ``asymmetry_ratio`` — the same ``r`` the PHY trials run at — plus
    the MAC-specific detector latency and retry budget.
    """
    factories = standard_policies(
        asymmetry_ratio=spec.asymmetry_ratio,
        detection_latency_bits=spec.mac_detection_latency_bits,
        max_retries=spec.mac_max_retries,
    )
    factories["fd-resume"] = lambda: ResumeFromAbortPolicy(
        asymmetry_ratio=spec.asymmetry_ratio,
        detection_latency_bits=spec.mac_detection_latency_bits,
        max_retries=spec.mac_max_retries,
    )
    if spec.mac_policy not in factories:
        raise ValueError(
            f"unknown mac_policy {spec.mac_policy!r}; "
            f"choose from {sorted(MAC_POLICY_KINDS)}"
        )
    return factories[spec.mac_policy]()


def flatten_network_metrics(metrics: NetworkMetrics) -> dict:
    """One flat, JSON-safe record of a :class:`NetworkMetrics`.

    Counts and energy totals are network sums (exact, summable across
    trials); the derived rates repeat the metrics properties per trial.
    ``energy_per_delivered_bit`` is 0.0 when nothing was delivered —
    aggregate from the totals, not from this column.
    """
    delivered = int(metrics.total("delivered_packets"))
    latency_sum = float(metrics.total("latency_sum_seconds"))
    return {
        "offered_packets": int(metrics.total("offered_packets")),
        "delivered_packets": delivered,
        "failed_packets": int(metrics.total("failed_packets")),
        "attempts": int(metrics.total("attempts")),
        "aborted_attempts": int(metrics.total("aborted_attempts")),
        "bits_transmitted": int(metrics.total("bits_transmitted")),
        "payload_bits_delivered": int(
            metrics.total("payload_bits_delivered")
        ),
        "tx_energy_joule": float(metrics.total_tx_energy_joule),
        "total_energy_joule": float(metrics.total_energy_joule),
        "latency_sum_seconds": latency_sum,
        "duration_seconds": float(metrics.duration_seconds),
        "goodput_bps": float(metrics.goodput_bps),
        "delivery_ratio": float(metrics.delivery_ratio),
        "abort_fraction": float(metrics.abort_fraction),
        "mean_latency_seconds": (
            latency_sum / delivered if delivered else 0.0
        ),
        "energy_per_delivered_bit": (
            float(metrics.energy_per_delivered_bit)
            if metrics.total("payload_bits_delivered")
            else 0.0
        ),
        "jain_fairness": float(metrics.jain_fairness()),
    }


def mac_trial(spec: ScenarioSpec, rng: np.random.Generator) -> dict:
    """One seeded contention replication; returns flattened metrics.

    Picklable module-level callable for
    :class:`~repro.experiments.runner.ExperimentRunner`; the whole
    event-driven run consumes only ``rng``, so the record is a pure
    function of ``(spec, rng)`` on every backend.
    """
    sim = NetworkSimulator(
        config=spec.build_mac_config(),
        policy_factory=lambda: build_mac_policy(spec),
    )
    return flatten_network_metrics(sim.run(rng=rng))


def mac_aggregate(table: ResultTable) -> dict:
    """Collapse a MAC trial table into one exact summary record.

    Ratios are recomputed from the summed counts (a mean of per-trial
    ratios would weight short replications equally with long ones); the
    delivery ratio additionally carries its 95 % Wilson bounds over the
    pooled packet count.  The sweep driver stamps ``n_trials`` itself.
    """
    from repro.analysis.contention import summarize_mac_table

    return summarize_mac_table(table).to_record()


def run_mac_arms(
    spec: ScenarioSpec,
    arms=MAC_POLICY_KINDS,
    *,
    runner=None,
    seed=0,
    **runner_kwargs,
) -> dict[str, ResultTable]:
    """Run the same scenario under several policy arms, paired by seed.

    Each arm gets an :class:`ExperimentRunner` built from
    ``runner_kwargs`` (or a caller-supplied ``runner`` reused across
    arms) and the *same* root seed, so the arrival processes of trial
    ``i`` are identical across arms; draws that interleave with policy
    behaviour (loss, backoff, ACKs) diverge after the arms first act
    differently.  Returns ``arm → table`` in the given arm order.
    """
    from repro.experiments.runner import ExperimentRunner

    if runner is not None and runner_kwargs:
        raise TypeError(
            "pass either runner or runner kwargs, not both "
            f"(got runner and {sorted(runner_kwargs)})"
        )
    if runner is None:
        runner = ExperimentRunner(trial=mac_trial, **runner_kwargs)
    results: dict[str, ResultTable] = {}
    for arm in arms:
        results[arm] = runner.run(spec.replace(mac_policy=arm), seed=seed)
    return results
