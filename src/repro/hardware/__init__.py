"""Behavioural models of the battery-free tag hardware.

A full-duplex backscatter tag is built from (paper, Fig. "tag
architecture"):

* an antenna whose impedance is switched between two states by the
  modulator — :mod:`repro.hardware.reflection`;
* a square-law envelope detector + RC network — :mod:`repro.hardware.detector`;
* a low-power comparator with hysteresis — :mod:`repro.hardware.comparator`;
* an RF energy harvester — :mod:`repro.hardware.harvester`;
* an energy ledger tracking harvest and consumption —
  :mod:`repro.hardware.energy`;
* :class:`repro.hardware.tag.TagFrontEnd` wiring them together, including
  the self-reception gating that a device's own reflection state imposes
  on its receive path (the physical root of full-duplex self-interference).
"""

from repro.hardware.comparator import HysteresisComparator
from repro.hardware.detector import EnvelopeDetector
from repro.hardware.dutycycle import (
    EnergyNeutralController,
    sustainable_packet_rate,
)
from repro.hardware.energy import EnergyLedger, EnergyModel
from repro.hardware.harvester import EnergyHarvester
from repro.hardware.reflection import ReflectionModulator, ReflectionStates
from repro.hardware.tag import TagFrontEnd

__all__ = [
    "EnergyHarvester",
    "EnergyLedger",
    "EnergyModel",
    "EnergyNeutralController",
    "EnvelopeDetector",
    "HysteresisComparator",
    "ReflectionModulator",
    "ReflectionStates",
    "TagFrontEnd",
    "sustainable_packet_rate",
]
