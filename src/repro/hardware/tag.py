"""The tag front end: antenna, detector, comparator and harvester wired
together.

:class:`TagFrontEnd` captures the physical coupling at the heart of
full-duplex backscatter: a single antenna feeds the modulator, the
envelope detector and the harvester simultaneously.  When the tag
reflects (transmit chip = 1) less power flows inward, so

* its **detector** sees the incident field scaled by the through
  amplitude of its current reflection state (self-interference on
  receive), and
* its **harvester** loses the reflected fraction (transmitting costs
  harvest, not battery).

Both effects are applied here, from the tag's *own* chip waveform, so
every layer above (PHY, full-duplex link, MAC) inherits them for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.envelope import envelope_power
from repro.hardware.comparator import HysteresisComparator
from repro.hardware.detector import EnvelopeDetector
from repro.hardware.harvester import EnergyHarvester
from repro.hardware.reflection import ReflectionModulator, ReflectionStates


@dataclass
class TagFrontEnd:
    """One device's analog front end.

    Attributes
    ----------
    detector:
        Envelope detector (sets the smoothing time constant).
    comparator:
        Output slicer (hysteresis).
    harvester:
        RF→DC converter.
    states:
        The modulator's two impedance states, shared with
        :class:`~repro.hardware.reflection.ReflectionModulator`.
    """

    detector: EnvelopeDetector
    comparator: HysteresisComparator = field(default_factory=HysteresisComparator)
    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    states: ReflectionStates = field(default_factory=ReflectionStates)

    def modulator(self, samples_per_chip: int) -> ReflectionModulator:
        """A modulator bound to this front end's impedance states."""
        return ReflectionModulator(
            states=self.states, samples_per_chip=samples_per_chip
        )

    def receive_envelope(
        self,
        incident: np.ndarray,
        own_chip_waveform: np.ndarray | None = None,
    ) -> np.ndarray:
        """Detector output for an incident field while (possibly)
        transmitting.

        Parameters
        ----------
        incident:
            Complex field at the antenna (from
            :meth:`repro.channel.link.LinkGains.received`).
        own_chip_waveform:
            This tag's own transmit chips expanded to sample rate (0/1
            values), or ``None`` when the tag is purely listening.  When
            present, the incident field is scaled per-sample by the
            through amplitude of the corresponding reflection state.
        """
        x = np.asarray(incident, dtype=complex)
        if own_chip_waveform is not None:
            chips = np.asarray(own_chip_waveform)
            if chips.shape != x.shape:
                raise ValueError(
                    f"own chip waveform shape {chips.shape} != incident {x.shape}"
                )
            through = np.where(
                chips > 0,
                self.states.through_for(1),
                self.states.through_for(0),
            )
            x = x * through
        return self.detector.detect(x)

    def harvested_energy(
        self,
        incident: np.ndarray,
        own_chip_waveform: np.ndarray | None = None,
    ) -> float:
        """DC energy [J] harvested from an incident field over a block.

        The harvester receives the non-reflected power fraction
        ``1 - |Γ(state)|²`` sample by sample.
        """
        x = np.asarray(incident, dtype=complex)
        power = envelope_power(x)
        if own_chip_waveform is not None:
            chips = np.asarray(own_chip_waveform)
            if chips.shape != x.shape:
                raise ValueError(
                    f"own chip waveform shape {chips.shape} != incident {x.shape}"
                )
            through_power = np.where(
                chips > 0,
                self.states.through_for(1) ** 2,
                self.states.through_for(0) ** 2,
            )
            power = power * through_power
        return self.harvester.harvested_energy(
            power, self.detector.sample_rate_hz
        )

    def slice(self, envelope: np.ndarray, threshold: np.ndarray) -> np.ndarray:
        """Comparator decision stream for an envelope/threshold pair."""
        return self.comparator.compare(envelope, threshold)
