"""RF energy harvester model.

Battery-free tags power themselves from the same ambient RF they
communicate over.  The harvester rectifies whatever power is *not*
reflected by the modulator; its conversion efficiency and sensitivity
floor follow the behavioural parameters used throughout the wireless-
power literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class EnergyHarvester:
    """Rectifier with efficiency and a sensitivity floor.

    Attributes
    ----------
    efficiency:
        RF→DC conversion efficiency (0.3 is conservative for UHF
        rectennas at microwatt inputs; 0.5 is the common literature
        value).
    sensitivity_watt:
        Input power below which the rectifier output is zero (diode
        turn-on).  Default 100 nW.
    saturation_watt:
        Input power above which output stops growing.  Default 1 mW.
    """

    efficiency: float = 0.5
    sensitivity_watt: float = 1e-7
    saturation_watt: float = 1e-3

    def __post_init__(self) -> None:
        check_in_range("efficiency", self.efficiency, 0.0, 1.0)
        check_non_negative("sensitivity_watt", self.sensitivity_watt)
        if self.saturation_watt <= self.sensitivity_watt:
            raise ValueError("saturation_watt must exceed sensitivity_watt")

    def harvested_power(self, input_power_watt) -> np.ndarray | float:
        """DC output power for a given instantaneous RF input power.

        Vectorised; zero below sensitivity, clamped above saturation.
        """
        p = np.asarray(input_power_watt, dtype=float)
        if np.any(p < 0):
            raise ValueError("input power must be non-negative")
        clipped = np.minimum(p, self.saturation_watt)
        out = np.where(clipped >= self.sensitivity_watt, self.efficiency * clipped, 0.0)
        return float(out) if out.ndim == 0 else out

    def harvested_energy(
        self, input_power_watt: np.ndarray, sample_rate_hz: float
    ) -> float:
        """Total DC energy [J] harvested over a sampled power trace."""
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        p = self.harvested_power(input_power_watt)
        return float(np.sum(p) / sample_rate_hz)
