"""Envelope-detector front end (diode + RC network)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.envelope import square_law_detector
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnvelopeDetector:
    """Square-law detector with an RC smoothing stage.

    Attributes
    ----------
    sample_rate_hz:
        Simulation rate of the incoming baseband samples.
    smoothing_tau_seconds:
        RC time constant.  The design rule from the receiver chain is
        ``coherence time of ambient << tau << chip period``: long enough
        to iron out ambient envelope fluctuation, short enough to follow
        chip transitions.  ``None`` gives an ideal (unsmoothed) detector.
    responsivity:
        Detector output scale (V/W equivalent); purely multiplicative, so
        downstream adaptive thresholds are insensitive to it, but it is
        kept so fixed-threshold ablations see realistic magnitudes.
    """

    sample_rate_hz: float
    smoothing_tau_seconds: float | None = None
    responsivity: float = 1.0

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        if self.smoothing_tau_seconds is not None:
            check_positive("smoothing_tau_seconds", self.smoothing_tau_seconds)
        check_positive("responsivity", self.responsivity)

    def detect(self, x: np.ndarray) -> np.ndarray:
        """Smoothed envelope-power output for complex input samples."""
        env = square_law_detector(
            x, self.sample_rate_hz, self.smoothing_tau_seconds
        )
        return self.responsivity * env
