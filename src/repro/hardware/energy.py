"""Energy accounting for battery-free devices.

Two pieces:

* :class:`EnergyModel` — per-operation costs (transmit a bit, receive a
  bit, idle), calibrated to the microwatt scale of backscatter hardware:
  switching an RF transistor costs almost nothing, while running the
  receive chain (detector bias + comparator) dominates.
* :class:`EnergyLedger` — a running account of harvested and spent energy
  during a simulation, with the event log the energy benchmarks read.

The early-abort benefit claimed by the paper is an *energy* benefit: a
transmitter that keeps sending a doomed packet burns ``tx_bit_joule`` per
remaining bit, plus the receiver burns ``rx_bit_joule`` listening to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs [J].

    Defaults follow the ambient-backscatter hardware scale: ~0.25 µW
    transmit and ~0.5 µW receive power at 1 kbps give 0.25 nJ/bit and
    0.5 nJ/bit respectively; idle burns leakage three orders down.
    """

    tx_bit_joule: float = 0.25e-9
    rx_bit_joule: float = 0.5e-9
    idle_second_joule: float = 1.0e-9
    feedback_bit_joule: float = 0.25e-9

    def __post_init__(self) -> None:
        for name in ("tx_bit_joule", "rx_bit_joule", "idle_second_joule",
                     "feedback_bit_joule"):
            check_non_negative(name, getattr(self, name))

    def tx_cost(self, bits: int) -> float:
        """Energy to transmit ``bits`` data bits."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.tx_bit_joule * bits

    def rx_cost(self, bits: int) -> float:
        """Energy to receive ``bits`` data bits."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.rx_bit_joule * bits

    def idle_cost(self, seconds: float) -> float:
        """Leakage energy over an idle interval."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.idle_second_joule * seconds

    def feedback_cost(self, bits: int) -> float:
        """Energy to backscatter ``bits`` feedback bits."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.feedback_bit_joule * bits


@dataclass
class EnergyLedger:
    """Running account of one device's energy flows.

    ``spent`` and ``harvested`` accumulate in joules; ``events`` records
    ``(label, joules)`` pairs (positive = harvested, negative = spent)
    for post-hoc attribution in the energy benches.
    """

    spent_joule: float = 0.0
    harvested_joule: float = 0.0
    events: list[tuple[str, float]] = field(default_factory=list)

    def spend(self, label: str, joule: float) -> None:
        """Record consumption; negative amounts are rejected."""
        check_non_negative("joule", joule)
        self.spent_joule += joule
        self.events.append((label, -joule))

    def harvest(self, joule: float) -> None:
        """Record harvested energy."""
        check_non_negative("joule", joule)
        self.harvested_joule += joule
        self.events.append(("harvest", joule))

    @property
    def net_joule(self) -> float:
        """Harvested minus spent — positive means self-sustaining."""
        return self.harvested_joule - self.spent_joule

    def spent_by_label(self) -> dict[str, float]:
        """Total consumption per event label (harvest excluded)."""
        out: dict[str, float] = {}
        for label, amount in self.events:
            if amount < 0:
                out[label] = out.get(label, 0.0) + (-amount)
        return out

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's totals and events into this one."""
        self.spent_joule += other.spent_joule
        self.harvested_joule += other.harvested_joule
        self.events.extend(other.events)
