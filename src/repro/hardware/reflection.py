"""Antenna reflection states and the backscatter modulator.

A backscatter transmitter conveys bits by toggling its antenna impedance
between a matched (absorbing) and a deliberately mismatched (reflecting)
state.  The complex reflection coefficient Γ of each state sets the
amplitude of the re-radiated wave; its squared magnitude is the reflected
power fraction.

The modulator also reports the *through* fraction ``sqrt(1 - |Γ|²)`` of
each state: whatever is not reflected is available to the envelope
detector and the harvester.  A device that is currently reflecting
therefore hears less — the self-interference mechanism the full-duplex
design must (and does) tolerate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dsp.ops import repeat_samples
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class ReflectionStates:
    """The two impedance states of an OOK backscatter modulator.

    Attributes
    ----------
    absorb_gamma:
        Reflection amplitude in the "0" (matched) state.  Real hardware
        never reaches a perfect match; the small default models residual
        structural reflection.
    reflect_gamma:
        Reflection amplitude in the "1" (mismatched) state.  Practical
        switched-impedance tags reach |Γ| of 0.5–0.8; the default 0.75
        is the calibrated operating point used across the benchmarks.
    efficiency:
        Re-radiation efficiency of the antenna (ohmic losses), applied to
        the reflected amplitude.
    """

    absorb_gamma: float = 0.05
    reflect_gamma: float = 0.75
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        check_in_range("absorb_gamma", self.absorb_gamma, 0.0, 1.0)
        check_in_range("reflect_gamma", self.reflect_gamma, 0.0, 1.0)
        check_in_range("efficiency", self.efficiency, 0.0, 1.0)
        if self.reflect_gamma <= self.absorb_gamma:
            raise ValueError(
                "reflect_gamma must exceed absorb_gamma "
                f"({self.reflect_gamma} <= {self.absorb_gamma})"
            )

    def gamma_for(self, chip: int) -> float:
        """Effective reflection amplitude for a chip value (0 or 1)."""
        base = self.reflect_gamma if chip else self.absorb_gamma
        return base * self.efficiency

    def through_for(self, chip: int) -> float:
        """Amplitude fraction passed to the receive/harvest path."""
        gamma = self.reflect_gamma if chip else self.absorb_gamma
        return math.sqrt(max(0.0, 1.0 - gamma * gamma))

    def modulation_depth(self) -> float:
        """Reflected-power swing between the two states, the quantity the
        remote receiver's SNR is proportional to."""
        hi = (self.reflect_gamma * self.efficiency) ** 2
        lo = (self.absorb_gamma * self.efficiency) ** 2
        return hi - lo


@dataclass(frozen=True)
class ReflectionModulator:
    """Chip stream → sample-level reflection / through waveforms.

    Parameters
    ----------
    states:
        The two impedance states.
    samples_per_chip:
        Hold length of each chip at the simulation rate.
    """

    states: ReflectionStates = ReflectionStates()
    samples_per_chip: int = 1

    def __post_init__(self) -> None:
        if self.samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")

    def reflection_waveform(self, chips: np.ndarray) -> np.ndarray:
        """Instantaneous reflection amplitude Γ[n] for a chip stream."""
        chips = np.asarray(chips).astype(np.uint8)
        levels = np.where(
            chips > 0,
            self.states.gamma_for(1),
            self.states.gamma_for(0),
        ).astype(float)
        return repeat_samples(levels, self.samples_per_chip)

    def through_waveform(self, chips: np.ndarray) -> np.ndarray:
        """Instantaneous receive-path amplitude fraction for a chip
        stream (what the device's own detector is scaled by)."""
        chips = np.asarray(chips).astype(np.uint8)
        levels = np.where(
            chips > 0,
            self.states.through_for(1),
            self.states.through_for(0),
        ).astype(float)
        return repeat_samples(levels, self.samples_per_chip)
