"""Hysteresis comparator.

The last analog stage before digital logic: compares the detector output
against the threshold and adds hysteresis so envelope noise near the
threshold does not chatter.  Chatter-free slicing matters for the framing
layer, whose bit decisions integrate comparator output over a chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class HysteresisComparator:
    """Comparator with symmetric hysteresis around the threshold.

    Output switches high only when ``env > thr * (1 + hysteresis)`` and
    low only when ``env < thr * (1 - hysteresis)``; in between it holds
    its previous state.  ``hysteresis = 0`` reduces to a plain comparator.

    Attributes
    ----------
    hysteresis:
        Fractional dead band (e.g. 0.02 = ±2 %).
    initial_state:
        Output value before the first decisive sample.
    """

    hysteresis: float = 0.0
    initial_state: int = 0

    def __post_init__(self) -> None:
        check_non_negative("hysteresis", self.hysteresis)
        if self.initial_state not in (0, 1):
            raise ValueError("initial_state must be 0 or 1")

    def compare(self, envelope: np.ndarray, threshold: np.ndarray) -> np.ndarray:
        """Slice ``envelope`` against ``threshold`` with hysteresis."""
        env = np.asarray(envelope, dtype=float)
        thr = np.asarray(threshold, dtype=float)
        if env.shape != thr.shape:
            raise ValueError(
                f"envelope/threshold shape mismatch: {env.shape} vs {thr.shape}"
            )
        if self.hysteresis == 0.0:
            return (env > thr).astype(np.uint8)
        hi = thr * (1.0 + self.hysteresis)
        lo = thr * (1.0 - self.hysteresis)
        # Vectorised hysteresis: at each sample the output is forced high
        # (env > hi), forced low (env < lo), or held.  Forward-fill the
        # last forced value.
        forced = np.where(env > hi, 1, np.where(env < lo, 0, -1))
        out = np.empty(env.size, dtype=np.int64)
        last = self.initial_state
        decisive = forced >= 0
        if not decisive.any():
            return np.full(env.size, self.initial_state, dtype=np.uint8)
        # Indices of the most recent decisive sample at or before n.
        idx = np.where(decisive, np.arange(env.size), -1)
        np.maximum.accumulate(idx, out=idx)
        out = np.where(idx >= 0, forced[np.maximum(idx, 0)], last)
        return out.astype(np.uint8)
