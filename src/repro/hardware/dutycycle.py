"""Energy-neutral duty cycling.

A battery-free device stores harvested energy in a small capacitor and
must never let an operation run the store to zero mid-way (a brown-out
loses the packet *and* the device state).  The controller here
implements the standard reserve policy:

* energy arrives continuously at the measured harvest rate;
* an operation of estimated cost ``E`` may start only if the store can
  pay ``E`` and still hold ``reserve_joule`` afterwards;
* otherwise the device defers and keeps harvesting — the controller
  reports *when* enough energy will have accumulated.

The paper's energy argument lands exactly here: early abort reduces the
per-packet cost, which lowers the duty-cycle wait between transmissions
for the same harvest income.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative, check_positive


@dataclass
class EnergyNeutralController:
    """Capacitor-store admission controller.

    Attributes
    ----------
    capacity_joule:
        Storage capacity (a 100 µF capacitor charged 1.8→3.3 V stores
        ~380 nJ of usable energy; the default is that order).
    reserve_joule:
        Minimum store that must remain after admitting an operation
        (brown-out guard band).
    store_joule:
        Current stored energy (starts empty by default).
    """

    capacity_joule: float = 4e-7
    reserve_joule: float = 5e-8
    store_joule: float = 0.0
    deferred_ops: int = field(default=0, init=False)
    admitted_ops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_positive("capacity_joule", self.capacity_joule)
        check_non_negative("reserve_joule", self.reserve_joule)
        check_non_negative("store_joule", self.store_joule)
        if self.reserve_joule >= self.capacity_joule:
            raise ValueError("reserve must be below capacity")
        if self.store_joule > self.capacity_joule:
            raise ValueError("store cannot exceed capacity")

    def harvest(self, joule: float) -> None:
        """Add harvested energy (clipped at capacity)."""
        check_non_negative("joule", joule)
        self.store_joule = min(self.store_joule + joule, self.capacity_joule)

    def harvest_for(self, seconds: float, rate_watt: float) -> None:
        """Accumulate at a harvest rate for a duration."""
        check_non_negative("seconds", seconds)
        check_non_negative("rate_watt", rate_watt)
        self.harvest(seconds * rate_watt)

    def can_afford(self, cost_joule: float) -> bool:
        """Whether an operation of this cost may start now."""
        check_non_negative("cost_joule", cost_joule)
        return self.store_joule - cost_joule >= self.reserve_joule

    def admit(self, cost_joule: float) -> bool:
        """Try to start an operation: debits the store on success,
        records a deferral on failure."""
        if self.can_afford(cost_joule):
            self.store_joule -= cost_joule
            self.admitted_ops += 1
            return True
        self.deferred_ops += 1
        return False

    def wait_for(self, cost_joule: float, harvest_rate_watt: float) -> float:
        """Seconds of harvesting needed before ``cost_joule`` is
        affordable (0 when affordable now; ``inf`` when the cost exceeds
        what the store can ever hold)."""
        check_non_negative("cost_joule", cost_joule)
        if self.can_afford(cost_joule):
            return 0.0
        needed = cost_joule + self.reserve_joule
        if needed > self.capacity_joule:
            return float("inf")
        if harvest_rate_watt <= 0:
            return float("inf")
        deficit = needed - self.store_joule
        return deficit / harvest_rate_watt

    @property
    def headroom_joule(self) -> float:
        """Spendable energy above the reserve."""
        return max(0.0, self.store_joule - self.reserve_joule)

    @property
    def deferral_ratio(self) -> float:
        """Deferred / total admission attempts."""
        total = self.deferred_ops + self.admitted_ops
        return self.deferred_ops / total if total else 0.0


def sustainable_packet_rate(
    packet_cost_joule: float,
    harvest_rate_watt: float,
) -> float:
    """Long-run packets/second an energy-neutral device can sustain.

    The renewal bound ``harvest_rate / packet_cost``; the paper's
    energy claim in one number — early abort lowers the denominator.
    """
    check_positive("packet_cost_joule", packet_cost_joule)
    check_non_negative("harvest_rate_watt", harvest_rate_watt)
    return harvest_rate_watt / packet_cost_joule
