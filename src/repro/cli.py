"""Command-line interface: quick looks without writing a script.

Three subcommands, all printing plain-text reports::

    python -m repro.cli info                 # operating point + calibration
    python -m repro.cli ber --distance 1.0   # both directions' BER at a range
    python -m repro.cli mac --links 8        # protocol comparison table

The CLI exists so a downstream user can sanity-check an install and
explore the headline trade-offs before touching the API.
"""

from __future__ import annotations

import argparse

import numpy as np


def _make_stack(bit_rate_bps: float):
    from repro.ambient import OfdmLikeSource
    from repro.channel import ChannelModel
    from repro.fullduplex import FullDuplexConfig, FullDuplexLink
    from repro.phy import PhyConfig

    phy = PhyConfig(bit_rate_bps=bit_rate_bps)
    config = FullDuplexConfig(phy=phy)
    source = OfdmLikeSource(sample_rate_hz=phy.sample_rate_hz,
                            bandwidth_hz=200e3)
    return config, FullDuplexLink(config, source), ChannelModel(), source


def cmd_info(args: argparse.Namespace) -> int:
    """Print the operating point and the calibration report."""
    from repro.analysis.calibration import calibration_report

    config, _, channel, source = _make_stack(args.rate)
    phy = config.phy
    print("operating point")
    print(f"  data rate        : {phy.bit_rate_bps:.0f} bit/s "
          f"({phy.coding}, {phy.samples_per_chip} samples/chip)")
    print(f"  feedback rate    : {config.feedback_rate_bps:.2f} bit/s "
          f"(r = {config.asymmetry_ratio})")
    print(f"  sample rate      : {phy.sample_rate_hz:.0f} Hz")
    report = calibration_report(phy, source, channel, rng=0)
    print("calibration")
    print(f"  chip-mean rel std: {report.chip_mean_rel_std:.3f}")
    print(f"  modulation depth : {report.modulation_depth:.3f} (at 0.5 m)")
    print(f"  depth / floor    : {report.depth_over_floor:.1f}")
    print(f"  ambient over noise: {report.ambient_over_noise_db:.0f} dB")
    print(f"  healthy          : {report.healthy()}")
    return 0


def cmd_ber(args: argparse.Namespace) -> int:
    """Measure both directions' BER at one distance."""
    from repro.analysis.ber import measure_feedback_ber, measure_forward_ber
    from repro.channel import Scene

    _, link, channel, _ = _make_stack(args.rate)
    scene = Scene.two_device_line(device_separation_m=args.distance)
    fwd = measure_forward_ber(
        link, channel, scene, bits_per_trial=256,
        min_errors=20, max_trials=args.trials, min_trials=5, rng=args.seed,
    )
    fb = measure_feedback_ber(
        link, channel, scene, bits_per_trial=256,
        min_errors=20, max_trials=args.trials, min_trials=5, rng=args.seed,
    )
    print(f"distance {args.distance} m, rate {args.rate:.0f} bit/s")
    print(f"  forward  BER: {fwd}")
    print(f"  feedback BER: {fb}")
    return 0


def cmd_mac(args: argparse.Namespace) -> int:
    """Run the protocol comparison on one contention scenario."""
    from repro.analysis.reporting import format_table
    from repro.mac.node import run_policy_comparison, standard_policies
    from repro.mac.resume import ResumeFromAbortPolicy
    from repro.mac.simulator import SimulationConfig
    from repro.mac.traffic import BernoulliLoss

    cfg = SimulationConfig(
        num_links=args.links,
        arrival_rate_pps=args.load,
        horizon_seconds=args.horizon,
        payload_bytes=64,
        loss=BernoulliLoss(args.loss),
    )
    policies = standard_policies()
    policies["fd-resume"] = lambda: ResumeFromAbortPolicy()
    results = run_policy_comparison(cfg, policies=policies, seed=args.seed)
    rows = [
        (name,
         m.goodput_bps,
         m.delivery_ratio,
         m.energy_per_delivered_bit * 1e9,
         m.abort_fraction)
        for name, m in results.items()
    ]
    print(format_table(
        ["policy", "goodput_bps", "delivery", "nJ_per_bit", "aborts"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full Duplex Backscatter (HotNets 2013) reproduction",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="operating point + calibration")
    p_info.add_argument("--rate", type=float, default=1000.0,
                        help="data rate [bit/s]")
    p_info.set_defaults(func=cmd_info)

    p_ber = sub.add_parser("ber", help="BER at one distance")
    p_ber.add_argument("--distance", type=float, default=1.0,
                       help="tag separation [m]")
    p_ber.add_argument("--rate", type=float, default=1000.0)
    p_ber.add_argument("--trials", type=int, default=15)
    p_ber.set_defaults(func=cmd_ber)

    p_mac = sub.add_parser("mac", help="protocol comparison")
    p_mac.add_argument("--links", type=int, default=8)
    p_mac.add_argument("--load", type=float, default=0.3,
                       help="packet arrivals per second per link")
    p_mac.add_argument("--loss", type=float, default=0.1)
    p_mac.add_argument("--horizon", type=float, default=120.0)
    p_mac.set_defaults(func=cmd_mac)
    return parser


def main(argv=None) -> int:
    """Entry point (``python -m repro.cli``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
