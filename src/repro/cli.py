"""Command-line interface: quick looks without writing a script.

Every subcommand is driven by the scenario registry — pick a named
deployment scene with ``--scenario`` and override individual knobs with
flags::

    python -m repro scenario list            # what scenes exist
    python -m repro scenario show far-edge   # one scene as JSON
    python -m repro info                     # operating point + calibration
    python -m repro ber --distance 1.0       # both directions' BER
    python -m repro mac --scenario dense-mac # protocol comparison table
    python -m repro sweep --param distance_m --values 0.5,1,2 \\
        --metric forward-ber --workers 4     # registry-driven sweep
    python -m repro campaign run fig-ber-vs-distance --workers 4
    python -m repro campaign report fig-ber-vs-distance

Campaigns persist through the content-addressed result store
(``~/.cache/repro`` by default; override with ``--store PATH`` or
``$REPRO_STORE``): a re-run is pure cache hits, a killed run resumes
where it stopped, and ``--trials`` tops stored prefixes up instead of
recomputing them.

The CLI exists so a downstream user can sanity-check an install and
explore the headline trade-offs before touching the API.
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import fields

log = logging.getLogger("repro.cli")


def _cli_error(message) -> SystemExit:
    """Print a clean error and return the SystemExit to raise.

    Used for bad user input (unknown scenario names, invalid knob
    values) where a traceback would bury the message; genuine library
    bugs still propagate with their traceback.
    """
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _get_scenario_or_exit(name: str):
    from repro.experiments import get_scenario

    try:
        return get_scenario(name)
    except ValueError as exc:
        raise _cli_error(exc) from None


def _replace_or_exit(spec, **overrides):
    try:
        return spec.replace(**overrides)
    except ValueError as exc:
        raise _cli_error(exc) from None


def _load_spec(args: argparse.Namespace):
    """The selected scenario spec with any CLI overrides applied."""
    spec = _get_scenario_or_exit(args.scenario)
    overrides = {}
    if getattr(args, "rate", None) is not None:
        overrides["bit_rate_bps"] = args.rate
    if getattr(args, "distance", None) is not None:
        overrides["distance_m"] = args.distance
    return _replace_or_exit(spec, **overrides) if overrides else spec


def cmd_info(args: argparse.Namespace) -> int:
    """Print the operating point and the calibration report."""
    from repro.analysis.calibration import calibration_report

    spec = _load_spec(args)
    stack = spec.build()
    config, phy = stack.config, stack.config.phy
    print(f"scenario: {spec.name}")
    print("operating point")
    print(f"  data rate        : {phy.bit_rate_bps:.0f} bit/s "
          f"({phy.coding}, {phy.samples_per_chip} samples/chip)")
    print(f"  feedback rate    : {config.feedback_rate_bps:.2f} bit/s "
          f"(r = {config.asymmetry_ratio})")
    print(f"  sample rate      : {phy.sample_rate_hz:.0f} Hz")
    report = calibration_report(phy, stack.source, stack.channel, rng=0)
    print("calibration")
    print(f"  chip-mean rel std: {report.chip_mean_rel_std:.3f}")
    print(f"  modulation depth : {report.modulation_depth:.3f} (at 0.5 m)")
    print(f"  depth / floor    : {report.depth_over_floor:.1f}")
    print(f"  ambient over noise: {report.ambient_over_noise_db:.0f} dB")
    print(f"  healthy          : {report.healthy()}")
    return 0


def cmd_ber(args: argparse.Namespace) -> int:
    """Measure both directions' BER at one distance."""
    from repro.analysis.ber import BerEstimate
    from repro.experiments import (
        ExperimentRunner,
        error_budget,
        feedback_ber_trial,
        forward_ber_trial,
    )

    spec = _load_spec(args)

    def measure(trial) -> BerEstimate:
        try:
            runner = ExperimentRunner(
                trial=trial, max_trials=args.trials,
                min_trials=min(5, args.trials),
                stop_when=error_budget(20), workers=args.workers,
                backend=args.backend,
            )
        except ValueError as exc:
            raise _cli_error(exc) from None
        table = runner.run(spec, seed=args.seed)
        return BerEstimate(errors=int(table.sum("errors")),
                           trials=int(table.sum("bits")))

    print(f"scenario {spec.name}: distance {spec.distance_m} m, "
          f"rate {spec.bit_rate_bps:.0f} bit/s")
    print(f"  forward  BER: {measure(forward_ber_trial)}")
    print(f"  feedback BER: {measure(feedback_ber_trial)}")
    return 0


def cmd_mac(args: argparse.Namespace) -> int:
    """Replicated protocol comparison on one contention scenario.

    Each policy arm runs ``--trials`` seeded replications through
    :class:`~repro.experiments.runner.ExperimentRunner` (same root seed
    per arm, so the workload realisation is paired across arms) and the
    table reports pooled statistics with Wilson bounds on delivery.
    """
    from repro.analysis.contention import summarize_mac_table
    from repro.analysis.reporting import format_table
    from repro.experiments import (
        MAC_POLICY_KINDS,
        ExperimentRunner,
        mac_trial,
        precision_budget,
        run_mac_arms,
    )

    spec = _load_spec(args)
    overrides = {
        "mac_num_links": args.links,
        "mac_arrival_rate_pps": args.load,
        "mac_loss_probability": args.loss,
        "mac_horizon_seconds": args.horizon,
    }
    spec = _replace_or_exit(
        spec, **{k: v for k, v in overrides.items() if v is not None}
    )
    arms = [p for p in (s.strip() for s in args.policy.split(",")) if p]
    unknown = [p for p in arms if p not in MAC_POLICY_KINDS]
    if unknown:
        raise _cli_error(
            f"unknown policy arm(s) {unknown}; "
            f"choose from {sorted(MAC_POLICY_KINDS)}"
        )
    try:
        runner = ExperimentRunner(
            trial=mac_trial, max_trials=args.trials,
            min_trials=min(2, args.trials), workers=args.workers,
            backend=args.backend,
            stop_when=(
                precision_budget(args.precision)
                if args.precision is not None else None
            ),
        )
    except ValueError as exc:
        raise _cli_error(exc) from None
    results = run_mac_arms(spec, arms, runner=runner, seed=args.seed)
    rows = []
    for arm, table in results.items():
        s = summarize_mac_table(table)
        rows.append((
            arm,
            len(table),
            s.goodput_bps,
            s.delivery_ratio,
            f"[{s.delivery_lo:.3f}, {s.delivery_hi:.3f}]",
            s.mean_latency_seconds,
            s.energy_per_delivered_bit * 1e9,
            s.abort_fraction,
        ))
    budget = (f"up to {args.trials}" if args.precision is not None
              else f"{args.trials}")
    print(f"scenario {spec.name}: {spec.mac_num_links} links, "
          f"{spec.mac_arrival_rate_pps} pkt/s/link, "
          f"loss {spec.mac_loss_probability}, "
          f"{budget} replication(s)/arm, seed {args.seed}")
    print(format_table(
        ["policy", "trials", "goodput_bps", "delivery", "delivery_95ci",
         "latency_s", "nJ_per_bit", "aborts"],
        rows,
    ))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """List the registry or dump one scenario as JSON."""
    import json

    from repro.analysis.reporting import format_table
    from repro.experiments.registry import describe_scenarios

    if args.action == "list":
        print(format_table(["scenario", "description"],
                           describe_scenarios()))
        return 0
    print(json.dumps(_get_scenario_or_exit(args.name).to_dict(), indent=2))
    return 0


#: CLI metric names — the shared trial-kind vocabulary (the same names
#: key the campaign layer and the result store; see
#: :data:`repro.experiments.TRIAL_KINDS`).  Listed statically so parser
#: construction does not import the experiments package;
#: tests/test_campaigns.py asserts the two stay equal.
SWEEP_METRICS = (
    "forward-ber",
    "feedback-ber",
    "frame-delivery",
    "energy",
    "mac",
)

#: Metric names whose records carry ``errors``/``bits`` tallies — the
#: kinds an error-budget stop rule applies to.
ERROR_METRICS = ("forward-ber", "feedback-ber", "frame-delivery")

#: Metric names with a batched implementation registered in
#: :mod:`repro.experiments.batch` (kept in sync with its
#: ``_BATCH_TRIALS`` table).  Since the slotted MAC engine landed this
#: is every sweep metric: the error/energy kinds are bitwise identical
#: to serial, ``mac`` is statistically equivalent (DESIGN §7).
VECTORIZABLE_METRICS = SWEEP_METRICS


def _parse_sweep_values(parameter: str, text: str) -> list:
    """Comma-separated values, typed by the spec field being swept."""
    from repro.experiments import ScenarioSpec

    by_name = {f.name: f for f in fields(ScenarioSpec)}
    if parameter not in by_name:
        raise _cli_error(
            f"unknown sweep parameter {parameter!r}; "
            "choose a ScenarioSpec field"
        )
    kind = by_name[parameter].type
    items = [v for v in (s.strip() for s in text.split(",")) if v]
    if not items:
        raise _cli_error("--values must name at least one value")
    if kind in ("int", "float"):
        cast = int if kind == "int" else float
        try:
            return [cast(v) for v in items]
        except ValueError:
            raise _cli_error(
                f"{parameter} values must be {kind}, got {text!r}"
            ) from None
    if kind == "bool":
        flags = {"true": True, "false": False, "1": True, "0": False}
        try:
            return [flags[v.lower()] for v in items]
        except KeyError as exc:
            raise _cli_error(
                f"{parameter} values must be true/false, "
                f"got {exc.args[0]!r}"
            ) from None
    return items


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep one scenario knob, printing (and optionally saving) a table."""
    import pathlib

    from repro.experiments import (
        TRIAL_AGGREGATES,
        TRIAL_KINDS,
        ExperimentRunner,
        error_budget,
    )

    spec = _load_spec(args)
    values = _parse_sweep_values(args.param, args.values)
    for value in values:  # reject bad knob values before spending trials
        _replace_or_exit(spec, **{args.param: value})
    trial = TRIAL_KINDS[args.metric]
    # Only the error/bit-tally kinds have an error budget to stop on;
    # MAC replications are fixed-horizon simulations and energy trials
    # carry joule columns, so both always run the full budget.
    has_error_budget = args.metric in ERROR_METRICS
    aggregate = TRIAL_AGGREGATES[args.metric]
    try:
        runner = ExperimentRunner(
            trial=trial, max_trials=args.trials,
            min_trials=min(5, args.trials),
            stop_when=(
                error_budget(args.min_errors) if has_error_budget else None
            ),
            workers=args.workers,
            backend=args.backend,
        )
    except ValueError as exc:
        raise _cli_error(exc) from None
    table = runner.sweep(spec, args.param, values, seed=args.seed,
                         aggregate=aggregate)
    print(f"scenario {spec.name}: {args.metric} vs {args.param} "
          f"({args.trials} trials/point, "
          f"{runner.resolved_backend()} backend)")
    print(table.format())
    if args.json:
        pathlib.Path(args.json).write_text(table.to_json() + "\n")
        print(f"wrote {args.json}")
    if args.csv:
        pathlib.Path(args.csv).write_text(table.to_csv())
        print(f"wrote {args.csv}")
    return 0


def _get_campaign_or_exit(name: str):
    from repro.campaigns import get_campaign

    try:
        return get_campaign(name)
    except ValueError as exc:
        raise _cli_error(exc) from None


def _campaign_runner(args):
    from repro.campaigns import CampaignRunner
    from repro.store import ResultStore

    return CampaignRunner(
        store=ResultStore(args.store),
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", None),
    )


def _run_adaptive(args, runner, camp, format_table) -> int:
    """``campaign run --adaptive``: Wilson-width-driven allocation."""
    from repro.campaigns import adaptive_run
    from repro.campaigns.adaptive import adaptive_checkpoint_path

    def ticker(round_index, budgets, widths):
        if getattr(args, "verbosity", 0) < 0:
            return
        print(f"  round {round_index}: {sum(budgets)} trials allocated, "
              f"max width {max(widths):.4f}")

    try:
        result = adaptive_run(
            runner, camp,
            precision=args.precision,
            budget=args.budget,
            n_initial=args.trials,
            seed=args.campaign_seed,
            progress=ticker,
        )
    except ValueError as exc:
        raise _cli_error(exc) from None
    rows = [
        (cell.unit.label(), cell.n_trials, f"{cell.width:.4f}")
        for cell in result.cells
    ]
    print(format_table(["unit", "n_trials", "wilson_width"], rows))
    verdict = "converged" if result.converged else "budget exhausted"
    print(f"campaign {camp.name} (adaptive): {verdict} after "
          f"{result.rounds} round(s), {result.total_trials} trials "
          f"allocated ({result.trials_computed} computed), "
          f"max width {result.max_width:.4f}, store {runner.store.root}")
    print(f"checkpoint: {adaptive_checkpoint_path(runner, camp)}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Named paper-figure campaigns over the result store.

    ``run`` executes every unit store-first (re-runs are cache hits,
    killed runs resume, a raised ``--trials`` tops stored prefixes up);
    ``status`` inspects the store without running anything; ``report``
    renders the aggregate tables from the store alone.
    """
    import json

    from repro.analysis.reporting import format_table
    from repro.campaigns import MissingUnitsError, describe_campaigns

    if args.action == "list":
        print(format_table(["campaign", "description"],
                           describe_campaigns()))
        return 0
    camp = _get_campaign_or_exit(args.name)
    if args.action == "show":
        print(json.dumps(camp.to_dict(), indent=2))
        return 0

    runner = _campaign_runner(args)
    overrides = {"n_trials": args.trials, "seed": args.campaign_seed}
    if args.action == "run" and getattr(args, "adaptive", False):
        return _run_adaptive(args, runner, camp, format_table)
    if args.action == "run":
        if args.precision is not None or args.budget is not None:
            raise _cli_error(
                "--precision/--budget require --adaptive"
            )
        try:
            total = len(camp.units(**overrides))
        except ValueError as exc:
            raise _cli_error(exc) from None

        done = 0

        def ticker(unit, outcome):
            nonlocal done
            done += 1
            if getattr(args, "verbosity", 0) < 0:
                return
            extra = (f" (+{outcome.trials_computed} trials)"
                     if outcome.trials_computed else "")
            print(f"  [{done}/{total}] {unit.label()}: "
                  f"{outcome.outcome}{extra}")

        try:
            result = runner.run(camp, progress=ticker, **overrides)
        except ValueError as exc:
            raise _cli_error(exc) from None
        counts = ", ".join(
            f"{n} {outcome}" for outcome, n in
            sorted(result.outcome_counts().items())
        )
        print(f"campaign {camp.name}: {len(result.units)} units ({counts}), "
              f"{result.trials_computed} trials computed, "
              f"store {runner.store.root}")
        print(f"checkpoint: {runner.checkpoint_path(camp)}")
        return 0
    if args.action == "status":
        try:
            status = runner.status(camp, **overrides)
        except ValueError as exc:
            raise _cli_error(exc) from None
        print(f"campaign {camp.name}: {status['total_units']} units at "
              f"{status['n_trials']} trial(s)/unit, seed {status['seed']}, "
              f"store {runner.store.root}")
        rows = [
            (kind, slot["cached"], slot["reusable"], slot["missing"])
            for kind, slot in sorted(status["per_kind"].items())
        ]
        rows.append(("total", status["cached"], status["reusable"],
                     status["missing"]))
        print(format_table(["kind", "cached", "reusable", "missing"], rows))
        return 0
    # report
    try:
        tables = runner.report(camp, **overrides)
    except (MissingUnitsError, ValueError) as exc:
        raise _cli_error(exc) from None
    for kind, table in tables.items():
        print(f"campaign {camp.name} · {kind} "
              f"({table.metadata['n_trials']} trials/unit)")
        print(table.format())
        print()
    if args.json:
        import pathlib

        doc = {
            kind: json.loads(table.to_json())
            for kind, table in tables.items()
        }
        pathlib.Path(args.json).write_text(
            json.dumps(doc, indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Summarize a JSON-lines trace as a run report."""
    import pathlib

    from repro.obs import report_from_trace

    try:
        report = report_from_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        raise _cli_error(exc) from None
    print(report.to_text())
    if args.json:
        pathlib.Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Lazy: the linter pulls in ast/tokenize machinery no simulation
    # command needs (same rationale as the lazy batch exports).
    from repro.lint.cli import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Full Duplex Backscatter (HotNets 2013) reproduction",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on stderr (-v info, "
                             "-vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less output: errors only on stderr, "
                             "progress tickers suppressed")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p):
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="record a JSON-lines span trace of this run "
                            "to FILE (summarize with `repro obs report`)")
        p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the run's metrics snapshot "
                            "(counters/gauges/histograms) as JSON to FILE")

    def add_scenario_flag(p):
        p.add_argument("--scenario", default="calibrated-default",
                       help="named scenario preset (see `scenario list`)")

    p_info = sub.add_parser("info", help="operating point + calibration")
    add_scenario_flag(p_info)
    p_info.add_argument("--rate", type=float, default=None,
                        help="data rate [bit/s] (overrides the scenario)")
    p_info.set_defaults(func=cmd_info)

    def add_backend_flag(p):
        p.add_argument("--backend",
                       choices=["serial", "parallel", "vectorized"],
                       default=None,
                       help="trial execution backend (default: serial, "
                            "or parallel when --workers > 1)")

    p_ber = sub.add_parser(
        "ber",
        help="BER at the scenario's distance",
        description="Measure both directions' BER at the selected "
        "scenario's operating point.  Since the scenario registry "
        "landed, the measurement runs at the scenario's own distance_m "
        "(0.5 m for calibrated-default) rather than a fixed 1.0 m; pass "
        "--distance to override it explicitly.",
    )
    add_scenario_flag(p_ber)
    p_ber.add_argument("--distance", type=float, default=None,
                       help="tag separation [m] (overrides the scenario's "
                            "distance_m)")
    p_ber.add_argument("--rate", type=float, default=None)
    p_ber.add_argument("--trials", type=int, default=15)
    p_ber.add_argument("--workers", type=int, default=1,
                       help="parallel trial processes (default serial)")
    add_backend_flag(p_ber)
    p_ber.set_defaults(func=cmd_ber)

    p_mac = sub.add_parser(
        "mac",
        help="replicated protocol comparison",
        description="Compare link-layer policy arms on one contention "
        "scenario: each arm runs --trials seeded replications through "
        "the experiment runner (paired seeds across arms) and the table "
        "pools them with Wilson bounds on delivery.",
    )
    add_scenario_flag(p_mac)
    p_mac.add_argument("--links", type=int, default=None)
    p_mac.add_argument("--load", type=float, default=None,
                       help="mean packet arrivals per second per link")
    p_mac.add_argument("--loss", type=float, default=None)
    p_mac.add_argument("--horizon", type=float, default=None)
    p_mac.add_argument("--policy",
                       default="no-arq,hd-arq,fd-abort,fd-resume",
                       help="comma-separated policy arms to run "
                            "(default: all four)")
    p_mac.add_argument("--trials", type=int, default=3,
                       help="replications per policy arm (default 3)")
    p_mac.add_argument("--workers", type=int, default=1,
                       help="parallel trial processes (default serial)")
    add_backend_flag(p_mac)
    p_mac.add_argument("--precision", type=float, default=None,
                       help="stop an arm early once delivery is known "
                            "to +/- this half-width (95%% Wilson)")
    add_obs_flags(p_mac)
    p_mac.set_defaults(func=cmd_mac)

    p_scen = sub.add_parser("scenario", help="inspect the scenario registry")
    scen_sub = p_scen.add_subparsers(dest="action", required=True)
    p_list = scen_sub.add_parser("list", help="table of named scenarios")
    p_list.set_defaults(func=cmd_scenario, action="list")
    p_show = scen_sub.add_parser("show", help="one scenario as JSON")
    p_show.add_argument("name")
    p_show.set_defaults(func=cmd_scenario, action="show")

    p_sweep = sub.add_parser("sweep", help="sweep one scenario knob")
    add_scenario_flag(p_sweep)
    p_sweep.add_argument("--param", default="distance_m",
                         help="ScenarioSpec field to sweep")
    p_sweep.add_argument("--values", required=True,
                         help="comma-separated values, e.g. 0.5,1,2")
    p_sweep.add_argument("--metric", choices=sorted(SWEEP_METRICS),
                         default="forward-ber")
    p_sweep.add_argument("--trials", type=int, default=10,
                         help="max trials per sweep point")
    p_sweep.add_argument("--min-errors", type=int, default=20,
                         help="error budget for early stopping")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="parallel trial processes (default serial)")
    add_backend_flag(p_sweep)
    p_sweep.add_argument("--json", default=None,
                         help="also write the table as JSON to this path")
    p_sweep.add_argument("--csv", default=None,
                         help="also write the table as CSV to this path")
    add_obs_flags(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_camp = sub.add_parser(
        "campaign",
        help="resumable paper-figure campaigns over the result store",
        description="Run, inspect and report named measurement "
        "campaigns (grids of scenario knobs x trial kinds x policy "
        "arms).  Results persist in a content-addressed store, so "
        "re-running a campaign is pure cache hits, a killed run "
        "resumes where it stopped, and raising --trials computes only "
        "the missing trial suffix of each stored unit (top-up).  "
        "`report` renders the aggregate tables from the store alone.",
    )
    camp_sub = p_camp.add_subparsers(dest="action", required=True)
    p_clist = camp_sub.add_parser("list", help="table of named campaigns")
    p_clist.set_defaults(func=cmd_campaign, action="list")
    p_cshow = camp_sub.add_parser("show", help="one campaign as JSON")
    p_cshow.add_argument("name")
    p_cshow.set_defaults(func=cmd_campaign, action="show")

    def add_campaign_flags(p):
        p.add_argument("name", help="campaign name (see `campaign list`)")
        p.add_argument("--store", default=None,
                       help="result store directory (default "
                            "$REPRO_STORE or ~/.cache/repro)")
        p.add_argument("--trials", type=int, default=None,
                       help="override the campaign's trials/unit "
                            "(higher values top up stored results)")
        p.add_argument("--seed", type=int, default=None,
                       dest="campaign_seed",
                       help="override the campaign's root seed "
                            "(default: the campaign's own)")

    p_crun = camp_sub.add_parser(
        "run", help="execute the campaign, store-first")
    add_campaign_flags(p_crun)
    p_crun.add_argument("--workers", type=int, default=1,
                        help="parallel trial processes per unit "
                             "(default serial)")
    add_backend_flag(p_crun)
    p_crun.add_argument("--adaptive", action="store_true",
                        help="allocate trials adaptively: grow the "
                             "budget of the grid cells with the widest "
                             "Wilson intervals (successive halving) "
                             "instead of spending --trials uniformly; "
                             "--trials becomes the per-cell floor")
    p_crun.add_argument("--precision", type=float, default=None,
                        help="with --adaptive: stop once every cell's "
                             "pooled proportion is known to +/- this "
                             "95%% Wilson half-width")
    p_crun.add_argument("--budget", type=int, default=None,
                        help="with --adaptive: cap on the summed "
                             "per-cell trial budgets")
    add_obs_flags(p_crun)
    p_crun.set_defaults(func=cmd_campaign, action="run")

    p_cstat = camp_sub.add_parser(
        "status", help="what the store already holds (runs nothing)")
    add_campaign_flags(p_cstat)
    p_cstat.set_defaults(func=cmd_campaign, action="status")

    p_crep = camp_sub.add_parser(
        "report", help="aggregate tables from the store alone")
    add_campaign_flags(p_crep)
    p_crep.add_argument("--json", default=None,
                        help="also write the report (all kinds) as JSON "
                             "to this path")
    p_crep.set_defaults(func=cmd_campaign, action="report")

    p_obs = sub.add_parser(
        "obs",
        help="observability: summarize recorded traces",
        description="Work with the observability layer's artifacts. "
        "`report` aggregates a JSON-lines trace (recorded with the "
        "--trace flag on `campaign run`, `mac`, or `sweep`) into "
        "per-span timing statistics plus, for campaign traces, the "
        "store-hit / trials-computed accounting.",
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_oreport = obs_sub.add_parser(
        "report", help="summarize a JSON-lines trace")
    # dest is NOT "trace": main() treats an args.trace attribute as the
    # record-a-trace flag, and reporting must never open its input for
    # writing.
    p_oreport.add_argument("trace_file", metavar="TRACE",
                           help="trace file written by --trace")
    p_oreport.add_argument("--json", default=None,
                           help="also write the report as JSON to this "
                                "path")
    p_oreport.set_defaults(func=cmd_obs, action="report")

    p_lint = sub.add_parser(
        "lint",
        help="determinism & serialization static analysis",
        description="Run the repro-specific AST linter (RNG discipline, "
        "determinism hazards, canonical-serialization rules, API "
        "hygiene) over the given paths.  Exit status 0 means no active "
        "findings; suppressed findings (`# repro: noqa[RULE]`) are "
        "reported but do not fail the run.",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv=None) -> int:
    """Entry point (``python -m repro`` / the ``repro`` console script).

    Applies the global ``-v``/``-q`` verbosity to the ``repro.*``
    logger hierarchy, and — when the subcommand carries ``--trace`` or
    ``--metrics`` — brackets the command in an observability session,
    writing the requested artifacts on the way out (even if the
    command fails, so a crashed run still leaves its partial trace).
    """
    args = build_parser().parse_args(argv)
    args.verbosity = args.verbose - args.quiet
    from repro.obs import configure_logging

    configure_logging(args.verbosity)
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    if trace is None and metrics is None:
        return args.func(args)

    import pathlib

    from repro import obs

    obs.start(trace_path=trace)
    try:
        code = args.func(args)
    finally:
        session = obs.stop()
        if metrics is not None:
            pathlib.Path(metrics).write_text(
                session.metrics.to_json() + "\n"
            )
        if args.verbosity >= 0:
            if trace is not None:
                print(f"wrote {trace}")
            if metrics is not None:
                print(f"wrote {metrics}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
