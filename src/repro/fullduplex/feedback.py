"""The low-rate feedback channel.

Encoding (at the data *receiver*, device B): each feedback bit is
Manchester-coded at ``1/r`` of the data rate — bit 1 reflects during the
first half and absorbs during the second, bit 0 the opposite.  Manchester
keeps the feedback DC-balanced, so B's slow switching averages out of A's
(and any third party's) data-band receive chains.

Decoding (at the data *transmitter*, device A): A integrates its detector
output over each feedback half-bit and compares the two halves — the same
differential trick as the data channel, but with ``r/2`` data-bit periods
of averaging per half, which is where the feedback channel's robustness
comes from.  In ``"gated"`` mode A uses only the samples where its own
modulator is absorbing, sidestepping its own (much stronger and perfectly
known) transmission entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.selfinterference import own_off_mask


def feedback_bits_for_frame(frame_samples: int, config: FullDuplexConfig) -> int:
    """Feedback bits that fit alongside a data transmission of
    ``frame_samples`` samples (the last partial bit is dropped — a
    partial feedback bit cannot be decoded)."""
    if frame_samples < 0:
        raise ValueError("frame_samples must be non-negative")
    return frame_samples // config.samples_per_feedback_bit


def feedback_waveform(bits: np.ndarray, config: FullDuplexConfig) -> np.ndarray:
    """Feedback bit array → 0/1 switching waveform at the sample rate.

    Manchester at the feedback scale: bit 1 → reflect-then-absorb,
    bit 0 → absorb-then-reflect, each half ``r/2`` data bits long.
    """
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must contain only 0 and 1")
    half = config.samples_per_feedback_half
    out = np.empty(arr.size * 2 * half, dtype=np.uint8)
    for i, b in enumerate(arr.astype(np.uint8)):
        start = i * 2 * half
        out[start : start + half] = b
        out[start + half : start + 2 * half] = 1 - b
    return out


@dataclass
class FeedbackDecoder:
    """Feedback demodulator at the data transmitter.

    Attributes
    ----------
    config:
        Full-duplex parameters (asymmetry ratio, decode mode).
    """

    config: FullDuplexConfig

    def half_means(
        self,
        envelope: np.ndarray,
        num_bits: int,
        own_chip_waveform: np.ndarray | None = None,
        start_sample: int = 0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-feedback-bit (first-half, second-half) gated envelope means
        — the decoder's soft decision variables."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        env = np.asarray(envelope, dtype=float)
        if start_sample < 0:
            raise ValueError("start_sample must be non-negative")
        half = self.config.samples_per_feedback_half
        needed = start_sample + num_bits * 2 * half
        if env.size < needed:
            raise ValueError(
                f"envelope too short: need {needed} samples, have {env.size}"
            )
        if self.config.feedback_decode == "gated":
            if own_chip_waveform is None:
                raise ValueError('"gated" decode requires own_chip_waveform')
            mask = own_off_mask(own_chip_waveform)
            if mask.shape != env.shape:
                raise ValueError(
                    "own chip waveform length must match the envelope"
                )
        else:
            mask = np.ones(env.size, dtype=bool)
        firsts = np.empty(num_bits, dtype=float)
        seconds = np.empty(num_bits, dtype=float)
        for i in range(num_bits):
            h1 = slice(start_sample + i * 2 * half,
                       start_sample + i * 2 * half + half)
            h2 = slice(h1.stop, h1.stop + half)
            firsts[i] = _masked_mean(env[h1], mask[h1])
            seconds[i] = _masked_mean(env[h2], mask[h2])
        return firsts, seconds

    def decode(
        self,
        envelope: np.ndarray,
        num_bits: int,
        own_chip_waveform: np.ndarray | None = None,
        start_sample: int = 0,
        pilot_bits: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode ``num_bits`` feedback bits from a detector envelope.

        Parameters
        ----------
        envelope:
            A's detector output over the exchange (already including A's
            own self-gating, which ``"gated"`` mode masks out).
        num_bits:
            Feedback bits to decode.
        own_chip_waveform:
            A's own transmit chips at sample rate; required for
            ``"gated"`` mode, optional for ``"raw"``.
        start_sample:
            Sample where the feedback stream begins (A aligns it to its
            own frame start, which it trivially knows).
        pilot_bits:
            Known prefix of the feedback stream used to resolve the
            backscatter polarity sign (reflect may *lower* A's envelope
            when the dyadic path adds destructively — the same physics
            as :class:`repro.phy.sync.SyncResult.polarity`).  Without a
            pilot, positive polarity is assumed.
        """
        firsts, seconds = self.half_means(
            envelope, num_bits, own_chip_waveform, start_sample
        )
        positive = (firsts > seconds).astype(np.uint8)
        if pilot_bits is None:
            return positive
        pilot = np.asarray(pilot_bits).astype(np.uint8)
        if pilot.size == 0 or pilot.size > num_bits:
            raise ValueError("pilot must be a non-empty prefix of the bits")
        # Matched-filter polarity decision: correlate the soft margins of
        # the pilot slots against the known pilot signs.  Soft beats
        # hard-bit voting for short pilots (no ties, weights strong slots
        # more).
        margins = (firsts - seconds)[: pilot.size]
        signs = pilot.astype(float) * 2.0 - 1.0
        score = float(np.dot(margins, signs))
        if score >= 0:
            return positive
        return (1 - positive).astype(np.uint8)

    def soft_margins(
        self,
        envelope: np.ndarray,
        num_bits: int,
        own_chip_waveform: np.ndarray | None = None,
        start_sample: int = 0,
    ) -> np.ndarray:
        """Per-bit normalised decision margins ``(h1 - h2) / mean`` —
        diagnostics for the asymmetry-ratio bench (F3)."""
        env = np.asarray(envelope, dtype=float)
        overall = env.mean() if env.size else 1.0
        firsts, seconds = self.half_means(
            env, num_bits, own_chip_waveform, start_sample
        )
        if not overall:
            return np.zeros(num_bits, dtype=float)
        return (firsts - seconds) / overall


def _masked_mean(values: np.ndarray, mask: np.ndarray) -> float:
    """Mean over masked-in samples; falls back to the plain mean when the
    mask empties the window (own modulator on for the whole half — only
    possible in pathological configs)."""
    selected = values[mask]
    if selected.size == 0:
        return float(values.mean()) if values.size else 0.0
    return float(selected.mean())


def repeat_feedback_pattern(
    pattern: np.ndarray, num_bits: int
) -> np.ndarray:
    """Tile a short feedback pattern out to ``num_bits`` bits (protocol
    streams repeat an ACK pattern until an event flips them)."""
    arr = np.asarray(pattern).astype(np.uint8)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("pattern must be a non-empty 1-D array")
    reps = math.ceil(num_bits / arr.size)
    return np.tile(arr, reps)[:num_bits]
