"""Full-duplex link configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.config import PhyConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FullDuplexConfig:
    """Parameters of one full-duplex exchange.

    Attributes
    ----------
    phy:
        Data-direction PHY (rates, coding, windows).
    asymmetry_ratio:
        ``r`` — data bits per feedback bit, the paper's central dial.
        Each feedback bit occupies ``r`` data-bit periods; its Manchester
        halves are ``r/2`` data bits each, so ``r`` must be an even
        integer ≥ 2.  Large ``r`` buys feedback averaging gain and lowers
        the residual disturbance on the data channel, at the price of
        feedback latency (abort decisions come every ``r`` data bits).
    feedback_decode:
        ``"gated"`` (default) decodes feedback at the data transmitter
        using only the samples where its own modulator is absorbing;
        ``"raw"`` uses every sample (ablation: shows why gating by one's
        own known transmission matters).
    self_compensation:
        Whether the data *receiver* applies the known-state digital
        correction while it transmits feedback (see
        :mod:`repro.fullduplex.selfinterference`).
    """

    phy: PhyConfig = field(default_factory=PhyConfig)
    asymmetry_ratio: int = 64
    feedback_decode: str = "gated"
    self_compensation: bool = True

    def __post_init__(self) -> None:
        check_positive("asymmetry_ratio", self.asymmetry_ratio)
        if self.asymmetry_ratio % 2 or self.asymmetry_ratio < 2:
            raise ValueError(
                "asymmetry_ratio must be an even integer >= 2, "
                f"got {self.asymmetry_ratio}"
            )
        if self.feedback_decode not in ("gated", "raw"):
            raise ValueError(
                'feedback_decode must be "gated" or "raw", '
                f"got {self.feedback_decode!r}"
            )

    @property
    def samples_per_feedback_bit(self) -> int:
        """Feedback bit duration in samples (``r`` data bits)."""
        return self.asymmetry_ratio * self.phy.samples_per_bit

    @property
    def samples_per_feedback_half(self) -> int:
        """One Manchester half of a feedback bit, in samples."""
        return self.samples_per_feedback_bit // 2

    @property
    def feedback_rate_bps(self) -> float:
        """Feedback bit rate = data rate / r."""
        return self.phy.bit_rate_bps / self.asymmetry_ratio
