"""Feedback-channel protocol semantics: instantaneous ACK / NACK.

The feedback stream carries one of two symbols per feedback-bit slot:

* ``ACK_BIT`` (1) — "reception still clean, keep going";
* ``NACK_BIT`` (0) — "corruption detected, abort".

The receiver transmits ACK continuously while its in-reception detector
(:mod:`repro.fullduplex.collision`) stays quiet, and switches to NACK the
slot after detection.  The transmitter decodes each feedback bit as it
completes and aborts on the first NACK — so the abort latency is the
detection latency rounded up to the next feedback-slot boundary, plus one
slot for the NACK itself to arrive.

:class:`FeedbackProtocol` computes packet verdicts (bits actually
transmitted, energy spent, delivered-or-not) from a detection event,
which is what the MAC simulator consumes;
:func:`FeedbackProtocol.feedback_stream` produces the literal bit stream
for sample-level experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fullduplex.config import FullDuplexConfig
from repro.hardware.energy import EnergyModel

#: Feedback symbol meaning "reception clean, continue".
ACK_BIT = 1

#: Feedback symbol meaning "corruption detected, abort".
NACK_BIT = 0


@dataclass(frozen=True)
class PacketVerdict:
    """What actually happened to one packet transmission.

    Attributes
    ----------
    delivered:
        Packet received intact.
    aborted:
        Transmission stopped early on a NACK.
    bits_transmitted:
        Data bits the transmitter actually sent (= packet length unless
        aborted).
    tx_energy_joule / rx_energy_joule:
        Energy spent by transmitter and receiver on this attempt
        (including the receiver's feedback transmission cost).
    airtime_bits:
        Channel occupancy in data-bit periods (what contention models
        charge).
    """

    delivered: bool
    aborted: bool
    bits_transmitted: int
    tx_energy_joule: float
    rx_energy_joule: float
    airtime_bits: int


@dataclass
class FeedbackProtocol:
    """Early-abort ARQ over the full-duplex feedback channel.

    Attributes
    ----------
    config:
        Full-duplex parameters (the asymmetry ratio sets feedback-slot
        granularity and therefore abort latency).
    energy:
        Per-operation energy model shared with the MAC layer.
    """

    config: FullDuplexConfig
    energy: EnergyModel

    def abort_bit(self, detection_bit: int, packet_bits: int) -> int | None:
        """Data-bit index at which the transmitter stops, for a detector
        that fired at ``detection_bit`` — or ``None`` when the NACK
        cannot arrive before the packet ends anyway.

        The receiver can only flip to NACK at the *next* feedback-slot
        boundary after detection, and the transmitter decodes that slot
        when it completes.
        """
        if detection_bit < 0:
            raise ValueError("detection_bit must be non-negative")
        if packet_bits <= 0:
            raise ValueError("packet_bits must be positive")
        r = self.config.asymmetry_ratio
        nack_slot = math.floor(detection_bit / r) + 1
        stop_bit = (nack_slot + 1) * r
        return stop_bit if stop_bit < packet_bits else None

    def verdict(
        self,
        packet_bits: int,
        corrupted: bool,
        detection_bit: int | None,
    ) -> PacketVerdict:
        """Packet outcome under full-duplex early abort.

        Parameters
        ----------
        packet_bits:
            Over-the-air packet length in data bits.
        corrupted:
            Whether this attempt was doomed (collision or channel loss).
        detection_bit:
            When corrupted: the data-bit index at which the receiver's
            detector fired (``None`` = never fired before the end, e.g. a
            CRC-only detector or a missed detection).
        """
        if packet_bits <= 0:
            raise ValueError("packet_bits must be positive")
        if not corrupted:
            return PacketVerdict(
                delivered=True,
                aborted=False,
                bits_transmitted=packet_bits,
                tx_energy_joule=self.energy.tx_cost(packet_bits),
                rx_energy_joule=(
                    self.energy.rx_cost(packet_bits)
                    + self.energy.feedback_cost(
                        packet_bits // self.config.asymmetry_ratio
                    )
                ),
                airtime_bits=packet_bits,
            )
        stop = None
        if detection_bit is not None:
            stop = self.abort_bit(detection_bit, packet_bits)
        sent = packet_bits if stop is None else stop
        return PacketVerdict(
            delivered=False,
            aborted=stop is not None,
            bits_transmitted=sent,
            tx_energy_joule=self.energy.tx_cost(sent),
            rx_energy_joule=(
                self.energy.rx_cost(sent)
                + self.energy.feedback_cost(sent // self.config.asymmetry_ratio)
            ),
            airtime_bits=sent,
        )

    def feedback_stream(
        self, num_slots: int, detection_bit: int | None
    ) -> np.ndarray:
        """The literal feedback bit stream the receiver transmits.

        ACK until the slot after ``detection_bit``, NACK from then on;
        all ACK when ``detection_bit`` is ``None``.
        """
        if num_slots < 0:
            raise ValueError("num_slots must be non-negative")
        stream = np.full(num_slots, ACK_BIT, dtype=np.uint8)
        if detection_bit is not None:
            r = self.config.asymmetry_ratio
            first_nack = math.floor(detection_bit / r) + 1
            if first_nack < num_slots:
                stream[first_nack:] = NACK_BIT
        return stream

    def first_nack_slot(self, decoded_feedback: np.ndarray) -> int | None:
        """Transmitter-side rule: index of the first decoded NACK, or
        ``None`` when the stream is all ACK."""
        arr = np.asarray(decoded_feedback)
        hits = np.nonzero(arr == NACK_BIT)[0]
        return int(hits[0]) if hits.size else None
