"""One simultaneous full-duplex exchange at the sample level.

:class:`FullDuplexLink` wires everything together for a single
(data-frame, feedback-stream) exchange between two devices over one
channel realisation:

1. A builds its data frame waveforms; B builds its feedback waveform,
   trimmed/padded to the frame duration.
2. The channel composes what each antenna sees — each side's received
   field contains the ambient direct path plus the *other* side's
   reflection (its own reflection acts through the front-end gating).
3. B runs the standard receive chain on the data (passing its own
   feedback waveform for self-gating and compensation); A runs the
   feedback decoder (gated by its own data waveform).
4. Both sides' harvested energy is accounted.

The result object carries everything the benchmarks need: the data
reception outcome, the decoded feedback bits, raw BER inputs, and the
energy tallies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ambient.sources import AmbientSource
from repro.channel.link import LinkGains
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.feedback import FeedbackDecoder, feedback_waveform
from repro.hardware.reflection import ReflectionModulator, ReflectionStates
from repro.phy.framing import Frame
from repro.phy.receiver import BackscatterReceiver, ReceiveResult
from repro.phy.transmitter import BackscatterTransmitter
from repro.utils.rng import ensure_rng, spawn_rngs

#: Known data prefix used by the raw-bit harness to resolve backscatter
#: polarity at the receiver (see :class:`repro.phy.sync.SyncResult`).
DATA_PILOT_BITS = np.array([1, 0] * 8, dtype=np.uint8)

#: Known feedback prefix used by the transmitter to resolve polarity on
#: the feedback channel.
FEEDBACK_PILOT_BITS = np.array([1, 0], dtype=np.uint8)


@dataclass(frozen=True)
class FullDuplexExchange:
    """Outcome of one full-duplex exchange.

    Attributes
    ----------
    data_result:
        B's frame reception outcome.
    feedback_sent / feedback_decoded:
        The feedback bits B transmitted and A recovered (equal lengths).
    data_bits_sent:
        The exact over-the-air bits of A's frame (for raw BER checks).
    harvested_a_joule / harvested_b_joule:
        Energy each side harvested during the exchange.
    """

    data_result: ReceiveResult
    feedback_sent: np.ndarray
    feedback_decoded: np.ndarray
    data_bits_sent: np.ndarray
    harvested_a_joule: float
    harvested_b_joule: float

    @property
    def feedback_errors(self) -> int:
        """Number of feedback bits A decoded incorrectly."""
        return int(
            np.count_nonzero(self.feedback_sent != self.feedback_decoded)
        )

    @property
    def data_delivered(self) -> bool:
        """Whether B received the frame intact."""
        return self.data_result.delivered


@dataclass(frozen=True)
class _StagedExchange:
    """Everything both exchange flavours share for one realisation.

    Attributes
    ----------
    pad:
        Idle guard length in samples on each side of the transmission.
    chips_a / chips_b:
        Full-window switching waveforms of the two devices.
    fb_stream:
        Feedback pilot + payload bits actually transmitted (possibly
        empty when the window fits no feedback bit).
    incident_a / incident_b:
        Complex baseband fields at each antenna (ambient + the *other*
        side's reflection + noise).
    """

    pad: int
    chips_a: np.ndarray
    chips_b: np.ndarray
    fb_stream: np.ndarray
    incident_a: np.ndarray
    incident_b: np.ndarray


@dataclass
class FullDuplexLink:
    """A ↔ B full-duplex link simulator.

    Attributes
    ----------
    config:
        Full-duplex parameters.
    source:
        Ambient excitation generator.
    states_a / states_b:
        Impedance states of each device (defaults shared).
    device_a / device_b:
        Scene node names of the two endpoints.
    idle_pad_bits:
        Quiet data-bit periods inserted before and after the frame (lets
        the receiver's windows settle and gives sync room to miss).
    """

    config: FullDuplexConfig
    source: AmbientSource
    states_a: ReflectionStates = field(default_factory=ReflectionStates)
    states_b: ReflectionStates = field(default_factory=ReflectionStates)
    device_a: str = "alice"
    device_b: str = "bob"
    idle_pad_bits: int = 4

    def _stage(
        self,
        gains: LinkGains,
        chip_waveform: np.ndarray,
        feedback_bits: np.ndarray,
        feedback_enabled: bool,
        rng,
    ) -> _StagedExchange:
        """Compose both antennas' incident fields for one exchange.

        Shared by :meth:`run` and :meth:`run_raw_bits`: pads the window,
        builds both switching waveforms (A's data chips, B's pilot-
        prefixed feedback), turns them into reflection waveforms, draws
        the ambient block, and mixes what each side's antenna sees.
        """
        gen = ensure_rng(rng)
        rng_src, rng_noise_a, rng_noise_b = spawn_rngs(gen, 3)
        phy = self.config.phy
        pad = self.idle_pad_bits * phy.samples_per_bit
        num_samples = int(chip_waveform.size)
        total = num_samples + 2 * pad

        # A's switching waveform over the whole window (idle = absorbing).
        chips_a = np.zeros(total, dtype=np.uint8)
        chips_a[pad : pad + num_samples] = chip_waveform
        mod_a = ReflectionModulator(states=self.states_a, samples_per_chip=1)
        gamma_a = mod_a.reflection_waveform(chips_a)

        # B's feedback switching, aligned to the frame start.  A known
        # pilot prefix lets A resolve the feedback polarity sign.
        fb_payload = np.asarray(feedback_bits).astype(np.uint8)
        max_bits = num_samples // self.config.samples_per_feedback_bit
        pilot = FEEDBACK_PILOT_BITS
        if max_bits > pilot.size:
            fb_stream = np.concatenate(
                [pilot, fb_payload[: max_bits - pilot.size]]
            )
        else:
            fb_stream = np.empty(0, dtype=np.uint8)
        chips_b = np.zeros(total, dtype=np.uint8)
        if feedback_enabled and fb_stream.size:
            fb_wave = feedback_waveform(fb_stream, self.config)
            chips_b[pad : pad + fb_wave.size] = fb_wave
        mod_b = ReflectionModulator(states=self.states_b, samples_per_chip=1)
        gamma_b = mod_b.reflection_waveform(chips_b)

        ambient = self.source.samples(total, rng_src)
        incident_b = gains.received(
            self.device_b, ambient, {self.device_a: gamma_a}, rng=rng_noise_b
        )
        incident_a = gains.received(
            self.device_a, ambient, {self.device_b: gamma_b}, rng=rng_noise_a
        )
        return _StagedExchange(
            pad=pad,
            chips_a=chips_a,
            chips_b=chips_b,
            fb_stream=fb_stream,
            incident_a=incident_a,
            incident_b=incident_b,
        )

    def _decode_feedback(
        self, staged: _StagedExchange, feedback_enabled: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """A's feedback decode, gated by its own transmission.

        Returns ``(feedback_sent, feedback_decoded)`` with the polarity
        pilot stripped from both (empty arrays when no feedback flew).
        """
        phy = self.config.phy
        pilot = FEEDBACK_PILOT_BITS
        if not (feedback_enabled and staged.fb_stream.size):
            empty = np.empty(0, dtype=np.uint8)
            return empty, empty
        rx_a = BackscatterReceiver(phy, states=self.states_a)
        env_a = rx_a.front_end.receive_envelope(
            staged.incident_a, staged.chips_a
        )
        decoded_stream = FeedbackDecoder(self.config).decode(
            env_a,
            num_bits=staged.fb_stream.size,
            own_chip_waveform=staged.chips_a,
            start_sample=staged.pad + phy.detector_delay_samples,
            pilot_bits=pilot,
        )
        return staged.fb_stream[pilot.size :], decoded_stream[pilot.size :]

    def run(
        self,
        gains: LinkGains,
        frame: Frame,
        feedback_bits: np.ndarray,
        rng=None,
        feedback_enabled: bool = True,
    ) -> FullDuplexExchange:
        """Simulate one exchange over a fixed channel realisation.

        Parameters
        ----------
        gains:
            One block's channel gains (from
            :meth:`repro.channel.link.ChannelModel.realize`).
        frame:
            The data frame A transmits.
        feedback_bits:
            The feedback stream B transmits; trimmed to what fits in the
            frame duration (see
            :func:`repro.fullduplex.feedback.feedback_bits_for_frame`).
        rng:
            Randomness for the ambient waveform and noise.
        feedback_enabled:
            With False, B stays silent — the half-duplex baseline used by
            the F1 benchmark's "feedback off" arm.
        """
        phy = self.config.phy
        tx_a = BackscatterTransmitter(phy, states=self.states_a)
        wf = tx_a.transmit(frame)
        staged = self._stage(
            gains, wf.chip_waveform, feedback_bits, feedback_enabled, rng
        )

        # --- B: receive the data frame while transmitting feedback. ---
        rx_b = BackscatterReceiver(
            phy,
            states=self.states_b,
            self_compensation=self.config.self_compensation,
        )
        own_b = staged.chips_b if feedback_enabled else None
        data_result = rx_b.receive_frame(
            staged.incident_b, own_chip_waveform=own_b
        )

        # --- A: decode the feedback while transmitting the frame. ---
        fb_bits, decoded = self._decode_feedback(staged, feedback_enabled)

        # --- Energy harvested on both sides over the exchange. ---
        rx_a = BackscatterReceiver(phy, states=self.states_a)
        harvested_a = rx_a.front_end.harvested_energy(
            staged.incident_a, staged.chips_a
        )
        harvested_b = rx_b.front_end.harvested_energy(
            staged.incident_b, staged.chips_b
        )

        from repro.phy.framing import build_frame

        return FullDuplexExchange(
            data_result=data_result,
            feedback_sent=fb_bits,
            feedback_decoded=decoded,
            data_bits_sent=build_frame(frame, phy.warmup_bits),
            harvested_a_joule=harvested_a,
            harvested_b_joule=harvested_b,
        )

    def run_raw_bits(
        self,
        gains: LinkGains,
        data_bits: np.ndarray,
        feedback_bits: np.ndarray,
        rng=None,
        feedback_enabled: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unframed exchange for BER sweeps: known alignment, no sync.

        Returns ``(decoded_data_bits, feedback_sent, feedback_decoded)``
        — the caller compares against its inputs.  Much faster than
        framed exchanges because there is no preamble search.
        """
        phy = self.config.phy

        # A known pilot prefix resolves the backscatter polarity at both
        # receivers (under fading, "reflect" can lower the envelope).
        payload = np.asarray(data_bits).astype(np.uint8)
        stream = np.concatenate([DATA_PILOT_BITS, payload])
        tx_a = BackscatterTransmitter(phy, states=self.states_a)
        wf = tx_a.transmit_bits(stream)
        staged = self._stage(
            gains, wf.chip_waveform, feedback_bits, feedback_enabled, rng
        )

        rx_b = BackscatterReceiver(
            phy,
            states=self.states_b,
            self_compensation=self.config.self_compensation,
        )
        own_b = staged.chips_b if feedback_enabled else None
        decoded_stream = rx_b.decode_aligned_bits(
            staged.incident_b,
            num_bits=stream.size,
            own_chip_waveform=own_b,
            start_sample=staged.pad,
            pilot_bits=DATA_PILOT_BITS,
        )
        decoded_data = decoded_stream[DATA_PILOT_BITS.size :]

        fb_bits, decoded_fb = self._decode_feedback(staged, feedback_enabled)
        return decoded_data, fb_bits, decoded_fb
