"""Reusable sample-level scenario builders.

The collision experiments (benchmark A1, the collision example, several
integration tests) all need the same setup: a two-device link with a
third tag that starts backscattering mid-packet.  This module owns that
construction so every consumer measures the same physics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ambient.sources import AmbientSource
from repro.channel.geometry import Scene
from repro.channel.link import ChannelModel
from repro.fullduplex.config import FullDuplexConfig
from repro.phy.receiver import BackscatterReceiver
from repro.phy.transmitter import BackscatterTransmitter
from repro.utils.rng import ensure_rng, random_bits, spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CollisionObservation:
    """What the victim receiver saw during a (possibly collided)
    reception.

    Attributes
    ----------
    soft_chips:
        Per-chip envelope integrals at the victim receiver, aligned to
        the frame start.
    margins:
        Per-bit differential decision margins (Manchester half
        differences) — the input to margin-based detectors.
    data_bits:
        The bits the intended transmitter sent.
    decoded_bits:
        The victim's decisions.
    onset_bit:
        Collision onset (data-bit index), or ``None`` for a clean run.
    """

    soft_chips: np.ndarray
    margins: np.ndarray
    data_bits: np.ndarray
    decoded_bits: np.ndarray
    onset_bit: int | None

    @property
    def bit_errors(self) -> int:
        """Errors over the observed bits."""
        return int(np.count_nonzero(self.data_bits != self.decoded_bits))


def collision_scenario(
    config: FullDuplexConfig,
    source: AmbientSource,
    rng=None,
    packet_bits: int = 192,
    onset_bit: int | None = 64,
    link_distance_m: float = 0.5,
    collider_position: tuple[float, float] = (0.3, 0.4),
    channel: ChannelModel | None = None,
) -> CollisionObservation:
    """One reception at device ``bob`` with an optional mid-packet
    collider.

    Parameters
    ----------
    config:
        Full-duplex configuration (only the PHY part is used here).
    source:
        Ambient excitation.
    rng:
        Seed / generator for channel, bits, ambient and noise.
    packet_bits:
        Length of the intended transmission.
    onset_bit:
        Data-bit index at which the collider starts; ``None`` disables
        the collider (clean reception).
    link_distance_m:
        Intended-pair separation.
    collider_position:
        Collider coordinates relative to the pair's midpoint.
    channel:
        Channel model (defaults to the calibrated static default).
    """
    check_positive("packet_bits", packet_bits)
    if onset_bit is not None and not 0 <= onset_bit < packet_bits:
        raise ValueError("onset_bit must lie inside the packet")
    gen = ensure_rng(rng)
    rng_ch, rng_bits, rng_amb = spawn_rngs(gen, 3)
    phy = config.phy
    model = channel if channel is not None else ChannelModel()

    scene = Scene.two_device_line(device_separation_m=link_distance_m)
    scene.place("carol", *collider_position)
    gains = model.realize(scene, rng_ch)

    data_bits = random_bits(rng_bits, packet_bits)
    tx = BackscatterTransmitter(phy)
    wf = tx.transmit_bits(data_bits)
    n = wf.num_samples
    reflections = {"alice": wf.reflection_waveform}
    if onset_bit is not None:
        collider_wf = BackscatterTransmitter(phy).transmit_bits(
            random_bits(rng_bits, packet_bits)
        )
        gamma_c = np.zeros(n)
        start = onset_bit * phy.samples_per_bit
        segment = collider_wf.reflection_waveform[: n - start]
        gamma_c[start : start + segment.size] = segment
        reflections["carol"] = gamma_c

    ambient = source.samples(n, rng_amb)
    incident = gains.received("bob", ambient, reflections, rng=rng_amb)

    rx = BackscatterReceiver(phy)
    env = rx.envelope(incident)
    # The detector delay eats into the tail: observe what fits.
    observable_bits = (
        (env.size - phy.detector_delay_samples) // phy.samples_per_bit
    )
    observable_bits = min(observable_bits, packet_bits)
    soft = rx.soft_chips(
        env, phy.detector_delay_samples,
        observable_bits * phy.chips_per_bit,
    )
    margins = soft[0::2] - soft[1::2]
    decoded = rx.soft_decode_bits(soft)
    return CollisionObservation(
        soft_chips=soft,
        margins=margins,
        data_bits=data_bits[:observable_bits],
        decoded_bits=decoded,
        onset_bit=onset_bit,
    )
