"""In-reception corruption detectors.

The value of the feedback channel is *when* it can say something useful.
A receiver that only discovers corruption from the final CRC can only
NACK after the whole packet — no transmit energy is saved.  These
detectors watch the reception as it happens and flag corruption early:

* :class:`MarginCollapseDetector` (primary) — monitors the per-bit
  differential decision margins.  A colliding backscatterer (or a fade)
  drives margins toward zero over the affected span; the detector fires
  when the fraction of low-margin bits in a sliding window exceeds a
  quota.
* :class:`EnergyAnomalyDetector` — monitors the short-time dispersion of
  chip integrals; an interfering modulator at an unsynchronised chip
  phase inflates it.
* :class:`CrcOnlyDetector` — the baseline: always "detects" at the end
  of the packet (latency = packet length).

Each returns a :class:`CollisionVerdict` with the detection latency in
data bits — the quantity that determines how much transmit energy an
abort can save (benchmark A1 ablates the choice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CollisionVerdict:
    """Outcome of running a detector over one reception.

    Attributes
    ----------
    detected:
        Whether the detector flagged corruption.
    detection_bit:
        Data-bit index (from frame start) at which it fired; equals
        ``observed_bits`` when it never fired or fired only at the end.
    """

    detected: bool
    detection_bit: int


@dataclass(frozen=True)
class MarginCollapseDetector:
    """Sliding-window quota test on differential decision margins.

    Attributes
    ----------
    window_bits:
        Sliding window length.
    quota:
        Fraction of low-margin bits within the window that triggers
        detection.
    margin_floor:
        A bit is "low margin" when its |margin| falls below this fraction
        of the running median |margin| (the median tracks the link's own
        operating point, so the detector needs no absolute calibration).
    """

    window_bits: int = 8
    quota: float = 0.5
    margin_floor: float = 0.35

    def __post_init__(self) -> None:
        check_positive("window_bits", self.window_bits)
        check_in_range("quota", self.quota, 0.0, 1.0)
        check_in_range("margin_floor", self.margin_floor, 0.0, 1.0)

    def run(self, margins: np.ndarray) -> CollisionVerdict:
        """Scan per-bit margins (e.g. Manchester half-difference values)
        in arrival order; return the first window that trips the quota."""
        m = np.abs(np.asarray(margins, dtype=float))
        n = m.size
        if n == 0:
            return CollisionVerdict(detected=False, detection_bit=0)
        w = min(self.window_bits, n)
        # Running median over everything seen so far anchors "normal".
        reference = np.median(m[: max(w, min(n, 4 * w))])
        if reference <= 0:
            return CollisionVerdict(detected=True, detection_bit=w)
        low = m < self.margin_floor * reference
        counts = np.convolve(low.astype(int), np.ones(w, dtype=int), "full")[: n]
        # counts[i] = low bits among the window ending at i (ramp-up head).
        sizes = np.minimum(np.arange(1, n + 1), w)
        frac = counts / sizes
        hits = np.nonzero((frac >= self.quota) & (sizes >= w))[0]
        if hits.size:
            return CollisionVerdict(detected=True, detection_bit=int(hits[0]) + 1)
        return CollisionVerdict(detected=False, detection_bit=n)


@dataclass(frozen=True)
class EnergyAnomalyDetector:
    """Dispersion jump test on chip integrals.

    Splits the chip-integral stream into bit-sized blocks, tracks the
    inter-quartile dispersion of each block against the running baseline,
    and fires when ``threshold_ratio`` consecutive blocks exceed
    ``ratio`` times the baseline.
    """

    block_bits: int = 4
    ratio: float = 2.0
    consecutive_blocks: int = 2

    def __post_init__(self) -> None:
        check_positive("block_bits", self.block_bits)
        check_positive("ratio", self.ratio)
        check_positive("consecutive_blocks", self.consecutive_blocks)

    def run(self, soft_chips: np.ndarray, chips_per_bit: int) -> CollisionVerdict:
        """Scan chip integrals in blocks of ``block_bits`` data bits."""
        check_positive("chips_per_bit", chips_per_bit)
        soft = np.asarray(soft_chips, dtype=float)
        block = self.block_bits * chips_per_bit
        nblocks = soft.size // block
        if nblocks < 2:
            return CollisionVerdict(
                detected=False, detection_bit=soft.size // chips_per_bit
            )
        blocks = soft[: nblocks * block].reshape(nblocks, block)
        q75, q25 = np.percentile(blocks, [75, 25], axis=1)
        disp = q75 - q25
        baseline = disp[0]
        if baseline <= 0:
            baseline = float(np.median(disp[disp > 0])) if np.any(disp > 0) else 1.0
        over = disp > self.ratio * baseline
        run = 0
        for i, flag in enumerate(over):
            run = run + 1 if flag else 0
            if run >= self.consecutive_blocks:
                return CollisionVerdict(
                    detected=True, detection_bit=(i + 1) * self.block_bits
                )
        return CollisionVerdict(
            detected=False, detection_bit=soft.size // chips_per_bit
        )


@dataclass(frozen=True)
class CrcOnlyDetector:
    """The no-early-detection baseline: corruption is only known at the
    end of the packet, from the CRC."""

    def run(self, total_bits: int, crc_ok: bool) -> CollisionVerdict:
        """Verdict for a packet of ``total_bits`` whose CRC said
        ``crc_ok``."""
        if total_bits < 0:
            raise ValueError("total_bits must be non-negative")
        return CollisionVerdict(detected=not crc_ok, detection_bit=total_bits)
