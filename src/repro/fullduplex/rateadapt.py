"""Feedback-driven rate adaptation.

A transmitter with a live feedback channel learns the link quality every
packet — *during* the packet, even.  :class:`RateAdapter` implements a
conservative ladder policy over a discrete rate set:

* step **down** one rung immediately on a failed (NACKed or lost) packet;
* step **up** one rung after ``raise_after`` consecutive successes.

This is the classic additive-increase / immediate-decrease ladder; the
point of the example/bench built on it is not the policy's cleverness
but how much faster it converges when failure news arrives mid-packet
instead of after a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive

#: Default rate ladder [bit/s] — powers of two around the 1 kbps design point.
DEFAULT_RATES_BPS = (250.0, 500.0, 1_000.0, 2_000.0, 4_000.0)


@dataclass
class RateAdapter:
    """Ladder rate controller driven by per-packet outcomes.

    Attributes
    ----------
    rates_bps:
        Ascending ladder of available bit rates.
    raise_after:
        Consecutive successes required before stepping up.
    start_index:
        Initial rung (defaults to the lowest rate — conservative start).
    """

    rates_bps: tuple[float, ...] = DEFAULT_RATES_BPS
    raise_after: int = 4
    start_index: int = 0

    _index: int = field(init=False)
    _streak: int = field(init=False, default=0)
    _history: list[tuple[float, bool]] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if len(self.rates_bps) < 1:
            raise ValueError("rates_bps must be non-empty")
        if list(self.rates_bps) != sorted(self.rates_bps):
            raise ValueError("rates_bps must be ascending")
        check_positive("raise_after", self.raise_after)
        if not 0 <= self.start_index < len(self.rates_bps):
            raise ValueError("start_index out of range")
        self._index = self.start_index

    @property
    def current_rate_bps(self) -> float:
        """The rate the next packet should use."""
        return self.rates_bps[self._index]

    @property
    def history(self) -> list[tuple[float, bool]]:
        """Chronological ``(rate_used, success)`` log."""
        return list(self._history)

    def record(self, success: bool) -> float:
        """Feed one packet outcome; returns the rate for the next packet."""
        self._history.append((self.current_rate_bps, bool(success)))
        if success:
            self._streak += 1
            if self._streak >= self.raise_after:
                self._streak = 0
                self._index = min(self._index + 1, len(self.rates_bps) - 1)
        else:
            self._streak = 0
            self._index = max(self._index - 1, 0)
        return self.current_rate_bps

    def reset(self) -> None:
        """Return to the initial rung and clear the streak and history."""
        self._index = self.start_index
        self._streak = 0
        self._history.clear()
