"""Self-interference handling for receive-while-transmit.

A backscatter device that is transmitting hears *less*: its own
reflecting state diverts power away from its detector, scaling the
received envelope by the through-power of the current impedance state.
Unlike an active radio's self-interference, this is purely
multiplicative, perfectly known (the device drives its own switch), and
slow relative to whatever the device is trying to receive — the three
properties the paper's full-duplex design exploits.

Two mechanisms are modelled:

* :func:`compensate_envelope` — the digital known-state correction:
  divide the detector output by the through-power of one's own state,
  delayed by the detector's RC group delay.  Exact except within a
  smoothing time-constant of switching edges.
* :func:`own_off_mask` — the gating alternative used on the *feedback*
  decode side: simply ignore samples where one's own modulator is
  reflecting.

:func:`residual_self_interference` quantifies what is left after
compensation; the F6 ablation benchmark reports it.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.reflection import ReflectionStates


def through_power_waveform(
    own_chip_waveform: np.ndarray, states: ReflectionStates
) -> np.ndarray:
    """Per-sample through power ``1 - |Γ(own state)|²`` of a device's own
    switching waveform."""
    chips = np.asarray(own_chip_waveform)
    return np.where(
        chips > 0,
        states.through_for(1) ** 2,
        states.through_for(0) ** 2,
    )


def compensate_envelope(
    envelope: np.ndarray,
    own_chip_waveform: np.ndarray,
    states: ReflectionStates,
    smoothing_alpha: float | None = None,
) -> np.ndarray:
    """Undo the known self-gating on a detector-output envelope.

    The detector smoothed ``|y|² · through(own state)``; when the field
    power varies slowly relative to the RC constant this factors as
    ``smooth(through) · |y|²``, so dividing by the *identically smoothed*
    through-power removes the self-gating including its RC edge
    transients — not just the steady-state steps.

    Parameters
    ----------
    envelope:
        Detector output (post-smoothing), same length as the chip
        waveform.
    own_chip_waveform:
        The device's own transmit chips at sample rate (0/1).
    states:
        The device's impedance states (to know the through power of each).
    smoothing_alpha:
        The detector's per-sample IIR weight (from
        :func:`repro.dsp.filters.alpha_for_time_constant`); ``None``
        means the detector was unsmoothed and the raw step correction is
        exact.
    """
    env = np.asarray(envelope, dtype=float)
    chips = np.asarray(own_chip_waveform)
    if env.shape != chips.shape:
        raise ValueError(
            f"envelope shape {env.shape} != chip waveform {chips.shape}"
        )
    through = through_power_waveform(chips, states)
    if smoothing_alpha is not None:
        from repro.dsp.filters import single_pole_lowpass

        through = single_pole_lowpass(through, smoothing_alpha)
    return env / through


def own_off_mask(own_chip_waveform: np.ndarray) -> np.ndarray:
    """Boolean mask of samples where the device's own modulator is
    absorbing (chip 0) — the samples its receive path is clean on."""
    return np.asarray(own_chip_waveform) == 0


def residual_self_interference(
    envelope: np.ndarray,
    own_chip_waveform: np.ndarray,
) -> float:
    """Fraction of envelope variance explained by one's own switching.

    Computes the normalised gap between the mean envelope during own-on
    and own-off samples, relative to the overall mean — zero means the
    self-interference has been fully removed (perfect compensation),
    values near the through-power contrast mean none of it has.
    """
    env = np.asarray(envelope, dtype=float)
    chips = np.asarray(own_chip_waveform)
    if env.shape != chips.shape:
        raise ValueError(
            f"envelope shape {env.shape} != chip waveform {chips.shape}"
        )
    on = env[chips > 0]
    off = env[chips == 0]
    if on.size == 0 or off.size == 0:
        return 0.0
    overall = env.mean()
    if overall == 0:
        return 0.0
    return float(abs(on.mean() - off.mean()) / overall)
