"""Batched full-duplex exchanges: N independent trials as stacked arrays.

:class:`BatchFullDuplexEngine` is the sample-level core of the
vectorized trial backend (:mod:`repro.experiments.batch`).  It stages N
independent exchanges of one :class:`~repro.fullduplex.link.FullDuplexLink`
as ``(N, samples)`` tensors — batched ambient synthesis, batched channel
composition, batched envelope detection/compensation and batched
soft-decision decoding — while drawing every random quantity from the
*same per-lane generators, in the same order,* as the scalar
:meth:`FullDuplexLink.run_raw_bits` / :meth:`FullDuplexLink.run` path.

The resulting per-lane outputs are **bitwise identical** to running the
scalar link once per lane (asserted by ``tests/test_batch_equivalence.py``).
Two deliberate asymmetries with the scalar code keep the engine honest
rather than clever:

* randomness is never batched across lanes — lane ``i``'s generators are
  spawned from trial ``i``'s seed exactly as the scalar path spawns
  them, so only the deterministic DSP is vectorized;
* a side of the exchange that the caller does not ask for (``need_a`` /
  ``need_b``) is skipped entirely, which is safe because each side's
  noise draws come from a dedicated child generator and the decodes are
  deterministic given the staged fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import BatchLinkGains
from repro.dsp.envelope import square_law_detector
from repro.dsp.filters import (
    alpha_for_time_constant,
    integrate_and_dump,
    single_pole_lowpass,
)
from repro.fullduplex.feedback import _masked_mean
from repro.fullduplex.link import FEEDBACK_PILOT_BITS, FullDuplexLink
from repro.phy import coding as lc
from repro.phy.softdecode import resolve_polarity_batch, soft_decode_bits_batch
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class BatchStagedExchange:
    """Batched counterpart of ``FullDuplexLink._StagedExchange``.

    Attributes
    ----------
    pad:
        Idle guard length in samples on each side of the transmission.
    chips_a / chips_b:
        ``(N, total)`` switching waveforms of the two devices.
    fb_stream:
        ``(N, bits)`` feedback pilot + payload actually transmitted
        (zero columns when the window fits no feedback bit).
    incident_a / incident_b:
        ``(N, total)`` complex fields at each antenna, or ``None`` when
        that side was not requested.
    """

    pad: int
    chips_a: np.ndarray
    chips_b: np.ndarray
    fb_stream: np.ndarray
    incident_a: np.ndarray | None
    incident_b: np.ndarray | None


def feedback_waveform_batch(bits: np.ndarray, config) -> np.ndarray:
    """``(N, bits)`` feedback bits → ``(N, samples)`` switching waveforms.

    Row-for-row identical to
    :func:`repro.fullduplex.feedback.feedback_waveform`: the feedback
    line code *is* Manchester at the feedback half-bit scale (bit 1 →
    reflect-then-absorb), so the chips come from the one module that
    owns that rule.
    """
    chips = lc.encode_batch(bits, "manchester")
    return np.repeat(chips, config.samples_per_feedback_half, axis=1)


@dataclass
class BatchFullDuplexEngine:
    """Vectorized executor for one link's independent exchanges.

    Attributes
    ----------
    link:
        The scalar link whose behaviour is reproduced lane by lane
        (config, ambient source, impedance states, device names, pad).
    """

    link: FullDuplexLink

    # -- staging -----------------------------------------------------------

    def stage(
        self,
        gains: BatchLinkGains,
        chip_waveforms: np.ndarray,
        feedback_bits: np.ndarray,
        feedback_enabled: bool,
        rngs,
        need_a: bool = True,
        need_b: bool = True,
    ) -> BatchStagedExchange:
        """Compose both antennas' incident fields for N exchanges.

        Mirrors ``FullDuplexLink._stage``: per lane, ``rngs[i]`` is
        normalised and split into (source, noise-A, noise-B) children in
        the scalar order, then synthesis and composition run batched.
        """
        link = self.link
        rng_src, rng_noise_a, rng_noise_b = [], [], []
        for rng in rngs:
            gen = ensure_rng(rng)
            src, noise_a, noise_b = spawn_rngs(gen, 3)
            rng_src.append(src)
            rng_noise_a.append(noise_a)
            rng_noise_b.append(noise_b)

        waves = np.asarray(chip_waveforms)
        if waves.ndim != 2:
            raise ValueError("chip_waveforms must be (lanes, samples)")
        lanes, num_samples = waves.shape
        config = link.config
        phy = config.phy
        pad = link.idle_pad_bits * phy.samples_per_bit
        total = num_samples + 2 * pad

        chips_a = np.zeros((lanes, total), dtype=np.uint8)
        chips_a[:, pad : pad + num_samples] = waves
        # A's reflection waveform is only consumed composing B's
        # incident field (and vice versa); skip the (lanes, total)
        # allocation when that side is not requested.
        gamma_a = (
            np.where(
                chips_a > 0,
                link.states_a.gamma_for(1),
                link.states_a.gamma_for(0),
            ).astype(float)
            if need_b
            else None
        )

        fb_payload = np.asarray(feedback_bits).astype(np.uint8)
        max_bits = num_samples // config.samples_per_feedback_bit
        pilot = FEEDBACK_PILOT_BITS
        if max_bits > pilot.size:
            keep = min(fb_payload.shape[1], max_bits - pilot.size)
            fb_stream = np.concatenate(
                [np.tile(pilot, (lanes, 1)), fb_payload[:, :keep]], axis=1
            )
        else:
            fb_stream = np.empty((lanes, 0), dtype=np.uint8)
        chips_b = np.zeros((lanes, total), dtype=np.uint8)
        if feedback_enabled and fb_stream.shape[1]:
            fb_wave = feedback_waveform_batch(fb_stream, config)
            chips_b[:, pad : pad + fb_wave.shape[1]] = fb_wave
        gamma_b = (
            np.where(
                chips_b > 0,
                link.states_b.gamma_for(1),
                link.states_b.gamma_for(0),
            ).astype(float)
            if need_a
            else None
        )

        ambient = link.source.batch_samples(total, rng_src)
        incident_b = (
            gains.received(
                link.device_b, ambient, {link.device_a: gamma_a},
                rngs=rng_noise_b,
            )
            if need_b
            else None
        )
        incident_a = (
            gains.received(
                link.device_a, ambient, {link.device_b: gamma_b},
                rngs=rng_noise_a,
            )
            if need_a
            else None
        )
        return BatchStagedExchange(
            pad=pad,
            chips_a=chips_a,
            chips_b=chips_b,
            fb_stream=fb_stream,
            incident_a=incident_a,
            incident_b=incident_b,
        )

    # -- receive-side batched DSP ------------------------------------------

    def _gated_envelope(
        self, incident: np.ndarray, own_chips: np.ndarray | None, states
    ) -> np.ndarray:
        """Batched ``TagFrontEnd.receive_envelope``: self-reception gating
        by the device's own switching state, then the smoothed detector."""
        phy = self.link.config.phy
        x = np.asarray(incident, dtype=complex)
        if own_chips is not None:
            through = np.where(
                own_chips > 0, states.through_for(1), states.through_for(0)
            )
            x = x * through
        return 1.0 * square_law_detector(
            x, phy.sample_rate_hz, phy.smoothing_tau_s
        )

    def data_envelope(
        self, staged: BatchStagedExchange, feedback_enabled: bool
    ) -> np.ndarray:
        """B's detector output: gating by its own feedback transmission
        plus the known-state digital compensation when configured —
        batched ``BackscatterReceiver.envelope``."""
        config = self.link.config
        phy = config.phy
        own = staged.chips_b if feedback_enabled else None
        env = self._gated_envelope(
            staged.incident_b, own, self.link.states_b
        )
        if own is not None and config.self_compensation:
            alpha = alpha_for_time_constant(
                phy.smoothing_tau_s, phy.sample_rate_hz
            )
            through_power = np.where(
                own > 0,
                self.link.states_b.through_for(1) ** 2,
                self.link.states_b.through_for(0) ** 2,
            )
            env = env / single_pole_lowpass(through_power, alpha)
        return env

    def decode_aligned_bits(
        self,
        staged: BatchStagedExchange,
        num_bits: int,
        pilot_bits: np.ndarray,
        feedback_enabled: bool,
    ) -> np.ndarray:
        """Batched ``BackscatterReceiver.decode_aligned_bits`` for the
        raw-bit harness: known alignment, per-lane pilot polarity."""
        config = self.link.config
        phy = config.phy
        env = self.data_envelope(staged, feedback_enabled)
        start = staged.pad + phy.detector_delay_samples
        count = num_bits * phy.chips_per_bit
        segment = env[:, start : start + count * phy.samples_per_chip]
        if segment.shape[1] < count * phy.samples_per_chip:
            raise ValueError(
                "incident waveform too short for the requested bit count"
            )
        soft = integrate_and_dump(segment, phy.samples_per_chip)
        polarity = resolve_polarity_batch(soft, pilot_bits, config.phy)
        return soft_decode_bits_batch(soft, config.phy, polarity)

    def decode_feedback(
        self, staged: BatchStagedExchange, feedback_enabled: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """A's feedback decode, batched ``FullDuplexLink._decode_feedback``.

        Returns ``(feedback_sent, feedback_decoded)`` as ``(N, bits)``
        arrays with the polarity pilot stripped (zero columns when no
        feedback flew).  The gated half-bit means are reduced lane by
        lane: the gating mask depends on each lane's own data chips, and
        the scalar decoder's masked mean must be reproduced exactly.
        """
        config = self.link.config
        phy = config.phy
        pilot = FEEDBACK_PILOT_BITS
        lanes = staged.chips_a.shape[0]
        num_bits = staged.fb_stream.shape[1]
        if not (feedback_enabled and num_bits):
            empty = np.empty((lanes, 0), dtype=np.uint8)
            return empty, empty
        env = self._gated_envelope(
            staged.incident_a, staged.chips_a, self.link.states_a
        )
        start = staged.pad + phy.detector_delay_samples
        half = config.samples_per_feedback_half
        if config.feedback_decode == "gated":
            mask = staged.chips_a == 0
        else:
            mask = np.ones(staged.chips_a.shape, dtype=bool)
        firsts = np.empty((lanes, num_bits), dtype=float)
        seconds = np.empty((lanes, num_bits), dtype=float)
        for i in range(num_bits):
            h1 = slice(start + i * 2 * half, start + i * 2 * half + half)
            h2 = slice(h1.stop, h1.stop + half)
            for lane in range(lanes):
                firsts[lane, i] = _masked_mean(env[lane, h1], mask[lane, h1])
                seconds[lane, i] = _masked_mean(env[lane, h2], mask[lane, h2])
        positive = (firsts > seconds).astype(np.uint8)
        margins = (firsts - seconds)[:, : pilot.size]
        signs = pilot.astype(float) * 2.0 - 1.0
        decoded = positive.copy()
        for lane in range(lanes):
            if float(np.dot(margins[lane], signs)) < 0:
                decoded[lane] = 1 - positive[lane]
        return staged.fb_stream[:, pilot.size :], decoded[:, pilot.size :]
