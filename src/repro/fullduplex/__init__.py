"""Full-duplex backscatter — the paper's primary contribution.

While device A backscatters a data frame to device B, device B
simultaneously backscatters a low-rate feedback stream to A.  Rate
asymmetry makes both directions decodable without any RF cancellation
hardware:

* **B decodes A's data while transmitting** because B's own slow
  switching is a known, slowly varying gain step its receive chain
  removes (:mod:`repro.fullduplex.selfinterference`);
* **A decodes B's feedback while transmitting** because A averages its
  envelope over feedback-bit periods, using only the samples where A's
  own modulator is absorbing (:mod:`repro.fullduplex.feedback`).

On top of the physical link (:mod:`repro.fullduplex.link`), the feedback
channel carries live ACK/NACK semantics (:mod:`repro.fullduplex.protocol`)
driven by in-reception collision detectors
(:mod:`repro.fullduplex.collision`), and a rate-adaptation loop
(:mod:`repro.fullduplex.rateadapt`).
"""

from repro.fullduplex.collision import (
    CollisionVerdict,
    CrcOnlyDetector,
    EnergyAnomalyDetector,
    MarginCollapseDetector,
)
from repro.fullduplex.config import FullDuplexConfig
from repro.fullduplex.feedback import (
    FeedbackDecoder,
    feedback_bits_for_frame,
    feedback_waveform,
)
from repro.fullduplex.link import FullDuplexExchange, FullDuplexLink
from repro.fullduplex.protocol import (
    ACK_BIT,
    NACK_BIT,
    FeedbackProtocol,
    PacketVerdict,
)
from repro.fullduplex.rateadapt import RateAdapter
from repro.fullduplex.selfinterference import (
    compensate_envelope,
    own_off_mask,
    residual_self_interference,
)

__all__ = [
    "ACK_BIT",
    "CollisionVerdict",
    "CrcOnlyDetector",
    "EnergyAnomalyDetector",
    "FeedbackDecoder",
    "FeedbackProtocol",
    "FullDuplexConfig",
    "FullDuplexExchange",
    "FullDuplexLink",
    "MarginCollapseDetector",
    "NACK_BIT",
    "PacketVerdict",
    "RateAdapter",
    "compensate_envelope",
    "feedback_bits_for_frame",
    "feedback_waveform",
    "own_off_mask",
    "residual_self_interference",
]
