"""``repro.lint`` engine: rule registry, AST visitor dispatch, suppression.

The linter exists because every reproducibility bug this repo has
shipped — RNG spawn collisions, bare-NaN JSON, unsorted result keys —
was a mechanically detectable *pattern*, found only after it landed.
The engine makes those patterns un-regressable:

* a :class:`Rule` is pure configuration — id, severity, message
  template, fix hint, path scope — bound to one :class:`BaseChecker`
  subclass that inspects AST nodes;
* the :class:`Linter` parses each file once, builds a shared
  :class:`ModuleContext` (source lines, import-alias resolution,
  suppression comments) and dispatches every AST node to every active
  checker in a single walk;
* findings on a line carrying ``# repro: noqa[RULE]`` (or a blanket
  ``# repro: noqa``) are kept but marked suppressed — they appear in
  the JSON report for audit, and do not affect the exit code.

The engine deliberately imports nothing heavy (no numpy): it must be
cheap enough to run as a CI gate before the simulation dependencies
are even installed.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import BytesIO
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Suppression comment: ``# repro: noqa`` silences every rule on the
#: line, ``# repro: noqa[RNG001]`` / ``noqa[RNG001,SER002]`` silences
#: the listed rules only.  Anything after the directive is the
#: justification (the self-lint test keeps src/ free of *unjustified*
#: suppressions by convention; the comment text is free-form).
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Rule id of the engine-level "file does not parse" finding.  Not a
#: registered rule (it cannot be deselected: an unparseable file can
#: satisfy no invariant).
PARSE_ERROR_ID = "LINT001"

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """One lint rule: pure declarative configuration plus a checker.

    ``message`` is a ``str.format`` template; checkers fill it with the
    keyword details they pass to :meth:`BaseChecker.report`.
    ``applies_to`` receives a POSIX-style path relative to the lint
    root and scopes the rule (e.g. serialization rules only bind
    inside ``repro/store/``).
    """

    id: str
    name: str
    severity: str
    message: str
    fix_hint: str
    checker: type
    applies_to: Callable[[str], bool]

    def describe(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


class Registry:
    """Rule registry: id → :class:`Rule`, populated via decorator."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def rule(
        self,
        *,
        id: str,
        name: str,
        severity: str,
        message: str,
        fix_hint: str,
        applies_to: Callable[[str], bool],
    ) -> Callable[[type], type]:
        """Class decorator registering a :class:`BaseChecker` subclass."""

        def register(checker: type) -> type:
            if id in self._rules:
                raise ValueError(f"duplicate rule id {id!r}")
            if severity not in SEVERITIES:
                raise ValueError(
                    f"rule {id}: severity must be one of {SEVERITIES}"
                )
            rule = Rule(
                id=id,
                name=name,
                severity=severity,
                message=message,
                fix_hint=fix_hint,
                checker=checker,
                applies_to=applies_to,
            )
            self._rules[id] = rule
            checker.rule = rule
            return checker

        return register

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> list[Rule]:
        """Resolve ``--select`` / ``--ignore`` prefixes to a rule list.

        Matching is by id prefix (``RNG`` selects every RNG rule,
        ``RNG005`` exactly one), mirroring the familiar flake8/ruff
        semantics.  Unknown prefixes raise so a typo cannot silently
        disable a gate.
        """
        chosen = list(self._rules.values())
        if select is not None:
            prefixes = _clean_prefixes(select, self)
            chosen = [
                r for r in chosen
                if any(r.id.startswith(p) for p in prefixes)
            ]
        if ignore is not None:
            prefixes = _clean_prefixes(ignore, self)
            chosen = [
                r for r in chosen
                if not any(r.id.startswith(p) for p in prefixes)
            ]
        return chosen


def _clean_prefixes(prefixes: Iterable[str], registry: Registry) -> list[str]:
    out = []
    for prefix in prefixes:
        prefix = prefix.strip()
        if not prefix:
            continue
        if not any(rid.startswith(prefix) for rid in registry.ids()):
            known = ", ".join(registry.ids())
            raise ValueError(
                f"unknown rule or prefix {prefix!r} (known: {known})"
            )
        out.append(prefix)
    return out


@dataclass(frozen=True)
class Finding:
    """One lint finding, suppressed or not."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str
    suppressed: bool = False

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "suppressed": self.suppressed,
        }

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity} {self.message}"
        )


class ModuleContext:
    """Per-file state shared by every checker: source, imports, scope.

    ``imports`` maps local names to the dotted origin they alias
    (``np`` → ``numpy``, ``default_rng`` → ``numpy.random.default_rng``),
    so rules match what a call *resolves to*, not how it is spelled.
    """

    def __init__(self, rel_path: str, source: str, tree: ast.Module) -> None:
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.imports: dict[str, str] = {}
        self.has_module_getattr = False
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative: outside rule vocabulary
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{module}.{alias.name}"
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "__getattr__":
                self.has_module_getattr = True

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a ``Name``/``Attribute`` chain, or ``None``.

        ``np.random.seed`` resolves to ``numpy.random.seed`` whatever
        numpy was imported as; a bare from-imported ``default_rng``
        resolves to ``numpy.random.default_rng``.  Locals and
        attribute chains rooted in non-imports resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)])


class BaseChecker:
    """Base class for rule checkers.

    Subclasses implement ``visit_<NodeType>`` methods (dispatched by
    the engine in one shared walk) and/or ``finish`` (called once per
    file, for module-level rules), reporting via :meth:`report`.
    """

    rule: Rule  # bound by Registry.rule

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, **detail) -> None:
        self.findings.append(
            Finding(
                rule=self.rule.id,
                severity=self.rule.severity,
                path=self.ctx.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=self.rule.message.format(**detail),
                fix_hint=self.rule.fix_hint,
            )
        )

    def finish(self) -> None:
        """Module-level hook; default no-op."""


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Line → suppressed rule ids (``None`` = every rule) from comments."""
    out: dict[int, set[str] | None] = {}
    try:
        tokens = tokenize.tokenize(BytesIO(source.encode("utf-8")).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(tok.string)
            if not match:
                continue
            listed = match.group("rules")
            if listed is None:
                out[tok.start[0]] = None
            else:
                rules = {r.strip() for r in listed.split(",") if r.strip()}
                existing = out.get(tok.start[0], set())
                if existing is None:
                    continue
                out[tok.start[0]] = existing | rules
    except tokenize.TokenError:
        pass
    return out


@dataclass
class LintReport:
    """Everything one lint run produced, JSON- and text-renderable."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: list[Rule] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def to_dict(self) -> dict:
        by_rule: dict[str, int] = {}
        for finding in self.active:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": [rule.describe() for rule in self.rules],
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "by_rule": by_rule,
            },
        }

    def to_json(self) -> str:
        # The linter holds itself to its own serialization rules.
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, allow_nan=False
        )

    def format_text(self, *, show_suppressed: bool = False) -> str:
        lines = []
        shown = self.findings if show_suppressed else self.active
        for finding in sorted(
            shown, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            tag = " (suppressed)" if finding.suppressed else ""
            lines.append(finding.format() + tag)
            if finding.fix_hint:
                lines.append(f"    hint: {finding.fix_hint}")
        lines.append(
            f"{self.files_scanned} file(s) scanned: "
            f"{len(self.active)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


class Linter:
    """Run a rule set over sources, files or directory trees."""

    def __init__(
        self,
        registry: Registry,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        self.registry = registry
        self.rules = registry.select(select, ignore)

    # -- single sources ----------------------------------------------------

    def lint_source(self, source: str, rel_path: str) -> list[Finding]:
        """Lint one source text as if it lived at ``rel_path``.

        The path chooses which rules bind (serialization rules only
        apply under ``repro/store/`` etc.), which is what lets the
        test suite feed minimal snippets through real scoping.
        """
        rel = rel_path.replace("\\", "/")
        active = [r for r in self.rules if r.applies_to(rel)]
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(
                    rule=PARSE_ERROR_ID,
                    severity="error",
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                    fix_hint="fix the syntax error; nothing else can be "
                    "checked until the file parses",
                )
            ]
        if not active:
            return []
        ctx = ModuleContext(rel, source, tree)
        checkers = [rule.checker(ctx) for rule in active]
        dispatch: dict[type, list] = {}
        for checker in checkers:
            for attr in dir(checker):
                if not attr.startswith("visit_"):
                    continue
                node_type = getattr(ast, attr[len("visit_"):], None)
                if node_type is None:
                    raise TypeError(
                        f"{type(checker).__name__}.{attr}: unknown AST node"
                    )
                dispatch.setdefault(node_type, []).append(
                    getattr(checker, attr)
                )
        for node in ast.walk(tree):
            for handler in dispatch.get(type(node), ()):
                handler(node)
        findings: list[Finding] = []
        suppressed_lines = _suppressions(source)
        for checker in checkers:
            checker.finish()
            findings.extend(checker.findings)
        out = []
        for finding in findings:
            rules_on_line = suppressed_lines.get(finding.line, set())
            if rules_on_line is None or finding.rule in rules_on_line:
                finding = Finding(
                    **{**finding.to_dict(), "suppressed": True}
                )
            out.append(finding)
        out.sort(key=lambda f: (f.line, f.col, f.rule))
        return out

    # -- trees -------------------------------------------------------------

    def lint_paths(
        self, paths: Iterable[str | Path], root: str | Path | None = None
    ) -> LintReport:
        """Lint files and directory trees; paths are reported relative
        to ``root`` (default: the current working directory) when they
        live under it, absolute otherwise."""
        root = Path.cwd() if root is None else Path(root)
        report = LintReport(rules=list(self.rules))
        for path in paths:
            for file in sorted(_python_files(Path(path))):
                try:
                    rel = file.resolve().relative_to(root.resolve())
                    rel_path = rel.as_posix()
                except ValueError:
                    rel_path = file.as_posix()
                source = file.read_text(encoding="utf-8")
                report.findings.extend(self.lint_source(source, rel_path))
                report.files_scanned += 1
        return report


def _python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        yield path
        return
    if not path.is_dir():
        raise FileNotFoundError(f"no such file or directory: {path}")
    for file in path.rglob("*.py"):
        if any(
            part.startswith(".") or part == "__pycache__"
            for part in file.parts
        ):
            continue
        yield file
