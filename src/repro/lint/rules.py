"""The shipped rule set: this repo's reproducibility invariants, as code.

Every rule here encodes an invariant the repo once broke (or nearly
broke) and now depends on — see DESIGN.md §10 for the incident behind
each one.  Rules are grouped by id prefix:

* ``RNG``  — randomness discipline: all randomness flows through
  explicit ``numpy.random.Generator`` objects built by
  :func:`repro.utils.rng.ensure_rng` / ``spawn_rngs``;
* ``DET``  — determinism hazards: wall-clock reads, unordered ``set``
  iteration, mutable default arguments;
* ``SER``  — serialization discipline in the store/campaign layers:
  strict-finite JSON (``allow_nan=False``) and canonical key order;
* ``API``  — public-surface hygiene: no star imports, honest
  ``__all__`` declarations.

Path scoping uses POSIX paths relative to the lint root.  Rules apply
to the narrowest path set that holds the invariant, so tests and
benchmarks stay free to, say, construct throwaway generators while the
package itself cannot.
"""

from __future__ import annotations

import ast
import re

from repro.lint.engine import BaseChecker, Registry

REGISTRY = Registry()
rule = REGISTRY.rule


# -- path scopes -----------------------------------------------------------

_PACKAGE_RE = re.compile(r"(^|/)repro/")
_SERIAL_RE = re.compile(
    r"(^|/)repro/(store|campaigns|obs)/"
    r"|(^|/)repro/experiments/results\.py$"
)


def everywhere(path: str) -> bool:
    """All linted python files (src, tests, benchmarks)."""
    return True


def in_package(path: str) -> bool:
    """Files inside the ``repro`` package itself."""
    return bool(_PACKAGE_RE.search(path))


def in_serialization_scope(path: str) -> bool:
    """The layers whose JSON reaches disk or content addresses."""
    return bool(_SERIAL_RE.search(path))


# -- RNG discipline --------------------------------------------------------

_GLOBAL_DRAWS = frozenset(
    "numpy.random." + name
    for name in (
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "multinomial",
        "multivariate_normal", "normal", "pareto", "permutation",
        "poisson", "power", "rand", "randint", "randn", "random",
        "random_integers", "random_sample", "ranf", "rayleigh", "sample",
        "shuffle", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_normal", "standard_t", "triangular",
        "uniform", "vonmises", "wald", "weibull", "zipf",
    )
)


@rule(
    id="RNG001",
    name="no-global-numpy-seed",
    severity="error",
    message="global numpy RNG state mutation via `{call}`",
    fix_hint="seed an explicit generator instead: "
    "`rng = repro.utils.rng.ensure_rng(seed)`",
    applies_to=everywhere,
)
class NoGlobalNumpySeed(BaseChecker):
    """``np.random.seed`` / ``set_state`` poison every caller in the
    process: trials are only reproducible if no code can touch shared
    RNG state."""

    TARGETS = frozenset({"numpy.random.seed", "numpy.random.set_state"})

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in self.TARGETS:
            self.report(node, call=dotted)


@rule(
    id="RNG002",
    name="no-legacy-randomstate",
    severity="error",
    message="legacy `numpy.random.RandomState` constructed",
    fix_hint="use the Generator API via `repro.utils.rng.ensure_rng`; "
    "RandomState streams are frozen to legacy algorithms and cannot "
    "spawn independent children",
    applies_to=everywhere,
)
class NoLegacyRandomState(BaseChecker):
    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) == "numpy.random.RandomState":
            self.report(node)


@rule(
    id="RNG003",
    name="no-global-numpy-draw",
    severity="error",
    message="draw from the global numpy RNG via `{call}`",
    fix_hint="draw from an explicit generator passed down from the "
    "trial seed (`rng.normal(...)`, not `np.random.normal(...)`)",
    applies_to=everywhere,
)
class NoGlobalNumpyDraw(BaseChecker):
    """Module-level ``np.random.<draw>`` calls share one hidden stream:
    results then depend on call order across the whole process, which
    is exactly what the per-trial ``SeedSequence.spawn`` contract
    (DESIGN §7) exists to prevent."""

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in _GLOBAL_DRAWS:
            self.report(node, call=dotted)


@rule(
    id="RNG004",
    name="no-stdlib-random",
    severity="error",
    message="stdlib `random` imported in package code",
    fix_hint="use numpy Generators via `repro.utils.rng.ensure_rng`; "
    "stdlib random is a second, unseeded entropy source that the "
    "runner's seeding contract cannot reach",
    applies_to=in_package,
)
class NoStdlibRandom(BaseChecker):
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.report(node)


@rule(
    id="RNG005",
    name="generator-via-ensure-rng",
    severity="error",
    message="direct `numpy.random.default_rng` construction in package "
    "code",
    fix_hint="route through `repro.utils.rng.ensure_rng` (accepts None, "
    "int, SeedSequence or Generator) or `spawn_rngs`; one blessed "
    "constructor keeps the seeding contract auditable",
    applies_to=in_package,
)
class GeneratorViaEnsureRng(BaseChecker):
    """All Generator construction inside the package flows through
    ``utils.rng``.  The implementation sites in ``utils/rng.py`` itself
    carry ``# repro: noqa[RNG005]`` suppressions with justification —
    they *are* the blessed constructor."""

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) == "numpy.random.default_rng":
            self.report(node)


# -- determinism hazards ---------------------------------------------------


@rule(
    id="DET001",
    name="no-wall-clock",
    severity="error",
    message="wall-clock / OS-entropy read via `{call}` in package code",
    fix_hint="trial and store code must be a pure function of (spec, "
    "seed); timestamps belong in benchmark harnesses "
    "(`time.perf_counter`) or CLI presentation, not in records or keys",
    applies_to=in_package,
)
class NoWallClock(BaseChecker):
    """``time.time()`` in a record, key or checkpoint makes two
    identical runs produce different bytes — which breaks the
    content-addressed store's equality contract.  ``perf_counter`` /
    ``monotonic`` are handled separately: measuring duration is fine,
    but inside the package it must flow through the blessed
    ``repro.obs.clock`` module (DET004)."""

    TARGETS = frozenset({
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    })

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in self.TARGETS:
            self.report(node, call=dotted)


@rule(
    id="DET002",
    name="no-bare-set-iteration",
    severity="warning",
    message="iteration over a bare `set` — order is arbitrary",
    fix_hint="wrap in `sorted(...)` before iterating; set order varies "
    "with insertion history and PYTHONHASHSEED, so any iteration that "
    "reaches records, keys or output is non-deterministic",
    applies_to=everywhere,
)
class NoBareSetIteration(BaseChecker):
    """Heuristic: flags ``for x in {…}`` / ``for x in set(…)`` and set
    iterables inside comprehensions.  It cannot see through variables
    (a set bound to a name iterates invisibly), but the direct forms
    are the ones that slip through review."""

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self.report(node.iter)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self.report(gen.iter)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@rule(
    id="DET003",
    name="no-mutable-default",
    severity="error",
    message="mutable default argument `{repr}`",
    fix_hint="default to None and construct inside the function; a "
    "mutable default is one shared object across every call — state "
    "that leaks between trials",
    applies_to=everywhere,
)
class NoMutableDefault(BaseChecker):
    _CTORS = frozenset({
        "list", "dict", "set", "bytearray",
        "defaultdict", "OrderedDict", "Counter", "deque",
    })

    def _check(self, node) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            )
            if (
                not bad
                and isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._CTORS
            ):
                bad = True
            if bad:
                self.report(default, repr=ast.unparse(default))

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
    visit_Lambda = _check


@rule(
    id="DET004",
    name="clock-via-obs-clock",
    severity="error",
    message="direct monotonic clock read via `{call}` in package code",
    fix_hint="route through `repro.obs.clock.monotonic_s` / "
    "`monotonic_ns`; one blessed clock module keeps every timing site "
    "auditable and out of records, keys and checkpoints (benchmarks "
    "and tests may read `time.perf_counter` directly)",
    applies_to=in_package,
)
class ClockViaObsClock(BaseChecker):
    """The observability layer measures durations everywhere, so
    monotonic reads can no longer be spotted by eye.  All package
    timing flows through ``repro.obs.clock`` — whose own two reads
    carry justified ``# repro: noqa[DET004]`` suppressions — so the
    set of places timing can leak into results stays exactly one
    module.  Wall-clock reads are DET001's business."""

    TARGETS = frozenset({
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    })

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in self.TARGETS:
            self.report(node, call=dotted)


# -- serialization discipline ----------------------------------------------


def _json_dump_call(ctx, node: ast.Call) -> str | None:
    dotted = ctx.resolve(node.func)
    if dotted in ("json.dumps", "json.dump"):
        return dotted
    return None


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_const(node: ast.expr | None, value) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def _routes_through_nonfinite_codec(ctx, node: ast.Call) -> bool:
    """True when the serialized payload passes through the repo's
    ``$nonfinite`` sentinel encoder (``encode_nonfinite``)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "encode_nonfinite":
                return True
    return False


@rule(
    id="SER001",
    name="json-strict-finite",
    severity="error",
    message="`{call}` without `allow_nan=False` in a store/campaign "
    "code path",
    fix_hint="pass `allow_nan=False` (and encode non-finite floats as "
    '`{"$nonfinite": ...}` sentinels via `encode_nonfinite`); bare '
    "NaN tokens are not JSON and silently corrupt stored tables "
    "(the PR 7 incident)",
    applies_to=in_serialization_scope,
)
class JsonStrictFinite(BaseChecker):
    def visit_Call(self, node: ast.Call) -> None:
        call = _json_dump_call(self.ctx, node)
        if call is None:
            return
        if not _is_const(_keyword(node, "allow_nan"), False):
            self.report(node, call=call)


@rule(
    id="SER002",
    name="json-canonical-order",
    severity="error",
    message="`{call}` with neither `sort_keys=True` nor the "
    "`$nonfinite` codec in a store/campaign code path",
    fix_hint="pass `sort_keys=True` (canonical key order — content "
    "addresses hash these bytes) or route the payload through "
    "`encode_nonfinite`/`canonical_json`, which pins an explicit, "
    "deliberate layout",
    applies_to=in_serialization_scope,
)
class JsonCanonicalOrder(BaseChecker):
    """Two dicts with equal content must serialize to equal bytes
    wherever JSON reaches disk or a hash.  ``sort_keys=True`` is the
    default way to get that; the ResultTable/codec documents that
    preserve column order instead route through ``encode_nonfinite``,
    which marks the layout as deliberate and strict-finite."""

    def visit_Call(self, node: ast.Call) -> None:
        call = _json_dump_call(self.ctx, node)
        if call is None:
            return
        if _is_const(_keyword(node, "sort_keys"), True):
            return
        if _routes_through_nonfinite_codec(self.ctx, node):
            return
        self.report(node, call=call)


# -- API hygiene -----------------------------------------------------------


@rule(
    id="API001",
    name="no-star-import",
    severity="error",
    message="star import `from {module} import *`",
    fix_hint="import the names you use; star imports make the public "
    "surface untrackable and defeat the `__all__` audit",
    applies_to=everywhere,
)
class NoStarImport(BaseChecker):
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if any(alias.name == "*" for alias in node.names):
            module = "." * node.level + (node.module or "")
            self.report(node, module=module)


@rule(
    id="API002",
    name="honest-all-exports",
    severity="error",
    message="{problem}",
    fix_hint="keep `__all__` in sync with the public surface: every "
    "public top-level name in a package `__init__` belongs in "
    "`__all__`, and every `__all__` entry must exist (module-level "
    "`__getattr__` lazy exports are recognised)",
    applies_to=in_package,
)
class HonestAllExports(BaseChecker):
    """``__all__`` is the package's public contract: the API docs, the
    star-import surface and (for the mypy strict islands) the explicit
    re-export list.  A name missing from it is unofficially public; a
    stale entry breaks ``from repro.x import *`` at import time."""

    def finish(self) -> None:
        tree = self.ctx.tree
        all_node: ast.Assign | None = None
        exported: list[str] | None = None
        top_level: dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            all_node = node
                            try:
                                exported = [
                                    str(e) for e in ast.literal_eval(node.value)
                                ]
                            except (ValueError, SyntaxError):
                                exported = None  # dynamic: not auditable
                        else:
                            top_level[target.id] = node
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    top_level[node.target.id] = node
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                top_level[node.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    top_level[name] = node
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    top_level[alias.asname or alias.name] = node
        is_init = self.ctx.rel_path.endswith("__init__.py")
        public = {n for n in top_level if not n.startswith("_")}
        if exported is None:
            if all_node is None and is_init and public:
                self.report(
                    tree,
                    problem="package `__init__` defines a public surface "
                    "but no `__all__`",
                )
            return
        if not self.ctx.has_module_getattr:
            for name in exported:
                if name not in top_level:
                    self.report(
                        all_node,
                        problem=f"`__all__` lists `{name}`, which is not "
                        "defined or imported at module level",
                    )
        if is_init:
            for name in sorted(public - set(exported)):
                self.report(
                    top_level[name],
                    problem=f"public name `{name}` is imported/defined in "
                    "a package `__init__` but missing from `__all__`",
                )
