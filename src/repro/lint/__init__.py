"""``repro.lint`` — AST-based determinism & serialization linter.

A custom static-analysis pass encoding the repo's reproducibility
invariants: RNG discipline (all randomness through
:func:`repro.utils.rng.ensure_rng` / ``spawn_rngs``), determinism
hazards (wall-clock reads, bare-``set`` iteration, mutable defaults),
serialization discipline (strict-finite, canonically-ordered JSON in
the store/campaign layers) and API hygiene (no star imports, honest
``__all__``).  See DESIGN.md §10 for the invariant behind each rule
and the incident that motivated it.

Run it as ``repro lint [paths]`` or ``python -m repro.lint``; suppress
a finding with ``# repro: noqa[RULE]  -- justification``.
"""

from repro.lint.cli import DEFAULT_PATHS, lint_report, run_lint
from repro.lint.engine import (
    PARSE_ERROR_ID,
    BaseChecker,
    Finding,
    Linter,
    LintReport,
    Registry,
    Rule,
)
from repro.lint.rules import REGISTRY

__all__ = [
    "DEFAULT_PATHS",
    "PARSE_ERROR_ID",
    "REGISTRY",
    "BaseChecker",
    "Finding",
    "Linter",
    "LintReport",
    "Registry",
    "Rule",
    "lint_report",
    "run_lint",
]
