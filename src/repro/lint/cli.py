"""Command-line front end for ``repro lint``.

Exposed both as the ``lint`` subcommand of the main ``repro`` CLI and
standalone as ``python -m repro.lint`` (handy in CI, where the lint
gate runs before the simulation dependencies are worth installing).

Exit codes: 0 — clean (suppressed findings allowed); 1 — at least one
non-suppressed finding; 2 — usage error (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.engine import Linter, LintReport
from repro.lint.rules import REGISTRY

#: What ``repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to enable "
        "(e.g. RNG,SER001); default: all rules",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids or prefixes to disable",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write the full JSON report (including suppressed "
        "findings) to FILE — the CI artifact",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part for part in arg.split(",") if part.strip()]


def _format_rule_table() -> str:
    lines = ["ID       SEV      NAME"]
    for rule in sorted(REGISTRY, key=lambda r: r.id):
        lines.append(f"{rule.id:<8} {rule.severity:<8} {rule.name}")
        lines.append(f"         {rule.fix_hint}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(_format_rule_table())
        return 0
    try:
        linter = Linter(
            REGISTRY, select=_split(args.select), ignore=_split(args.ignore)
        )
        report = linter.lint_paths(args.paths)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text(show_suppressed=args.show_suppressed))
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & serialization linter "
        "for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


def lint_report(paths, **kwargs) -> LintReport:
    """Programmatic entry point: lint ``paths`` with the shipped rules."""
    return Linter(REGISTRY, **kwargs).lint_paths(paths)
