"""Slotted, tensorized MAC contention engine: many replications at once.

:class:`SlottedMacEngine` is the ``backend="vectorized"`` implementation
behind the ``mac`` trial kind.  One *lane* is one independent contention
replication (the workload :class:`~repro.mac.simulator.NetworkSimulator`
runs event by event); the engine advances a whole chunk of lanes through
discrete time slots, with every per-link state variable held in a flat
``(lanes * links,)`` array and every protocol transition expressed as a
masked array update.

Discretisation model
--------------------
Time is quantised to *feedback slots* of ``asymmetry_ratio`` bits — the
natural granularity of the paper's protocol, since the full-duplex
abort/resume points are multiples of ``r`` by construction:

* Poisson arrivals replay the serial path's draws exactly (same spawned
  per-link generators, same exponential gaps), then bin to the slot
  grid (floor); the continuous arrival instant is kept for latency
  accounting.  Offered workloads are therefore bit-identical to the
  serial trials'.
* A transmission occupies ``ceil(bits / slot)`` slots of the single
  collision domain; per-slot occupancy counts >= 2 corrupt every
  transmission covering that slot (first corruption wins, exactly the
  event-driven rule).
* Binary-exponential backoff draws are floored to slots; the
  half-duplex turnaround + ACK + guard exchange rounds up to whole
  slots (it is sub-slot at the default ``r = 64``).
* Energy, airtime and bit tallies use the exact *bit* quantities
  (attempt length, abort point, ACK length) — only event timing and
  collision geometry are quantised.

Equivalence contract (DESIGN §7)
--------------------------------
Because collision geometry is quantised, the engine is **statistically
equivalent** to the event-driven simulator, not bitwise: paired-seed
runs must produce overlapping Wilson intervals on pooled delivery (and
closely matching goodput/abort/energy statistics), which
``tests/test_batch_equivalence.py`` pins across the contention presets.
Lane ``i`` consumes only the generators derived from trial ``i``'s seed
child, so records are independent of the chunk size and the store's
top-up/truncation contracts remain valid.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.traffic import poisson_arrivals
from repro.utils.rng import ensure_rng, spawn_rngs

#: Per-link protocol phases (values are arbitrary but stable).
_IDLE, _TX, _WAIT, _BACKOFF, _ACK = 0, 1, 2, 3, 4

#: Initial per-(lane, link) budget of pre-drawn event uniforms; the
#: block doubles on exhaustion (values depend only on each link
#: generator's stream position, so late refills are deterministic).
_EVENT_BLOCK = 128


def _ceil_div(a, b):
    return -(-a // b)


class SlottedMacEngine:
    """Vectorized executor for chunks of MAC contention replications.

    Parameters
    ----------
    spec:
        A :class:`~repro.experiments.spec.ScenarioSpec`; the engine
        mirrors ``mac_trial``'s workload (``spec.build_mac_config()``)
        and policy arm (``spec.build_mac_policy()``).
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        cfg = spec.build_mac_config()
        policy = spec.build_mac_policy()
        self.cfg = cfg
        self.kind = spec.mac_policy
        self.is_fd = isinstance(policy, FullDuplexAbortPolicy)
        self.is_resume = self.kind == "fd-resume"
        self.is_hd = self.kind == "hd-arq"
        self.energy = EnergyModel()

        self.rate = float(cfg.bit_rate_bps)
        self.slot_bits = max(1, int(spec.asymmetry_ratio))
        self.slot_sec = self.slot_bits / self.rate
        self.full_bits = int(cfg.packet_bits)
        self.payload_bits = int(cfg.payload_bits)
        self.packet_sec = cfg.packet_seconds
        self.horizon = float(cfg.horizon_seconds)
        grace = 50.0 * cfg.packet_seconds
        self.max_slot = int((self.horizon + grace) / self.slot_sec)
        self.rates = np.asarray(cfg.link_arrival_rates(), dtype=float)
        self.p_loss = float(cfg.loss.loss_probability)
        self.max_retries = int(policy.max_retries)

        if self.is_fd:
            self.r = int(policy.asymmetry_ratio)
            self.detect = int(policy.detection_latency_bits)
            self.tail_slots = _ceil_div(
                int(policy.ack_tail_slots) * self.r, self.slot_bits
            )
        if self.is_resume:
            self.resume_overhead = int(policy.resume_overhead_bits)
        if self.is_hd:
            ack_bits = int(policy.ack_bits)
            turnaround = int(policy.turnaround_bits)
            guard = int(policy.timeout_guard_bits)
            self.ack_slots = max(
                1, _ceil_div(turnaround + ack_bits, self.slot_bits)
            )
            self.timeout_slots = max(
                1, _ceil_div(turnaround + ack_bits + guard, self.slot_bits)
            )
            # ACK exchange costs (the receiver transmits, the original
            # transmitter listens), applied at ACK start like the
            # event-driven simulator does.
            self.ack_rx_e = self.energy.tx_cost(ack_bits)
            self.ack_tx_e = self.energy.rx_cost(ack_bits)
            self.ack_busy = ack_bits / self.rate

    # -- lane-local randomness --------------------------------------------

    def _draw_arrivals(self, children):
        """Per-lane Poisson workloads, drawn exactly as the serial path.

        Each lane replays ``NetworkSimulator.run``'s seeding verbatim —
        one spawned child generator per link, exponential-gap arrivals
        from it — so lane *i*'s offered workload is bit-identical to
        serial trial *i*'s, and only the contention *dynamics* are slot
        quantised.  Every draw comes from lane-local generators, so
        records are chunk-size independent.
        """
        lanes, links = len(children), self.rates.size
        link_rngs = []
        arrivals = []
        counts = np.zeros((lanes, links), dtype=np.int64)
        for i, child in enumerate(children):
            gen = ensure_rng(child)
            lane_rngs = spawn_rngs(gen, links)
            link_rngs.append(lane_rngs)
            lane_arrivals = []
            for j in range(links):
                arr = poisson_arrivals(
                    float(self.rates[j]), self.horizon, lane_rngs[j]
                )
                lane_arrivals.append(arr)
                counts[i, j] = arr.size
            arrivals.append(lane_arrivals)
        kmax = max(1, int(counts.max()))
        arr_sec = np.full((lanes, links, kmax), np.inf)
        for i in range(lanes):
            for j in range(links):
                k = int(counts[i, j])
                if k:
                    arr_sec[i, j, :k] = arrivals[i][j]
        arr_slot = np.full((lanes, links, kmax), self.max_slot + 1,
                           dtype=np.int64)
        finite = np.isfinite(arr_sec)
        arr_slot[finite] = (arr_sec[finite] / self.slot_sec).astype(np.int64)
        return counts, arr_sec, arr_slot, link_rngs

    # -- chunk execution ---------------------------------------------------

    def run_chunk(self, children) -> list[dict]:
        """Run one replication per seed child; one record per lane.

        Records carry exactly the keys of
        :func:`repro.experiments.mac.flatten_network_metrics`.
        """
        children = list(children)
        if not children:
            return []
        lanes, links = len(children), self.rates.size
        counts, arr_sec, arr_slot, link_rngs = self._draw_arrivals(children)
        n = lanes * links
        kmax = arr_slot.shape[2]
        arr_sec_f = arr_sec.reshape(n, kmax)
        arr_slot_f = arr_slot.reshape(n, kmax)
        counts_f = counts.reshape(n)
        lane_of = np.repeat(np.arange(lanes), links)
        flat_rngs = [rng for lane in link_rngs for rng in lane]

        # Pre-drawn event uniforms, consumed per (lane, link) through a
        # cursor; each cell draws from its own link generator (after its
        # arrival draws), so every lane stays self-contained.
        def draw_block(width):
            out = np.empty((n, width))
            for k, rng in enumerate(flat_rngs):
                out[k] = rng.random(width)
            return out

        block = draw_block(_EVENT_BLOCK)
        ptr = np.zeros(n, dtype=np.int64)

        def take(f):
            nonlocal block
            if int(ptr[f].max()) >= block.shape[1]:
                block = np.concatenate(
                    [block, draw_block(block.shape[1])], axis=1
                )
            vals = block[f, ptr[f]]
            ptr[f] += 1
            return vals

        phase = np.zeros(n, dtype=np.int8)
        phase_end = np.zeros(n, dtype=np.int64)
        next_idx = np.zeros(n, dtype=np.int64)
        has_pkt = counts_f > 0
        head_slot = arr_slot_f[:, 0].copy()
        pkt_arr = np.zeros(n)
        pkt_deliv = np.zeros(n, dtype=bool)
        retry = np.zeros(n, dtype=np.int64)
        acked = np.zeros(n, dtype=np.int64)
        att_bits = np.zeros(n, dtype=np.int64)
        att_start = np.zeros(n, dtype=np.int64)
        corrupt = np.zeros(n, dtype=bool)
        onset = np.full(n, -1, dtype=np.int64)
        aborted = np.zeros(n, dtype=bool)
        abort_bits = np.zeros(n, dtype=np.int64)
        cur_bits = np.zeros(n, dtype=np.int64)
        cur_aborted = np.zeros(n, dtype=bool)
        pend_deliv = np.zeros(n, dtype=bool)
        pend_know = np.zeros(n, dtype=bool)
        ack_corrupt = np.zeros(n, dtype=bool)

        m_attempts = np.zeros(n, dtype=np.int64)
        m_aborted = np.zeros(n, dtype=np.int64)
        m_delivered = np.zeros(n, dtype=np.int64)
        m_failed = np.zeros(n, dtype=np.int64)
        m_bits = np.zeros(n, dtype=np.int64)
        m_payload = np.zeros(n, dtype=np.int64)
        m_tx_e = np.zeros(n)
        m_rx_e = np.zeros(n)
        m_lat = np.zeros(n)
        m_busy = np.zeros(n)

        t = 0
        big = self.max_slot + 1

        def fd_abort(f, onset_bits, bits, start):
            """Early-abort bookkeeping for newly corrupted fd attempts."""
            stop = ((onset_bits + self.detect) // self.r + 2) * self.r
            can = stop < bits
            fa = f[can]
            if fa.size:
                aborted[fa] = True
                abort_bits[fa] = stop[can]
                phase_end[fa] = np.maximum(
                    start[can] + _ceil_div(stop[can], self.slot_bits), t + 1
                )

        while t <= self.max_slot:
            # -- 1. data transmissions ending at this slot ----------------
            m = (phase == _TX) & (phase_end <= t)
            if m.any():
                f = np.nonzero(m)[0]
                cur_bits[f] = np.where(
                    aborted[f], abort_bits[f], att_bits[f]
                )
                cur_aborted[f] = aborted[f]
                if self.kind == "no-arq":
                    phase[f] = _WAIT
                    phase_end[f] = t
                    pend_deliv[f] = ~corrupt[f]
                elif self.is_fd:
                    # The trailing feedback slot carries the final
                    # ACK/NACK; it rides the backscatter, no occupancy.
                    phase[f] = _WAIT
                    phase_end[f] = t + self.tail_slots
                    pend_deliv[f] = ~corrupt[f]
                    pend_know[f] = True
                else:  # hd-arq
                    bad = corrupt[f]
                    fb_ = f[bad]
                    phase[fb_] = _WAIT
                    phase_end[fb_] = t + self.timeout_slots
                    pend_deliv[fb_] = False
                    pend_know[fb_] = True
                    fg = f[~bad]
                    if fg.size:
                        phase[fg] = _ACK
                        phase_end[fg] = t + self.ack_slots
                        ack_corrupt[fg] = take(fg) < self.p_loss
                        m_rx_e[fg] += self.ack_rx_e
                        m_tx_e[fg] += self.ack_tx_e
                        m_busy[fg] += self.ack_busy

            # -- 2. waits / ACK exchanges resolving at this slot ----------
            m = ((phase == _WAIT) | (phase == _ACK)) & (phase_end <= t)
            if m.any():
                f = np.nonzero(m)[0]
                is_ack = phase[f] == _ACK
                dv = pend_deliv[f] | is_ack
                kn = np.where(is_ack, ~ack_corrupt[f], pend_know[f])
                bits = cur_bits[f]
                m_bits[f] += bits
                m_aborted[f] += cur_aborted[f]
                m_tx_e[f] += self.energy.tx_bit_joule * bits
                fb = bits // self.r if self.is_fd else 0
                m_rx_e[f] += (
                    self.energy.rx_bit_joule * bits
                    + self.energy.feedback_bit_joule * fb
                )
                m_busy[f] += bits / self.rate
                was = pkt_deliv[f]
                first = dv & ~was
                ff = f[first]
                m_delivered[ff] += 1
                m_payload[ff] += self.payload_bits
                m_lat[ff] += t * self.slot_sec - pkt_arr[ff]
                pkt_deliv[ff] = True
                retrying = ~(dv & kn) & (retry[f] < self.max_retries)
                done = ~retrying
                if self.is_resume:
                    upd = retrying & corrupt[f] & (onset[f] >= 0)
                    fu = f[upd]
                    acked[fu] = np.minimum(
                        self.full_bits,
                        acked[fu] + (onset[fu] // self.r) * self.r,
                    )
                fail = done & ~(was | dv)
                m_failed[f[fail]] += 1
                phase[f[done]] = _IDLE
                fr = f[retrying]
                if fr.size:
                    retry[fr] += 1
                    window = self.packet_sec * (
                        2.0 ** np.minimum(retry[fr], 6)
                    )
                    boff = take(fr) * window
                    phase[fr] = _BACKOFF
                    phase_end[fr] = t + (boff / self.slot_sec).astype(
                        np.int64
                    )

            # -- 3. attempts starting at this slot ------------------------
            idle_start = (phase == _IDLE) & has_pkt & (head_slot <= t)
            m = idle_start | ((phase == _BACKOFF) & (phase_end <= t))
            if m.any():
                fi = np.nonzero(idle_start)[0]
                if fi.size:
                    pkt_arr[fi] = arr_sec_f[fi, next_idx[fi]]
                    pkt_deliv[fi] = False
                    retry[fi] = 0
                    acked[fi] = 0
                    next_idx[fi] += 1
                    has_pkt[fi] = next_idx[fi] < counts_f[fi]
                    head_slot[fi] = arr_slot_f[
                        fi, np.minimum(next_idx[fi], kmax - 1)
                    ]
                fs = np.nonzero(m)[0]
                if self.is_resume:
                    abits = np.where(
                        retry[fs] == 0,
                        self.full_bits,
                        np.minimum(
                            self.full_bits,
                            np.maximum(1, self.full_bits - acked[fs])
                            + self.resume_overhead,
                        ),
                    )
                else:
                    abits = np.full(fs.size, self.full_bits, dtype=np.int64)
                att_bits[fs] = abits
                att_start[fs] = t
                corrupt[fs] = False
                aborted[fs] = False
                onset[fs] = -1
                pend_know[fs] = False
                m_attempts[fs] += 1
                phase[fs] = _TX
                phase_end[fs] = t + _ceil_div(abits, self.slot_bits)
                u_loss = take(fs)
                u_pos = take(fs)
                lost = u_loss < self.p_loss
                fl = fs[lost]
                if fl.size:
                    ob = (u_pos[lost] * abits[lost]).astype(np.int64)
                    corrupt[fl] = True
                    onset[fl] = ob
                    if self.is_fd:
                        fd_abort(fl, ob, abits[lost], att_start[fl])

            # -- 4. collision domain: occupancy >= 2 corrupts all ---------
            occ = (phase == _TX) | (phase == _ACK)
            cnt = occ.reshape(lanes, links).sum(axis=1)
            if (cnt >= 2).any():
                coll = occ & (cnt >= 2)[lane_of]
                newly = coll & (phase == _TX) & ~corrupt
                f = np.nonzero(newly)[0]
                if f.size:
                    ob = np.minimum(
                        (t - att_start[f]) * self.slot_bits,
                        att_bits[f] - 1,
                    )
                    np.maximum(ob, 0, out=ob)
                    corrupt[f] = True
                    onset[f] = ob
                    if self.is_fd:
                        fd_abort(f, ob, att_bits[f], att_start[f])
                ack_corrupt[coll & (phase == _ACK)] = True

            # -- 5. advance to the next event slot ------------------------
            active = phase != _IDLE
            nxt = min(
                int(np.min(phase_end, where=active, initial=big)),
                int(np.min(head_slot, where=~active & has_pkt, initial=big)),
            )
            if nxt > self.max_slot:
                break
            t = max(t + 1, nxt)

        # Idle leakage over the un-busy remainder of each link's horizon.
        idle = np.maximum(0.0, self.horizon - m_busy)
        m_tx_e += self.energy.idle_second_joule * idle
        m_rx_e += self.energy.idle_second_joule * idle

        def grid(a):
            return a.reshape(lanes, links)

        return self._records(
            grid(counts_f), grid(m_delivered), grid(m_failed),
            grid(m_attempts), grid(m_aborted), grid(m_bits),
            grid(m_payload), grid(m_tx_e), grid(m_rx_e), grid(m_lat),
        )

    def _records(self, offered, delivered, failed, attempts, aborted,
                 bits, payload, tx_e, rx_e, lat) -> list[dict]:
        """Per-lane network sums in the ``flatten_network_metrics`` shape."""
        lanes, links = offered.shape
        off = offered.sum(axis=1)
        del_ = delivered.sum(axis=1)
        fail = failed.sum(axis=1)
        att = attempts.sum(axis=1)
        ab = aborted.sum(axis=1)
        bit = bits.sum(axis=1)
        pay = payload.sum(axis=1)
        txe = tx_e.sum(axis=1)
        tote = txe + rx_e.sum(axis=1)
        lat_s = lat.sum(axis=1)
        pay_sq = (payload.astype(float) ** 2).sum(axis=1)
        records = []
        for i in range(lanes):
            d = int(del_[i])
            p = int(pay[i])
            a = int(att[i])
            jain = (
                1.0
                if p == 0
                else float(p) ** 2 / (links * float(pay_sq[i]))
            )
            records.append({
                "offered_packets": int(off[i]),
                "delivered_packets": d,
                "failed_packets": int(fail[i]),
                "attempts": a,
                "aborted_attempts": int(ab[i]),
                "bits_transmitted": int(bit[i]),
                "payload_bits_delivered": p,
                "tx_energy_joule": float(txe[i]),
                "total_energy_joule": float(tote[i]),
                "latency_sum_seconds": float(lat_s[i]),
                "duration_seconds": self.horizon,
                "goodput_bps": p / self.horizon,
                "delivery_ratio": d / off[i] if off[i] else 0.0,
                "abort_fraction": int(ab[i]) / a if a else 0.0,
                "mean_latency_seconds": (
                    float(lat_s[i]) / d if d else 0.0
                ),
                "energy_per_delivered_bit": (
                    float(tote[i]) / p if p else 0.0
                ),
                "jain_fairness": jain,
            })
        return records
