"""Protocol-level network simulation.

The PHY layer establishes *that* full-duplex feedback works; this package
measures *what it buys* at the protocol level: a discrete-event simulator
(:mod:`repro.mac.simulator`) runs contending backscatter links in one
collision domain and compares link-layer protocols:

* :class:`~repro.mac.arq.NoArqPolicy` — fire and forget;
* :class:`~repro.mac.arq.HalfDuplexArqPolicy` — classic stop-and-wait:
  full packet, turnaround, explicit ACK packet, timeout + backoff;
* :class:`~repro.mac.fdmac.FullDuplexAbortPolicy` — the paper's protocol:
  in-packet ACK/NACK on the feedback channel, early abort on collision
  or corruption, immediate retransmission scheduling.

Traffic models live in :mod:`repro.mac.traffic`; per-node accounting in
:mod:`repro.mac.metrics`.
"""

from repro.mac.arq import HalfDuplexArqPolicy, LinkPolicy, NoArqPolicy
from repro.mac.events import EventQueue
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.metrics import NetworkMetrics, NodeMetrics
from repro.mac.resume import ResumeFromAbortPolicy
from repro.mac.simulator import NetworkSimulator, SimulationConfig
from repro.mac.traffic import BernoulliLoss, poisson_arrivals

__all__ = [
    "BernoulliLoss",
    "EventQueue",
    "FullDuplexAbortPolicy",
    "HalfDuplexArqPolicy",
    "LinkPolicy",
    "NetworkMetrics",
    "NetworkSimulator",
    "NoArqPolicy",
    "NodeMetrics",
    "ResumeFromAbortPolicy",
    "SimulationConfig",
    "poisson_arrivals",
]
