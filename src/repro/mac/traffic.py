"""Traffic and loss models for the network simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_probability


def poisson_arrivals(
    rate_per_second: float, horizon_seconds: float, rng=None
) -> np.ndarray:
    """Arrival times of a Poisson process over ``[0, horizon)``.

    Exponential inter-arrival sampling; returns a sorted float array.
    """
    check_positive("rate_per_second", rate_per_second)
    check_positive("horizon_seconds", horizon_seconds)
    gen = ensure_rng(rng)
    times: list[float] = []
    t = 0.0
    while True:
        t += gen.exponential(1.0 / rate_per_second)
        if t >= horizon_seconds:
            break
        times.append(t)
    return np.asarray(times, dtype=float)


@dataclass(frozen=True)
class BernoulliLoss:
    """Independent per-attempt channel corruption.

    Models everything that kills a packet besides collisions (fades,
    interference bursts) as an i.i.d. loss with probability
    ``loss_probability``.  The F5 goodput bench sweeps this.
    """

    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        check_probability("loss_probability", self.loss_probability)

    def draw(self, rng) -> bool:
        """True when this attempt is corrupted by the channel."""
        if self.loss_probability == 0.0:
            return False
        return bool(ensure_rng(rng).uniform() < self.loss_probability)


@dataclass(frozen=True)
class UniformLossPosition:
    """Where, within a corrupted packet, the corruption begins.

    A channel fade or late-starting interferer corrupts the packet from a
    position uniform in ``[0, packet_bits)``; the early-abort protocol's
    savings depend on this position, so the model exposes it explicitly.
    """

    def draw(self, packet_bits: int, rng) -> int:
        """Bit index at which corruption begins."""
        if packet_bits <= 0:
            raise ValueError("packet_bits must be positive")
        return int(ensure_rng(rng).integers(0, packet_bits))
