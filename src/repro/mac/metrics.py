"""Per-node and network-wide accounting."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeMetrics:
    """One transmitter's tally over a simulation run.

    All energies in joules, times in seconds, sizes in bits.
    """

    name: str = ""
    offered_packets: int = 0
    delivered_packets: int = 0
    failed_packets: int = 0
    attempts: int = 0
    aborted_attempts: int = 0
    bits_transmitted: int = 0
    payload_bits_delivered: int = 0
    tx_energy_joule: float = 0.0
    rx_energy_joule: float = 0.0
    latency_sum_seconds: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets (0 when nothing was offered)."""
        if self.offered_packets == 0:
            return 0.0
        return self.delivered_packets / self.offered_packets

    @property
    def mean_latency_seconds(self) -> float:
        """Mean arrival-to-delivery latency over delivered packets."""
        if self.delivered_packets == 0:
            return 0.0
        return self.latency_sum_seconds / self.delivered_packets

    @property
    def energy_per_delivered_bit(self) -> float:
        """Transmit+receive energy per delivered payload bit [J/bit];
        ``inf`` when nothing was delivered but energy was spent."""
        total = self.tx_energy_joule + self.rx_energy_joule
        if self.payload_bits_delivered == 0:
            return float("inf") if total > 0 else 0.0
        return total / self.payload_bits_delivered


@dataclass
class NetworkMetrics:
    """Aggregate view over all transmitters in a run.

    Attributes
    ----------
    nodes:
        Per-node tallies.
    duration_seconds:
        Simulated horizon.
    """

    nodes: list[NodeMetrics] = field(default_factory=list)
    duration_seconds: float = 0.0

    def total(self, attr: str) -> float:
        """Sum of one :class:`NodeMetrics` field over all nodes."""
        return sum(getattr(n, attr) for n in self.nodes)

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second across the network."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.total("payload_bits_delivered") / self.duration_seconds

    @property
    def delivery_ratio(self) -> float:
        """Network-wide delivered / offered."""
        offered = self.total("offered_packets")
        if offered == 0:
            return 0.0
        return self.total("delivered_packets") / offered

    @property
    def total_tx_energy_joule(self) -> float:
        """Transmit energy summed over nodes."""
        return self.total("tx_energy_joule")

    @property
    def total_energy_joule(self) -> float:
        """All energy (tx + rx) summed over nodes."""
        return self.total("tx_energy_joule") + self.total("rx_energy_joule")

    @property
    def energy_per_delivered_bit(self) -> float:
        """Network energy per delivered payload bit [J/bit]."""
        bits = self.total("payload_bits_delivered")
        if bits == 0:
            return float("inf") if self.total_energy_joule > 0 else 0.0
        return self.total_energy_joule / bits

    @property
    def abort_fraction(self) -> float:
        """Aborted / total attempts — how often early abort engaged."""
        attempts = self.total("attempts")
        if attempts == 0:
            return 0.0
        return self.total("aborted_attempts") / attempts

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-node delivered payload bits."""
        xs = [n.payload_bits_delivered for n in self.nodes]
        if not xs or all(x == 0 for x in xs):
            return 1.0
        s = sum(xs)
        s2 = sum(x * x for x in xs)
        return (s * s) / (len(xs) * s2)
