"""Convenience façade: build and run standard MAC scenarios.

The benchmarks and examples compare the same scenario across policies;
:func:`run_policy_comparison` packages the loop (same seeds per policy so
the comparison is paired).
"""

from __future__ import annotations

from typing import Callable

from repro.hardware.energy import EnergyModel
from repro.mac.arq import HalfDuplexArqPolicy, LinkPolicy, NoArqPolicy
from repro.mac.fdmac import FullDuplexAbortPolicy
from repro.mac.metrics import NetworkMetrics
from repro.mac.simulator import NetworkSimulator, SimulationConfig


def standard_policies(
    asymmetry_ratio: int = 64,
    detection_latency_bits: int = 8,
    max_retries: int = 5,
) -> dict[str, Callable[[], LinkPolicy]]:
    """The three link policies every comparison bench runs.

    Returns name → factory, ordered baseline-first.
    """
    return {
        "no-arq": lambda: NoArqPolicy(),
        "hd-arq": lambda: HalfDuplexArqPolicy(max_retries=max_retries),
        "fd-abort": lambda: FullDuplexAbortPolicy(
            asymmetry_ratio=asymmetry_ratio,
            detection_latency_bits=detection_latency_bits,
            max_retries=max_retries,
        ),
    }


def run_policy_comparison(
    config: SimulationConfig,
    policies: dict[str, Callable[[], LinkPolicy]] | None = None,
    energy: EnergyModel | None = None,
    seed: int = 0,
) -> dict[str, NetworkMetrics]:
    """Run the same scenario under each policy with identical seeds.

    Identical seeding pairs the arrival processes and loss draws across
    policies, so differences in the metrics come from the protocols, not
    the workload realisation.
    """
    if policies is None:
        policies = standard_policies()
    if energy is None:
        energy = EnergyModel()
    results: dict[str, NetworkMetrics] = {}
    for name, factory in policies.items():
        sim = NetworkSimulator(config=config, policy_factory=factory,
                               energy=energy)
        results[name] = sim.run(rng=seed)
    return results
