"""Event-driven network simulator: contending links in one collision
domain.

Model assumptions (deliberately matching the paper's deployment story):

* All devices share one collision domain — any temporal overlap between
  two transmissions corrupts both (backscatter receivers cannot capture).
* Transmitters are ALOHA: they cannot carrier-sense (an envelope detector
  cannot hear a backscatter neighbour reliably), so they transmit on
  arrival and use binary-exponential backoff on failure.
* Channel losses beyond collisions are Bernoulli per attempt, with a
  uniform corruption-onset position (see :mod:`repro.mac.traffic`).
* The link-layer behaviour — what happens once an attempt is doomed —
  is delegated to a :class:`repro.mac.arq.LinkPolicy`.

Each simulated link is a transmitter/receiver pair; ``NodeMetrics``
attributes transmitter-side energy to ``tx_energy_joule`` and
receiver-side energy (listening, ACK packets, feedback backscatter) to
``rx_energy_joule``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.hardware.energy import EnergyModel
from repro.mac.arq import AttemptContext, LinkPolicy, packet_airtime_bits
from repro.mac.events import EventQueue
from repro.mac.metrics import NetworkMetrics, NodeMetrics
from repro.mac.traffic import BernoulliLoss, UniformLossPosition, poisson_arrivals
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SimulationConfig:
    """Workload and PHY-abstraction parameters for one run.

    Attributes
    ----------
    num_links:
        Contending transmitter→receiver pairs.
    arrival_rate_pps:
        Mean Poisson packet arrival rate per link [packets/s].
    load_asymmetry:
        Ratio of the heaviest link's arrival rate to the lightest's.
        Per-link rates are geometrically spaced between the extremes and
        normalised so their mean stays ``arrival_rate_pps``; ``1.0``
        (default) keeps every link identical, bit-for-bit compatible
        with the historical behaviour.
    horizon_seconds:
        Arrival horizon; in-flight exchanges get a grace period to
        finish.
    payload_bytes:
        Application payload per packet.
    overhead_bits:
        PHY overhead per packet (preamble + length + CRC; 45 bits for the
        default frame format).
    bit_rate_bps:
        Over-the-air data rate.
    loss:
        Per-attempt non-collision corruption model.
    """

    num_links: int = 5
    arrival_rate_pps: float = 1.0
    load_asymmetry: float = 1.0
    horizon_seconds: float = 60.0
    payload_bytes: int = 64
    overhead_bits: int = 45
    bit_rate_bps: float = 1_000.0
    loss: BernoulliLoss = field(default_factory=BernoulliLoss)

    def __post_init__(self) -> None:
        check_positive("num_links", self.num_links)
        check_positive("arrival_rate_pps", self.arrival_rate_pps)
        check_positive("horizon_seconds", self.horizon_seconds)
        check_positive("payload_bytes", self.payload_bytes)
        check_positive("bit_rate_bps", self.bit_rate_bps)
        if self.load_asymmetry < 1.0:
            raise ValueError("load_asymmetry must be >= 1.0")

    def link_arrival_rates(self) -> list[float]:
        """Per-link arrival rates [packets/s], lightest link first.

        Geometric spacing between the extremes, rescaled so the mean is
        exactly :attr:`arrival_rate_pps`.
        """
        n = self.num_links
        if n == 1 or self.load_asymmetry == 1.0:
            return [self.arrival_rate_pps] * n
        weights = [self.load_asymmetry ** (i / (n - 1)) for i in range(n)]
        mean = sum(weights) / n
        return [self.arrival_rate_pps * w / mean for w in weights]

    @property
    def payload_bits(self) -> int:
        """Payload size in bits."""
        return 8 * self.payload_bytes

    @property
    def packet_bits(self) -> int:
        """Over-the-air packet size in bits."""
        return packet_airtime_bits(self.payload_bits, self.overhead_bits)

    @property
    def packet_seconds(self) -> float:
        """Airtime of one packet."""
        return self.packet_bits / self.bit_rate_bps


class _Transmission:
    """One occupancy interval on the shared medium."""

    __slots__ = ("owner", "start_time", "end_time", "on_corrupt", "corrupted")

    def __init__(self, owner, start_time: float, end_time: float,
                 on_corrupt: Callable[[float], None]):
        self.owner = owner
        self.start_time = start_time
        self.end_time = end_time
        self.on_corrupt = on_corrupt
        self.corrupted = False


class _Medium:
    """Single collision domain: overlap corrupts everyone involved."""

    def __init__(self) -> None:
        self._active: list[_Transmission] = []

    def begin(self, tx: _Transmission, now: float) -> None:
        if self._active:
            for other in self._active:
                other.on_corrupt(now)
            tx.on_corrupt(now)
        self._active.append(tx)

    def end(self, tx: _Transmission) -> None:
        if tx in self._active:
            self._active.remove(tx)

    @property
    def active_count(self) -> int:
        return len(self._active)


class SimHooks:
    """The narrow facade policies act through (see
    :mod:`repro.mac.arq`)."""

    def __init__(self, sim: "NetworkSimulator", link: "_LinkRuntime",
                 attempt: AttemptContext):
        self._sim = sim
        self._link = link
        #: The attempt these hooks are bound to (one SimHooks per attempt).
        self.attempt = attempt

    def schedule_bits(self, bits: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``bits`` bit-periods."""
        self._sim.queue.schedule(bits / self._sim.config.bit_rate_bps, action)

    def abort_at_bit(self, bit: int) -> None:
        """Stop the ongoing data transmission at data-bit ``bit``."""
        self._link.abort_attempt_at_bit(self.attempt, bit)

    def start_ack(self, ack_bits: int,
                  done: Callable[[bool], None]) -> None:
        """Transmit an ACK packet from the receiver side; ``done`` gets
        whether the ACK was corrupted."""
        self._link.start_ack(ack_bits, done)

    def resolve(self, delivered: bool, tx_knows: bool) -> None:
        """Finish the attempt; the simulator applies the retry rule."""
        self._link.resolve_attempt(self.attempt, delivered, tx_knows)


class _LinkRuntime:
    """State machine of one transmitter→receiver pair."""

    def __init__(self, sim: "NetworkSimulator", index: int,
                 policy: LinkPolicy, arrivals: np.ndarray, rng):
        self.sim = sim
        self.policy = policy
        self.metrics = NodeMetrics(name=f"link{index}")
        self.rng = rng
        self._arrivals = list(arrivals)
        self._queue: list[float] = []  # arrival times of waiting packets
        self._busy = False
        self._retry_count = 0
        self._packet_arrival: float | None = None
        self._packet_delivered = False
        self._current_tx: _Transmission | None = None
        self._last_attempt: AttemptContext | None = None
        self._hooks: SimHooks | None = None
        self._end_event = None
        self.busy_seconds = 0.0
        for t in self._arrivals:
            sim.queue.schedule_at(t, self._on_arrival)

    # -- arrivals and packet lifecycle ---------------------------------

    def _on_arrival(self) -> None:
        self.metrics.offered_packets += 1
        self._queue.append(self.sim.queue.now)
        if not self._busy:
            self._next_packet()

    def _next_packet(self) -> None:
        # The finished packet's hooks die here, whether or not another
        # packet is queued — no attempt state crosses packet boundaries.
        self._hooks = None
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        self._packet_arrival = self._queue.pop(0)
        self._packet_delivered = False
        self._retry_count = 0
        self._last_attempt = None
        self.policy.packet_reset()
        self._start_attempt()

    def _start_attempt(self) -> None:
        cfg = self.sim.config
        attempt_bits = self.policy.attempt_packet_bits(
            cfg.packet_bits, self._retry_count, self._last_attempt
        )
        attempt = AttemptContext(
            payload_bits=cfg.payload_bits,
            packet_bits=attempt_bits,
            start_time=self.sim.queue.now,
        )
        self._last_attempt = attempt
        self.metrics.attempts += 1
        # Rebound per attempt: corruption callbacks route through the
        # hooks of the attempt they were raised for, never a stale one.
        self._hooks = SimHooks(self.sim, self, attempt)

        duration = attempt.packet_bits / cfg.bit_rate_bps
        tx = _Transmission(
            owner=self,
            start_time=self.sim.queue.now,
            end_time=self.sim.queue.now + duration,
            on_corrupt=lambda now: self._corrupt(attempt, now),
        )
        self._current_tx = tx
        # The end event must exist before anything can corrupt the
        # attempt — an immediate collision (or a channel-loss onset)
        # triggers the policy's abort path, which reschedules it.
        self._end_event = self.sim.queue.schedule(
            duration, lambda: self._finish_data(attempt)
        )
        self.sim.medium.begin(tx, self.sim.queue.now)

        # Channel (non-collision) corruption decided up front; its onset
        # "occurs" at a position the receiver's detector will see.
        if cfg.loss.draw(self.rng):
            onset = self.sim.loss_position.draw(attempt.packet_bits, self.rng)
            self._corrupt_at_bit(attempt, onset)

    # -- corruption ----------------------------------------------------

    def _corrupt(self, attempt: AttemptContext, now: float) -> None:
        elapsed_bits = int(
            (now - attempt.start_time) * self.sim.config.bit_rate_bps
        )
        self._corrupt_at_bit(attempt, min(elapsed_bits,
                                          attempt.packet_bits - 1))

    def _corrupt_at_bit(self, attempt: AttemptContext, bit: int) -> None:
        if attempt.corrupted:
            return  # first corruption wins; later overlaps change nothing
        if self._hooks is None or self._hooks.attempt is not attempt:
            return  # stale event for an attempt that already finished
        attempt.corrupted = True
        attempt.onset_bit = bit
        if self._current_tx is not None:
            self._current_tx.corrupted = True
        self.policy.on_corruption(self._hooks, attempt)

    def abort_attempt_at_bit(self, attempt: AttemptContext, bit: int) -> None:
        if attempt.ended or attempt.aborted:
            return
        cfg = self.sim.config
        abort_time = attempt.start_time + bit / cfg.bit_rate_bps
        if abort_time >= self.sim.queue.now and self._end_event is not None:
            self.sim.queue.cancel(self._end_event)
            attempt.aborted = True
            attempt.bits_sent = bit
            self._end_event = self.sim.queue.schedule_at(
                max(abort_time, self.sim.queue.now),
                lambda: self._finish_data(attempt),
            )

    # -- data end, ACK exchange, resolution ------------------------------

    def _finish_data(self, attempt: AttemptContext) -> None:
        if attempt.ended:
            return
        if self._hooks is None or self._hooks.attempt is not attempt:
            return  # stale end event for a superseded attempt
        attempt.ended = True
        if self._current_tx is not None:
            self.sim.medium.end(self._current_tx)
            self._current_tx = None
        self.policy.on_data_end(self._hooks, attempt)

    def start_ack(self, ack_bits: int, done: Callable[[bool], None]) -> None:
        cfg = self.sim.config
        duration = ack_bits / cfg.bit_rate_bps
        tx = _Transmission(
            owner=self,
            start_time=self.sim.queue.now,
            end_time=self.sim.queue.now + duration,
            on_corrupt=lambda now: None,
        )
        # ACK packets die like any other transmission: collisions mark
        # them corrupted, and the channel-loss model applies too.
        tx.on_corrupt = lambda now: setattr(tx, "corrupted", True)
        self.sim.medium.begin(tx, self.sim.queue.now)
        if cfg.loss.draw(self.rng):
            tx.corrupted = True
        # Receiver spends transmit energy on the ACK; the original
        # transmitter listens for it.
        self.metrics.rx_energy_joule += self.sim.energy.tx_cost(ack_bits)
        self.metrics.tx_energy_joule += self.sim.energy.rx_cost(ack_bits)
        self.busy_seconds += duration

        def finish() -> None:
            self.sim.medium.end(tx)
            done(tx.corrupted)

        self.sim.queue.schedule(duration, finish)

    def resolve_attempt(self, attempt: AttemptContext, delivered: bool,
                        tx_knows: bool) -> None:
        if attempt.resolved:
            return
        attempt.resolved = True
        cfg = self.sim.config
        energy = self.sim.energy
        bits = attempt.bits_sent or attempt.packet_bits
        self.metrics.bits_transmitted += bits
        if attempt.aborted:
            self.metrics.aborted_attempts += 1
        self.metrics.tx_energy_joule += energy.tx_cost(bits)
        self.metrics.rx_energy_joule += energy.rx_cost(bits)
        self.metrics.rx_energy_joule += energy.feedback_cost(
            self.policy.feedback_slots(bits)
        )
        self.busy_seconds += bits / cfg.bit_rate_bps

        if delivered and not self._packet_delivered:
            self._packet_delivered = True
            self.metrics.delivered_packets += 1
            self.metrics.payload_bits_delivered += attempt.payload_bits
            if self._packet_arrival is not None:
                self.metrics.latency_sum_seconds += (
                    self.sim.queue.now - self._packet_arrival
                )

        success_known = delivered and tx_knows
        if success_known:
            self._next_packet()
            return
        if self._retry_count < self.policy.max_retries:
            self._retry_count += 1
            backoff = self.policy.backoff_seconds(
                self._retry_count, cfg.packet_seconds, self.rng
            )
            self.sim.queue.schedule(backoff, self._start_attempt)
            return
        if not self._packet_delivered:
            self.metrics.failed_packets += 1
        self._next_packet()


@dataclass
class NetworkSimulator:
    """Runs one scenario: N identical links under one policy.

    Attributes
    ----------
    config:
        Workload parameters.
    policy_factory:
        Zero-argument callable producing a fresh policy per link (state
        isolation between links).
    energy:
        Per-operation energy model.
    """

    config: SimulationConfig
    policy_factory: Callable[[], LinkPolicy]
    energy: EnergyModel = field(default_factory=EnergyModel)

    def run(self, rng=None) -> NetworkMetrics:
        """Simulate and return network-wide metrics."""
        gen = ensure_rng(rng)
        self.queue = EventQueue()
        self.medium = _Medium()
        self.loss_position = UniformLossPosition()
        link_rngs = spawn_rngs(gen, self.config.num_links)
        rates = self.config.link_arrival_rates()
        links = []
        for i, (rate, link_rng) in enumerate(zip(rates, link_rngs)):
            arrivals = poisson_arrivals(
                rate,
                self.config.horizon_seconds,
                link_rng,
            )
            links.append(
                _LinkRuntime(self, i, self.policy_factory(), arrivals, link_rng)
            )
        self.links = links
        grace = 50 * self.config.packet_seconds
        self.queue.run_until(self.config.horizon_seconds + grace)
        # Idle leakage for the remainder of each link's horizon.
        for link in links:
            idle = max(0.0, self.config.horizon_seconds - link.busy_seconds)
            link.metrics.tx_energy_joule += self.energy.idle_cost(idle)
            link.metrics.rx_energy_joule += self.energy.idle_cost(idle)
        return NetworkMetrics(
            nodes=[link.metrics for link in links],
            duration_seconds=self.config.horizon_seconds,
        )
