"""Resume-from-abort retransmission — a feedback-channel extension.

Vanilla ARQ retransmits the *whole* packet after a failure.  But a
full-duplex transmitter knows more: the first NACK slot tells it (to
feedback-slot granularity) where the reception went bad, and everything
before that point was acknowledged slot by slot.  A retry therefore only
needs to carry the unacknowledged suffix plus a fresh header.

:class:`ResumeFromAbortPolicy` extends the early-abort policy with this
behaviour.  The suffix length is conservative: the resume point is the
last fully-ACKed feedback-slot boundary before the corruption onset, so
no corrupted region is ever skipped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mac.arq import AttemptContext
from repro.mac.fdmac import FullDuplexAbortPolicy


@dataclass
class ResumeFromAbortPolicy(FullDuplexAbortPolicy):
    """Early abort + resume-from-last-ACKed-slot retransmission.

    Attributes
    ----------
    resume_overhead_bits:
        Fresh per-attempt overhead a resumed suffix still pays
        (preamble + header + CRC of the continuation frame).
    """

    resume_overhead_bits: int = 45
    name: str = "fd-resume"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resume_overhead_bits < 0:
            raise ValueError("resume_overhead_bits must be non-negative")
        self._acked_bits = 0

    def packet_reset(self) -> None:
        self._acked_bits = 0

    def resume_point(self, onset_bit: int) -> int:
        """Last fully-ACKed slot boundary at or before the corruption
        onset."""
        if onset_bit < 0:
            raise ValueError("onset_bit must be non-negative")
        return (math.floor(onset_bit / self.asymmetry_ratio)) * self.asymmetry_ratio

    def attempt_packet_bits(self, full_packet_bits: int, retry_index: int,
                            previous: AttemptContext | None) -> int:
        if retry_index == 0 or previous is None:
            return full_packet_bits
        if previous.corrupted and previous.onset_bit is not None:
            # Everything before the resume point of the *previous*
            # attempt is now cumulatively acknowledged.
            self._acked_bits = min(
                full_packet_bits,
                self._acked_bits + self.resume_point(previous.onset_bit),
            )
        remaining = full_packet_bits - self._acked_bits
        if remaining <= 0:
            # Failure was within the overhead/closing region: resend the
            # minimal frame.
            remaining = 1
        return min(full_packet_bits, remaining + self.resume_overhead_bits)
