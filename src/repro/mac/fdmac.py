"""The paper's link-layer protocol: full-duplex early abort.

While transmitting, the sender decodes the receiver's concurrent
feedback stream.  The moment the receiver's in-reception detector flags
corruption (collision or fade), its next feedback slot flips from ACK to
NACK; the sender decodes that slot when it completes and stops
transmitting — saving the energy and airtime of the rest of the doomed
packet.  On a clean packet, the final feedback slot doubles as the ACK,
so no turnaround, no ACK packet, no timeout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mac.arq import AttemptContext, LinkPolicy
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class FullDuplexAbortPolicy(LinkPolicy):
    """Early-abort ARQ over the in-packet feedback channel.

    Attributes
    ----------
    asymmetry_ratio:
        ``r`` — data bits per feedback slot.  Sets abort granularity:
        corruption detected at bit ``k`` stops the sender at the end of
        the first feedback slot that can carry the NACK, i.e. at bit
        ``(floor((k + detection_latency_bits) / r) + 2) * r``.
    detection_latency_bits:
        In-reception detector latency, calibrated from the sample-level
        detectors in :mod:`repro.fullduplex.collision` (benchmark A1).
    ack_tail_slots:
        Feedback slots after the data end the sender waits to confirm
        the final ACK (1 = the slot in flight when the packet ended).
    """

    asymmetry_ratio: int = 64
    detection_latency_bits: int = 8
    ack_tail_slots: int = 1
    max_retries: int = 5
    name: str = "fd-abort"

    def __post_init__(self) -> None:
        check_positive("asymmetry_ratio", self.asymmetry_ratio)
        check_non_negative("detection_latency_bits", self.detection_latency_bits)
        check_non_negative("ack_tail_slots", self.ack_tail_slots)

    def abort_bit(self, onset_bit: int, packet_bits: int) -> int | None:
        """Bit index at which the sender stops, or ``None`` when the
        NACK cannot beat the natural end of the packet."""
        if onset_bit < 0:
            raise ValueError("onset_bit must be non-negative")
        if packet_bits <= 0:
            raise ValueError("packet_bits must be positive")
        r = self.asymmetry_ratio
        detect = onset_bit + self.detection_latency_bits
        stop = (math.floor(detect / r) + 2) * r
        return stop if stop < packet_bits else None

    def on_corruption(self, hooks, attempt: AttemptContext) -> None:
        stop = self.abort_bit(attempt.onset_bit or 0, attempt.packet_bits)
        if stop is not None:
            hooks.abort_at_bit(stop)

    def on_data_end(self, hooks, attempt: AttemptContext) -> None:
        attempt.bits_sent = (
            attempt.packet_bits if not attempt.aborted else attempt.bits_sent
        )
        delivered = not attempt.corrupted
        # The sender learns the outcome from the trailing feedback slot;
        # no extra medium occupancy (the feedback rides the backscatter).
        tail_bits = self.ack_tail_slots * self.asymmetry_ratio
        hooks.schedule_bits(
            tail_bits, lambda: hooks.resolve(delivered=delivered, tx_knows=True)
        )

    def feedback_slots(self, bits: int) -> int:
        """Feedback bits the receiver transmitted alongside ``bits`` of
        data (energy accounting)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits // self.asymmetry_ratio
