"""Minimal discrete-event engine.

A binary-heap calendar queue with stable FIFO ordering for simultaneous
events.  Callbacks may schedule further events and may cancel previously
scheduled ones (cancellation is lazy: cancelled entries are skipped when
popped, the standard heapq idiom).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class _Entry:
    time: float
    seq: int
    action: Callable[[], None] | None

    def __lt__(self, other: "_Entry") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


@dataclass
class EventQueue:
    """Time-ordered callback scheduler.

    Attributes
    ----------
    now:
        Current simulation time [s]; advances monotonically as events run.
    """

    now: float = 0.0
    _heap: list[_Entry] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def schedule(self, delay: float, action: Callable[[], None]) -> _Entry:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns a handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        entry = _Entry(time=self.now + delay, seq=next(self._counter),
                       action=action)
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(self, time: float, action: Callable[[], None]) -> _Entry:
        """Schedule ``action`` at an absolute time (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        entry = _Entry(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: _Entry) -> None:
        """Lazily cancel a scheduled event (safe to call twice)."""
        entry.action = None

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; ``now`` lands on
        ``end_time`` afterwards."""
        if end_time < self.now:
            raise ValueError("end_time precedes current time")
        while self._heap and self._heap[0].time <= end_time:
            entry = heapq.heappop(self._heap)
            if entry.action is None:
                continue
            self.now = entry.time
            action, entry.action = entry.action, None
            action()
        self.now = end_time

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (with a runaway guard)."""
        count = 0
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.action is None:
                continue
            self.now = entry.time
            action, entry.action = entry.action, None
            action()
            count += 1
            if count > max_events:
                raise RuntimeError("event budget exhausted — runaway simulation?")

    @property
    def pending(self) -> int:
        """Scheduled (non-cancelled) events still in the queue."""
        return sum(1 for e in self._heap if e.action is not None)
