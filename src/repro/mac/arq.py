"""Link-layer policies: fire-and-forget and half-duplex stop-and-wait.

A :class:`LinkPolicy` is a strategy object the network simulator calls at
the three moments that differentiate protocols:

* :meth:`LinkPolicy.on_corruption` — the instant an ongoing attempt
  becomes doomed (collision started, or the channel-loss onset passed);
  the full-duplex policy reacts here by scheduling an abort, the
  half-duplex ones cannot react at all;
* :meth:`LinkPolicy.on_data_end` — the data transmission finished (or
  was aborted); the policy resolves the attempt, possibly after more
  signalling (the half-duplex ACK exchange happens here);
* :meth:`LinkPolicy.backoff_seconds` — retry spacing.

Policies never touch the medium or the event queue directly beyond the
narrow :class:`repro.mac.simulator.SimHooks` facade, which keeps them
unit-testable in isolation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class AttemptContext:
    """Mutable record of one transmission attempt (owned by the simulator,
    read/written by policies through the hooks)."""

    payload_bits: int
    packet_bits: int
    start_time: float
    corrupted: bool = False
    onset_bit: int | None = None
    aborted: bool = False
    bits_sent: int = 0
    ended: bool = False
    resolved: bool = False


class LinkPolicy(ABC):
    """Protocol strategy interface (see module docstring)."""

    #: Human-readable policy name used in benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def on_corruption(self, hooks, attempt: AttemptContext) -> None:
        """Called once, when the attempt first becomes corrupted."""

    @abstractmethod
    def on_data_end(self, hooks, attempt: AttemptContext) -> None:
        """Called when the data transmission ends (normally or aborted).

        Must eventually call ``hooks.resolve(delivered, tx_knows_outcome)``.
        """

    def backoff_seconds(self, retry_index: int, packet_seconds: float,
                        rng) -> float:
        """Binary-exponential random backoff (shared default)."""
        check_non_negative("retry_index", retry_index)
        gen = ensure_rng(rng)
        window = packet_seconds * (2 ** min(retry_index, 6))
        return float(gen.uniform(0.0, window))

    #: Retries after the first attempt before giving up.
    max_retries: int = 5

    def feedback_slots(self, bits: int) -> int:
        """Feedback bits the receiver spends during ``bits`` of data
        (zero for half-duplex policies)."""
        return 0

    def attempt_packet_bits(self, full_packet_bits: int, retry_index: int,
                            previous: "AttemptContext | None") -> int:
        """Airtime of the next attempt.

        Default: every attempt resends the whole packet.  Policies that
        exploit in-packet feedback can shrink retries (see
        :class:`repro.mac.resume.ResumeFromAbortPolicy`).
        """
        return full_packet_bits

    def packet_reset(self) -> None:
        """Called when a new packet begins (clear per-packet state)."""


@dataclass
class NoArqPolicy(LinkPolicy):
    """Fire and forget: one attempt, no acknowledgement of any kind.

    The transmitter never learns the outcome; delivery relies entirely on
    the channel.  This is the SIGCOMM'13 baseline operating mode.
    """

    name: str = "no-arq"
    max_retries: int = 0

    def on_corruption(self, hooks, attempt: AttemptContext) -> None:
        pass  # cannot react

    def on_data_end(self, hooks, attempt: AttemptContext) -> None:
        attempt.bits_sent = attempt.packet_bits
        delivered = not attempt.corrupted
        # tx never knows; latency is counted at data end when delivered.
        hooks.resolve(delivered=delivered, tx_knows=False)


@dataclass
class HalfDuplexArqPolicy(LinkPolicy):
    """Stop-and-wait ARQ with an explicit ACK packet.

    After the data packet the receiver turns around (``turnaround_bits``
    of dead air — battery-free devices switch slowly) and transmits an
    ``ack_bits``-long ACK packet, which occupies the medium and can
    itself collide or be lost.  The transmitter times out
    ``timeout_guard_bits`` after the latest possible ACK arrival and
    retries with backoff.

    Attributes
    ----------
    ack_bits:
        ACK packet airtime (preamble + header + CRC, no payload).
    turnaround_bits:
        RX→TX turnaround in bit periods.
    timeout_guard_bits:
        Slack after the expected ACK end before declaring a timeout.
    """

    ack_bits: int = 45
    turnaround_bits: int = 8
    timeout_guard_bits: int = 8
    max_retries: int = 5
    name: str = "hd-arq"

    def __post_init__(self) -> None:
        check_positive("ack_bits", self.ack_bits)
        check_non_negative("turnaround_bits", self.turnaround_bits)
        check_non_negative("timeout_guard_bits", self.timeout_guard_bits)

    def on_corruption(self, hooks, attempt: AttemptContext) -> None:
        pass  # half-duplex: no in-flight knowledge

    def on_data_end(self, hooks, attempt: AttemptContext) -> None:
        attempt.bits_sent = attempt.packet_bits
        if attempt.corrupted:
            # Receiver decodes garbage -> no ACK -> timeout path.
            wait = self.turnaround_bits + self.ack_bits + self.timeout_guard_bits
            hooks.schedule_bits(wait, lambda: hooks.resolve(
                delivered=False, tx_knows=True))
            return
        # Receiver got it: after the turnaround it transmits the ACK,
        # which traverses the shared medium like any other transmission.
        def send_ack() -> None:
            hooks.start_ack(self.ack_bits, on_ack_done)

        def on_ack_done(ack_corrupted: bool) -> None:
            if ack_corrupted:
                # Delivered, but the tx doesn't know -> duplicate retry.
                hooks.schedule_bits(
                    self.timeout_guard_bits,
                    lambda: hooks.resolve(delivered=True, tx_knows=False),
                )
            else:
                hooks.resolve(delivered=True, tx_knows=True)

        hooks.schedule_bits(self.turnaround_bits, send_ack)

    def exchange_bits(self, packet_bits: int) -> int:
        """Total airtime of a successful exchange, in bit periods."""
        return packet_bits + self.turnaround_bits + self.ack_bits

    def timeout_bits(self, packet_bits: int) -> int:
        """Bit periods from attempt start until the timeout fires."""
        return (
            packet_bits
            + self.turnaround_bits
            + self.ack_bits
            + self.timeout_guard_bits
        )


def packet_airtime_bits(payload_bits: int, overhead_bits: int) -> int:
    """Over-the-air size of a data packet."""
    check_non_negative("payload_bits", payload_bits)
    check_non_negative("overhead_bits", overhead_bits)
    return payload_bits + overhead_bits


def bits_to_seconds(bits: float, bit_rate_bps: float) -> float:
    """Airtime of ``bits`` at a bit rate."""
    check_positive("bit_rate_bps", bit_rate_bps)
    return bits / bit_rate_bps


def seconds_to_bits(seconds: float, bit_rate_bps: float) -> int:
    """Bit periods elapsed in ``seconds`` (floor)."""
    check_positive("bit_rate_bps", bit_rate_bps)
    return int(math.floor(seconds * bit_rate_bps))
