"""Envelope detection.

An ambient backscatter receiver cannot afford a mixer or ADC running at RF
— it detects the *envelope* of the incident waveform with a diode
square-law detector and an RC smoothing stage, then compares the smoothed
envelope against a threshold.  :func:`square_law_detector` models exactly
that chain on complex-baseband samples.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import alpha_for_time_constant, single_pole_lowpass


def envelope_power(x: np.ndarray) -> np.ndarray:
    """Instantaneous power ``|x|^2`` of a complex baseband waveform."""
    arr = np.asarray(x)
    return (arr * arr.conj()).real if np.iscomplexobj(arr) else arr.astype(float) ** 2


def square_law_detector(
    x: np.ndarray,
    sample_rate_hz: float,
    smoothing_tau_seconds: float | None = None,
) -> np.ndarray:
    """Square-law envelope detector with optional RC smoothing.

    Parameters
    ----------
    x:
        Complex baseband samples at the antenna (after any reflection-state
        gating — see :mod:`repro.hardware.tag`).
    sample_rate_hz:
        Simulation sample rate.
    smoothing_tau_seconds:
        RC time constant of the smoothing capacitor.  ``None`` disables
        smoothing (ideal detector).  The ambient-backscatter design point
        smooths over many carrier-envelope fluctuations but well under a
        bit period, so the per-bit mean still tracks the reflection state.

    Returns
    -------
    numpy.ndarray
        Real, non-negative smoothed envelope-power samples.
    """
    power = envelope_power(x)
    if smoothing_tau_seconds is None:
        return power
    alpha = alpha_for_time_constant(smoothing_tau_seconds, sample_rate_hz)
    return single_pole_lowpass(power, alpha)
