"""Correlation, expansion and comparison helpers used by the framing layer."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def repeat_samples(symbols: np.ndarray, samples_per_symbol: int) -> np.ndarray:
    """Expand a symbol sequence to a rectangular sample-level waveform.

    Each symbol is held for ``samples_per_symbol`` samples — the switching
    waveform a backscatter modulator actually produces.
    """
    check_positive("samples_per_symbol", samples_per_symbol)
    arr = np.asarray(symbols)
    if arr.ndim != 1:
        raise ValueError("repeat_samples expects a 1-D array")
    return np.repeat(arr, int(samples_per_symbol))


def normalized_correlation(x: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Sliding normalised correlation of ``pattern`` against ``x``.

    Both inputs are treated as real sequences; each window of ``x`` and the
    pattern are mean-removed and scale-normalised, so the output lies in
    ``[-1, 1]`` and a value near ``+1`` marks a pattern occurrence
    regardless of the absolute envelope level.  Windows with (near-)zero
    variance correlate to 0.

    Returns an array of length ``len(x) - len(pattern) + 1``; empty if the
    pattern is longer than the input.
    """
    xs = np.asarray(x, dtype=float)
    p = np.asarray(pattern, dtype=float)
    if xs.ndim != 1 or p.ndim != 1:
        raise ValueError("normalized_correlation expects 1-D arrays")
    if p.size == 0:
        raise ValueError("pattern must be non-empty")
    n = xs.size - p.size + 1
    if n <= 0:
        return np.empty(0, dtype=float)
    p0 = p - p.mean()
    p_norm = np.sqrt(np.sum(p0 * p0))
    if p_norm == 0:
        raise ValueError("pattern must not be constant")
    m = p.size
    csum = np.concatenate(([0.0], np.cumsum(xs)))
    csum2 = np.concatenate(([0.0], np.cumsum(xs * xs)))
    win_sum = csum[m:] - csum[:-m]
    win_sum2 = csum2[m:] - csum2[:-m]
    # Cross-correlation with the mean-removed pattern; removing the window
    # mean is unnecessary because p0 sums to zero.
    cross = np.correlate(xs, p0, mode="valid")
    win_var = win_sum2 - win_sum * win_sum / m
    win_var = np.maximum(win_var, 0.0)
    denom = np.sqrt(win_var) * p_norm
    out = np.zeros(n, dtype=float)
    good = denom > 1e-30
    out[good] = cross[good] / denom[good]
    return np.clip(out, -1.0, 1.0)


def bit_errors(sent: np.ndarray, received: np.ndarray) -> int:
    """Number of differing positions between two equal-length bit arrays."""
    a = np.asarray(sent)
    b = np.asarray(received)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a.astype(np.uint8) != b.astype(np.uint8)))


def sliding_windows(x: np.ndarray, window: int, step: int = 1) -> np.ndarray:
    """Strided view of overlapping windows (read-only).

    A thin wrapper over numpy's ``sliding_window_view`` with a step,
    used by the collision detector's short-time statistics.
    """
    check_positive("window", window)
    check_positive("step", step)
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise ValueError("sliding_windows expects a 1-D array")
    if arr.size < window:
        return np.empty((0, window), dtype=arr.dtype)
    view = np.lib.stride_tricks.sliding_window_view(arr, window)
    return view[::step]
