"""Smoothing and integration filters.

The backscatter receiver's analog chain is modelled with two filters:

* :func:`single_pole_lowpass` — the RC smoothing capacitor after the
  square-law envelope detector;
* :func:`moving_average` — the longer averaging window that sets the
  comparator threshold.

Both are causal, run in O(n), and are exact (no FFT edge effects), which
matters because the adaptive-threshold behaviour at *packet edges* is part
of what the full-duplex design relies on.

Every filter accepts either one waveform (1-D) or a batch of waveforms
(2-D, one per row) and applies along the last axis.  The batched result
is **bitwise identical** to filtering each row separately — the batched
trial engine (:mod:`repro.experiments.batch`) relies on this for its
scalar-equivalence guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Causal moving average with a ramp-up head.

    ``out[n]`` is the mean of ``x[max(0, n - window + 1) : n + 1]`` — for
    the first ``window - 1`` samples the average runs over the shorter
    prefix, mirroring a hardware integrator charging from empty.

    Parameters
    ----------
    x:
        Real input samples: one waveform (1-D) or a batch of waveforms
        (2-D, averaged along the last axis).
    window:
        Averaging length in samples (``>= 1``).
    """
    check_positive("window", window)
    arr = np.asarray(x, dtype=float)
    if arr.ndim not in (1, 2):
        raise ValueError("moving_average expects a 1-D or 2-D array")
    if arr.size == 0:
        return arr.copy()
    csum = np.cumsum(arr, axis=-1)
    out = np.empty_like(arr)
    w = int(window)
    n = arr.shape[-1]
    if n <= w:
        out[...] = csum / np.arange(1, n + 1)
        return out
    out[..., :w] = csum[..., :w] / np.arange(1, w + 1)
    out[..., w:] = (csum[..., w:] - csum[..., :-w]) / w
    return out


def single_pole_lowpass(x: np.ndarray, alpha: float) -> np.ndarray:
    """First-order IIR smoother ``y[n] = (1-alpha) y[n-1] + alpha x[n]``.

    ``alpha`` in ``(0, 1]`` is the per-sample update weight; the equivalent
    RC time constant is ``tau = -1 / (fs * ln(1 - alpha))`` for small
    ``alpha``.  ``alpha = 1`` passes the input through.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
    arr = np.asarray(x, dtype=float)
    if arr.ndim not in (1, 2):
        raise ValueError("single_pole_lowpass expects a 1-D or 2-D array")
    if arr.size == 0 or alpha == 1.0:
        return arr.copy()
    # Evaluate the recursion y[n] = (1-alpha) y[n-1] + alpha x[n] with
    # scipy's direct-form filter; the initial state pre-charges the
    # integrator to x[0] so y[0] == x[0] (capacitor starts at the first
    # sample rather than at zero).  A 2-D batch filters each row along
    # the last axis with its own initial state.
    from scipy.signal import lfilter

    zi = (1.0 - alpha) * arr[..., :1]
    out, _ = lfilter([alpha], [1.0, -(1.0 - alpha)], arr, axis=-1, zi=zi)
    return out


def alpha_for_time_constant(tau_seconds: float, sample_rate_hz: float) -> float:
    """Per-sample IIR weight for an RC time constant at a sample rate.

    Uses the exact discretisation ``alpha = 1 - exp(-1 / (tau * fs))``.
    """
    check_positive("tau_seconds", tau_seconds)
    check_positive("sample_rate_hz", sample_rate_hz)
    return 1.0 - float(np.exp(-1.0 / (tau_seconds * sample_rate_hz)))


def integrate_and_dump(x: np.ndarray, period: int) -> np.ndarray:
    """Mean of each consecutive block of ``period`` samples.

    The classic matched filter for rectangular OOK chips: one output per
    chip.  Trailing samples that do not fill a block are discarded.
    A 2-D batch integrates each row along the last axis.
    """
    check_positive("period", period)
    arr = np.asarray(x, dtype=float)
    if arr.ndim not in (1, 2):
        raise ValueError("integrate_and_dump expects a 1-D or 2-D array")
    p = int(period)
    nblocks = arr.shape[-1] // p
    if nblocks == 0:
        return np.empty(arr.shape[:-1] + (0,), dtype=float)
    blocks = arr[..., : nblocks * p].reshape(arr.shape[:-1] + (nblocks, p))
    return blocks.mean(axis=-1)


def decimate_mean(x: np.ndarray, factor: int) -> np.ndarray:
    """Alias of :func:`integrate_and_dump` named for its decimation use."""
    return integrate_and_dump(x, factor)
