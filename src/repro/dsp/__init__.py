"""Receiver DSP primitives.

Everything an ultra-low-power backscatter receiver is allowed to do lives
here: moving averages, single-pole RC smoothing, square-law envelope
detection, adaptive threshold tracking, and the correlation / resampling
helpers used by the framing layer.  These functions are deliberately simple
— the HotNets 2013 receiver is an analog envelope detector followed by a
comparator, and the models stay at that level of fidelity.
"""

from repro.dsp.envelope import envelope_power, square_law_detector
from repro.dsp.filters import (
    decimate_mean,
    integrate_and_dump,
    moving_average,
    single_pole_lowpass,
)
from repro.dsp.ops import (
    bit_errors,
    normalized_correlation,
    repeat_samples,
    sliding_windows,
)
from repro.dsp.resample import hold_resample
from repro.dsp.thresholds import (
    AdaptiveThreshold,
    FixedThreshold,
    adaptive_threshold,
    slice_bits,
)

__all__ = [
    "AdaptiveThreshold",
    "FixedThreshold",
    "adaptive_threshold",
    "bit_errors",
    "decimate_mean",
    "envelope_power",
    "hold_resample",
    "integrate_and_dump",
    "moving_average",
    "normalized_correlation",
    "repeat_samples",
    "single_pole_lowpass",
    "slice_bits",
    "sliding_windows",
    "square_law_detector",
]
