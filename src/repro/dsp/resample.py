"""Rate conversion between symbol streams of different rates.

Full-duplex backscatter is built on *rate asymmetry*: the feedback stream
switches ``r`` times slower than the data stream.  These helpers convert
between the two clock domains at the sample level.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def hold_resample(symbols: np.ndarray, total_samples: int) -> np.ndarray:
    """Zero-order-hold a symbol sequence onto ``total_samples`` samples.

    Each of the ``k`` symbols occupies a contiguous run of samples; when
    ``total_samples`` is not a multiple of ``k`` the run lengths differ by
    at most one sample (earlier symbols get the longer runs), mirroring a
    free-running hardware divider.
    """
    check_positive("total_samples", total_samples)
    arr = np.asarray(symbols)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("hold_resample expects a non-empty 1-D array")
    edges = np.linspace(0, total_samples, arr.size + 1).round().astype(int)
    return np.repeat(arr, np.diff(edges))


def align_lengths(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Truncate two sample streams to their common length.

    Concurrent data and feedback waveforms are generated independently and
    can differ by a few samples from rounding; propagation combines them
    over the overlap only.
    """
    n = min(len(a), len(b))
    return np.asarray(a)[:n], np.asarray(b)[:n]
