"""Comparator thresholds.

The receiving tag slices the smoothed envelope against a threshold to
recover OOK chips.  Two strategies are modelled:

* :class:`FixedThreshold` — a constant level, the strawman.  It fails
  whenever the ambient level drifts, and in particular whenever the tag's
  *own* slow feedback switching steps the received level (the self-
  interference problem of full-duplex operation).
* :class:`AdaptiveThreshold` — the paper's mechanism: a causal moving
  average of the envelope itself.  Any level change slower than the window
  (ambient drift, the tag's own feedback switching) is tracked into the
  threshold and cancelled; the fast data switching of the remote
  transmitter remains as excursions around it.

The ablation benchmark ``bench_f6_self_interference`` compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import moving_average
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FixedThreshold:
    """Constant comparator level.

    Attributes
    ----------
    level:
        Absolute envelope-power threshold.  If ``None``, the level is set
        once from the mean of the whole input (a "calibrated at boot"
        comparator) — still non-adaptive during the packet.
    """

    level: float | None = None

    def __call__(self, envelope: np.ndarray) -> np.ndarray:
        arr = np.asarray(envelope, dtype=float)
        level = float(arr.mean()) if self.level is None else self.level
        return np.full_like(arr, level)


@dataclass(frozen=True)
class AdaptiveThreshold:
    """Moving-average comparator threshold (the paper's receiver).

    Attributes
    ----------
    window:
        Averaging length in samples.  Must span several data bits (so the
        data's 0/1 excursions average out to the midpoint) while staying
        well under one feedback bit (so the tag's own slow switching is
        tracked and removed).  The full-duplex link config picks
        ``window ≈ 4 data bits`` by default.
    scale:
        Multiplicative trim on the average, modelling a comparator with a
        built-in offset; 1.0 is the neutral design point.
    """

    window: int
    scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("window", self.window)
        check_positive("scale", self.scale)

    def __call__(self, envelope: np.ndarray) -> np.ndarray:
        arr = np.asarray(envelope, dtype=float)
        return self.scale * moving_average(arr, self.window)


def adaptive_threshold(envelope: np.ndarray, window: int) -> np.ndarray:
    """Functional shorthand for :class:`AdaptiveThreshold`."""
    return AdaptiveThreshold(window=window)(envelope)


def slice_bits(envelope: np.ndarray, threshold: np.ndarray) -> np.ndarray:
    """Comparator: 1 where the envelope exceeds the threshold, else 0.

    Returns a ``uint8`` chip stream at the envelope sample rate; bit-rate
    decisions are made downstream by integrate-and-dump over a chip period
    (see :mod:`repro.phy.receiver`).
    """
    env = np.asarray(envelope, dtype=float)
    thr = np.asarray(threshold, dtype=float)
    if env.shape != thr.shape:
        raise ValueError(
            f"envelope and threshold shapes differ: {env.shape} vs {thr.shape}"
        )
    return (env > thr).astype(np.uint8)
