"""Campaign execution: store-first dispatch, checkpoints, reports.

:class:`CampaignRunner` walks a campaign's units in declaration order
and satisfies each one through :func:`repro.store.cached_run` — so a
re-run is pure cache hits, a killed run resumes for free (the store
*is* the durable state; the checkpoint file is bookkeeping for
``status`` and CI artifacts), and raising ``--trials`` tops every unit
up from its stored prefix instead of recomputing it.

``report`` renders the campaign's aggregate tables **from the store
alone** — it never computes trials, and complains precisely about
what is missing.  Because stored tables are canonical (backend- and
history-independent bytes) and aggregation is deterministic, a
campaign reported twice produces bitwise-identical output.

Checkpoint format (``<store>/campaigns/<name>.json``)::

    {
      "campaign": <CampaignSpec.to_dict()>,
      "run": {"n_trials": …, "seed": …, "code_version": …},
      "total": N, "completed": k,
      "units": {
        "<digest>": {"label": …, "kind": …, "arm": …, "point": {…},
                     "outcome": "hit|truncated|topup|miss",
                     "trials_computed": …, "n_trials": …}
      }
    }

A checkpoint whose ``campaign``/``run`` fingerprint does not match the
requested run is stale (the campaign definition or budget changed) and
is discarded — cheaply, since matching store entries still hit.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field

from repro import obs
from repro.campaigns.spec import CampaignSpec, CampaignUnit
from repro.experiments import TRIAL_AGGREGATES, TRIAL_KINDS, ExperimentRunner
from repro.experiments.results import ResultTable
from repro.store.cache import cached_run
from repro.store.keys import CODE_VERSION
from repro.store.store import ResultStore, _atomic_write

log = logging.getLogger("repro.campaigns")


class MissingUnitsError(RuntimeError):
    """Raised by ``report`` when the store lacks some campaign units."""

    def __init__(self, missing: list[CampaignUnit]) -> None:
        self.missing = missing
        labels = ", ".join(u.label() for u in missing[:5])
        more = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
        super().__init__(
            f"{len(missing)} campaign unit(s) not in the store: "
            f"{labels}{more}; run the campaign first"
        )


@dataclass
class CampaignRunResult:
    """Outcome of one ``CampaignRunner.run`` invocation.

    Attributes
    ----------
    campaign / n_trials / seed:
        What ran, at which budget and root seed.
    units:
        ``(unit, cached_run outcome)`` pairs in execution order.
    """

    campaign: CampaignSpec
    n_trials: int
    seed: int
    units: list = field(default_factory=list)

    @property
    def trials_computed(self) -> int:
        """Trials actually executed (0 ⇒ the run was pure cache hits)."""
        return sum(r.trials_computed for _, r in self.units)

    def outcome_counts(self) -> dict[str, int]:
        """``outcome → unit count`` over the whole run."""
        counts: dict[str, int] = {}
        for _, r in self.units:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return counts


@dataclass
class CampaignRunner:
    """Runs, inspects and reports campaigns against one result store.

    Attributes
    ----------
    store:
        The :class:`~repro.store.store.ResultStore` consulted before any
        trial is dispatched.
    workers / backend:
        Execution knobs forwarded to each unit's
        :class:`~repro.experiments.runner.ExperimentRunner`.  Every
        standard kind has a batched implementation, so ``"vectorized"``
        applies across the board; a kind without one (none today) would
        silently fall back to the default backend.  For the sample-level
        kinds backends do not change results, only speed; ``mac`` units
        run the slotted engine, a statistically-equivalent estimator of
        the same contention process (DESIGN §7).
    """

    store: ResultStore
    workers: int = 1
    backend: str | None = None

    # -- unit plumbing -------------------------------------------------------

    def _backend_for(self, kind: str) -> str | None:
        if self.backend != "vectorized":
            return self.backend
        from repro.experiments.batch import batched_trial_for

        try:
            batched_trial_for(TRIAL_KINDS[kind])
        except ValueError:
            return None
        return "vectorized"

    def runner_for(self, unit: CampaignUnit) -> ExperimentRunner:
        """The fixed-budget runner executing ``unit`` on a miss/top-up."""
        return ExperimentRunner(
            trial=TRIAL_KINDS[unit.kind],
            max_trials=unit.n_trials,
            workers=self.workers,
            backend=self._backend_for(unit.kind),
        )

    def checkpoint_path(self, campaign: CampaignSpec):
        """Where this campaign's checkpoint lives in the store."""
        return self.store.campaign_dir() / f"{campaign.name}.json"

    # -- execution -----------------------------------------------------------

    def run(
        self,
        campaign: CampaignSpec,
        *,
        n_trials: int | None = None,
        seed: int | None = None,
        progress=None,
    ) -> CampaignRunResult:
        """Execute every unit, store-first, checkpointing as it goes.

        ``progress`` (optional callable) receives one
        ``(unit, CachedRun)`` pair per completed unit — the CLI's
        live ticker.  Killable at any point: completed units are in the
        store, and the next invocation reuses them as exact hits.
        """
        units = campaign.units(n_trials=n_trials, seed=seed)
        result = CampaignRunResult(
            campaign=campaign,
            n_trials=units[0].n_trials,
            seed=units[0].seed,
        )
        fingerprint = self._fingerprint(campaign, result)
        state = self._load_checkpoint(campaign, fingerprint)
        log.info(
            "campaign %s: %d units at %d trials (seed %d)",
            campaign.name, len(units), result.n_trials, result.seed,
        )
        with obs.span(
            "campaign.run",
            campaign=campaign.name,
            units=len(units),
            n_trials=result.n_trials,
        ):
            for unit in units:
                with obs.span(
                    "campaign.unit",
                    label=unit.label(),
                    kind=unit.kind,
                    arm=unit.arm,
                ) as sp:
                    outcome = cached_run(
                        self.store, self.runner_for(unit), unit.spec,
                        seed=unit.seed,
                    )
                    sp.note(
                        outcome=outcome.outcome,
                        trials_computed=outcome.trials_computed,
                    )
                obs.inc("campaign.units")
                obs.inc(f"campaign.unit.{outcome.outcome}")
                obs.inc("campaign.trials_computed", outcome.trials_computed)
                log.debug(
                    "campaign unit %s: %s (%d trials computed)",
                    unit.label(), outcome.outcome, outcome.trials_computed,
                )
                result.units.append((unit, outcome))
                state["units"][outcome.key.digest] = {
                    "label": unit.label(),
                    "kind": unit.kind,
                    "arm": unit.arm,
                    "point": dict(unit.point),
                    "outcome": outcome.outcome,
                    "trials_computed": outcome.trials_computed,
                    "n_trials": unit.n_trials,
                }
                state["total"] = len(units)
                state["completed"] = len(result.units)
                _atomic_write(
                    self.checkpoint_path(campaign),
                    json.dumps(
                        state, indent=2, sort_keys=True, allow_nan=False
                    )
                    + "\n",
                )
                if progress is not None:
                    progress(unit, outcome)
        log.info(
            "campaign %s: done (%d trials computed)",
            campaign.name, result.trials_computed,
        )
        return result

    def _fingerprint(self, campaign, result) -> dict:
        return {
            "campaign": campaign.to_dict(),
            "run": {
                "n_trials": result.n_trials,
                "seed": result.seed,
                "code_version": CODE_VERSION,
            },
        }

    def _load_checkpoint(self, campaign, fingerprint) -> dict:
        path = self.checkpoint_path(campaign)
        if path.is_file():
            try:
                state = json.loads(path.read_text())
            except json.JSONDecodeError:
                state = None
            if (
                state
                and state.get("campaign") == fingerprint["campaign"]
                and state.get("run") == fingerprint["run"]
            ):
                return state
            log.info(
                "checkpoint %s is stale (campaign or budget changed); "
                "starting fresh",
                path,
            )
        return {**fingerprint, "total": 0, "completed": 0, "units": {}}

    # -- inspection ----------------------------------------------------------

    def status(
        self,
        campaign: CampaignSpec,
        *,
        n_trials: int | None = None,
        seed: int | None = None,
    ) -> dict:
        """What the store already holds for this campaign, per kind.

        Pure inspection — touches no trial.  ``cached`` units are exact
        hits; ``reusable`` units have a stored prefix (or superset) of
        the same trial sequence, so running them costs only a top-up or
        a truncation; ``missing`` units would run cold.
        """
        units = campaign.units(n_trials=n_trials, seed=seed)
        per_kind: dict[str, dict] = {}
        for unit in units:
            slot = per_kind.setdefault(
                unit.kind, {"cached": 0, "reusable": 0, "missing": 0}
            )
            key = unit.key()
            if self.store.has(key):
                slot["cached"] += 1
            elif self.store.stored_budgets(key):
                slot["reusable"] += 1
            else:
                slot["missing"] += 1
        totals = {
            label: sum(slot[label] for slot in per_kind.values())
            for label in ("cached", "reusable", "missing")
        }
        return {
            "campaign": campaign.name,
            "n_trials": units[0].n_trials,
            "seed": units[0].seed,
            "total_units": len(units),
            "per_kind": per_kind,
            "checkpoint": self.checkpoint_path(campaign).is_file(),
            **totals,
        }

    def report(
        self,
        campaign: CampaignSpec,
        *,
        n_trials: int | None = None,
        seed: int | None = None,
        units: list[CampaignUnit] | None = None,
    ) -> dict[str, ResultTable]:
        """Aggregate tables per trial kind, from the store alone.

        One row per (grid point × arm): the grid coordinates, the arm,
        the kind's exact pooled aggregate
        (:data:`repro.experiments.TRIAL_AGGREGATES`) and the realised
        trial count.  Deterministic bytes for a given store state —
        running a campaign twice and reporting after each run yields
        identical output.

        ``units`` overrides the uniform-budget expansion — how an
        adaptive run (heterogeneous per-cell budgets,
        :func:`repro.campaigns.adaptive.adaptive_run`) reports: the
        per-row ``n_trials`` column then carries each cell's granted
        budget.
        """
        if units is None:
            units = campaign.units(n_trials=n_trials, seed=seed)
        missing = [u for u in units if not self.store.has(u.key())]
        if missing:
            raise MissingUnitsError(missing)
        tables: dict[str, ResultTable] = {}
        for unit in units:
            stored = self.store.get(unit.key())
            aggregate = TRIAL_AGGREGATES[unit.kind]
            record = {
                **dict(unit.point),
                "arm": unit.arm,
                **aggregate(stored),
                "n_trials": len(stored),
            }
            table = tables.get(unit.kind)
            if table is None:
                table = tables[unit.kind] = ResultTable(
                    metadata={
                        "campaign": campaign.name,
                        "kind": unit.kind,
                        "n_trials": unit.n_trials,
                        "seed": unit.seed,
                        "code_version": CODE_VERSION,
                        "scenario": campaign.scenario,
                    }
                )
            table.append(record)
        return tables
