"""Declarative measurement campaigns: a named grid of experiment units.

A :class:`CampaignSpec` describes everything a paper figure needs in
one record: a base scenario, an n-dimensional grid of scenario knobs,
the trial kinds to measure at every grid point, policy/config *arms* to
compare side by side, and a trial budget and root seed.  Expanding the
spec yields a flat list of :class:`CampaignUnit`\\ s — each one exactly
the fixed-budget runner request the result store knows how to address
(:func:`repro.store.result_key`), so a campaign is precisely "a named
set of store entries plus how to compute the missing ones".

Seeding policy: **every unit runs the campaign's root seed.**  Two
consequences, both deliberate:

* arms are *paired* — at a given grid point every arm faces the same
  per-trial random draws until its policy first acts differently (the
  same common-random-numbers design as
  :func:`repro.experiments.mac.run_mac_arms`), which slashes the
  variance of arm-to-arm contrasts;
* unit identity is campaign-independent — a unit's store key does not
  know which campaign asked for it, so overlapping campaigns (or a
  campaign and a plain ``repro sweep``) share cache entries.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field, fields

from repro.experiments import TRIAL_KINDS
from repro.experiments.registry import get_scenario
from repro.experiments.spec import ScenarioSpec
from repro.store.keys import ResultKey, result_key
from repro.utils.validation import check_positive

#: Legal campaign names: a filename-safe token (no path separators, no
#: leading dot), because the checkpoint is filed under the name.
_NAME_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


@dataclass(frozen=True)
class CampaignUnit:
    """One store-addressable cell of a campaign.

    Attributes
    ----------
    kind:
        Trial kind name (a :data:`repro.experiments.TRIAL_KINDS` key).
    arm:
        Arm name ("default" for single-arm campaigns).
    point:
        The grid assignment, as ``((param, value), …)`` in grid order.
    spec:
        The fully resolved scenario this unit runs.
    n_trials / seed:
        The fixed budget and root seed (identical across arms).
    """

    kind: str
    arm: str
    point: tuple
    spec: ScenarioSpec
    n_trials: int
    seed: int

    def key(self, code_version: str | None = None) -> ResultKey:
        """This unit's content address in the result store."""
        return result_key(
            self.spec, self.kind, self.n_trials, self.seed, code_version
        )

    def label(self) -> str:
        """Human-readable one-liner (for status/progress output)."""
        coords = ", ".join(f"{p}={v}" for p, v in self.point)
        return f"{self.kind}[{self.arm}]({coords})"


@dataclass
class CampaignSpec:
    """A named, declarative multi-dimensional measurement campaign.

    Attributes
    ----------
    name / description:
        Identification (campaign checkpoints are filed under ``name``).
    scenario:
        Registry name of the base scenario.
    overrides:
        Spec fields applied on top of the base scenario for every unit.
    grid:
        ``param → sequence of values``; units are the full cartesian
        product, rightmost parameter fastest (insertion order).  An
        empty grid means one point (the base scenario itself).
    kinds:
        Trial kinds measured at every grid point.
    arms:
        ``arm name → spec overrides`` compared side by side at every
        grid point (e.g. ``{"hd-arq": {"mac_policy": "hd-arq"}, …}``).
        Defaults to one ``"default"`` arm with no overrides.
    n_trials / seed:
        Fixed per-unit trial budget and the shared root seed.
    """

    name: str
    description: str = ""
    scenario: str = "calibrated-default"
    overrides: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    kinds: tuple = ("forward-ber",)
    arms: dict = field(default_factory=dict)
    n_trials: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        # The name becomes the checkpoint filename under the store's
        # campaigns/ directory, so it must not be able to traverse out
        # of it (a from_dict round trip may carry untrusted JSON).
        if not _NAME_PATTERN.fullmatch(self.name or ""):
            raise ValueError(
                f"campaign name {self.name!r} must match "
                f"{_NAME_PATTERN.pattern} (it names the checkpoint file)"
            )
        check_positive("n_trials", self.n_trials)
        self.kinds = tuple(self.kinds)
        unknown = [k for k in self.kinds if k not in TRIAL_KINDS]
        if unknown:
            raise ValueError(
                f"unknown trial kind(s) {unknown}; "
                f"choose from {sorted(TRIAL_KINDS)}"
            )
        if not self.kinds:
            raise ValueError("a campaign needs at least one trial kind")
        spec_fields = {f.name for f in fields(ScenarioSpec)}
        bad = sorted(set(self.grid) - spec_fields)
        if bad:
            raise ValueError(
                f"grid parameter(s) {bad} are not ScenarioSpec fields"
            )
        # Copy every container in: the dataclass would otherwise hold
        # (and normalise) the caller's dicts by reference.
        grid = {}
        for param, values in self.grid.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"grid parameter {param!r} has no values")
            grid[param] = values
        self.grid = grid
        self.overrides = dict(self.overrides)
        self.arms = (
            {arm: dict(o) for arm, o in self.arms.items()}
            if self.arms
            else {"default": {}}
        )

    # -- expansion -----------------------------------------------------------

    def base_spec(self) -> ScenarioSpec:
        """The resolved base scenario (registry preset + overrides)."""
        base = get_scenario(self.scenario)
        return base.replace(**self.overrides) if self.overrides else base

    def points(self) -> list[tuple]:
        """Grid assignments ``((param, value), …)``, rightmost fastest."""
        params = list(self.grid)
        if not params:
            return [()]
        return [
            tuple(zip(params, combo))
            for combo in itertools.product(
                *(self.grid[p] for p in params)
            )
        ]

    def units(
        self, *, n_trials: int | None = None, seed: int | None = None
    ) -> list[CampaignUnit]:
        """Expand into store-addressable units (kind → point → arm).

        ``n_trials``/``seed`` override the campaign defaults — how the
        CLI's ``--trials``/``--seed`` scale a whole campaign up or down
        without editing it (a topped-up budget reuses every stored
        prefix).
        """
        budget = self.n_trials if n_trials is None else n_trials
        check_positive("n_trials", budget)
        root = self.seed if seed is None else seed
        base = self.base_spec()
        out = []
        for kind in self.kinds:
            for point in self.points():
                for arm, arm_overrides in self.arms.items():
                    changes = {**arm_overrides, **dict(point)}
                    out.append(
                        CampaignUnit(
                            kind=kind,
                            arm=arm,
                            point=point,
                            spec=(
                                base.replace(**changes) if changes else base
                            ),
                            n_trials=budget,
                            seed=root,
                        )
                    )
        return out

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Flat JSON-ready dict (the checkpoint's campaign fingerprint)."""
        return {
            "name": self.name,
            "description": self.description,
            "scenario": self.scenario,
            "overrides": dict(self.overrides),
            "grid": {p: list(v) for p, v in self.grid.items()},
            "kinds": list(self.kinds),
            "arms": {a: dict(o) for a, o in self.arms.items()},
            "n_trials": self.n_trials,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown CampaignSpec fields: {sorted(unknown)}"
            )
        return cls(**data)
