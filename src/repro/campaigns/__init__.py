"""Named, resumable, store-backed measurement campaigns.

A *campaign* is the unit of reproduction one paper figure needs: a
declarative grid of scenario knobs × trial kinds × policy arms
(:class:`CampaignSpec`), executed store-first by
:class:`CampaignRunner` so that re-runs are cache hits, killed runs
resume where they stopped, and a raised trial budget tops up every
stored prefix instead of recomputing it.  The built-ins
(``fig-ber-vs-distance``, ``fig-goodput-vs-load``,
``fig-energy-vs-range``) reproduce the paper's core results end to end;
``repro campaign run/status/report`` is the CLI surface.

``repro campaign run --adaptive`` swaps the uniform per-cell budget for
:func:`adaptive_run` — successive-halving allocation that grants trials
to the grid cells with the widest Wilson intervals until a target
precision (``--precision``) or a total trial budget (``--budget``) is
reached.

Quickstart::

    from repro.campaigns import CampaignRunner, get_campaign
    from repro.store import ResultStore

    runner = CampaignRunner(store=ResultStore("/tmp/mystore"), workers=4)
    result = runner.run(get_campaign("fig-ber-vs-distance"))
    print(result.outcome_counts())         # e.g. {"miss": 12}
    for kind, table in runner.report(get_campaign("fig-ber-vs-distance")).items():
        print(kind); print(table.format())
"""

from repro.campaigns.adaptive import (
    WILSON_COUNTS,
    AdaptiveCell,
    AdaptiveRunResult,
    adaptive_run,
    register_wilson_counts,
)
from repro.campaigns.builtin import (
    campaign,
    campaign_names,
    describe_campaigns,
    get_campaign,
    register_campaign,
)
from repro.campaigns.runner import (
    CampaignRunner,
    CampaignRunResult,
    MissingUnitsError,
)
from repro.campaigns.spec import CampaignSpec, CampaignUnit

__all__ = [
    "WILSON_COUNTS",
    "AdaptiveCell",
    "AdaptiveRunResult",
    "CampaignRunner",
    "CampaignRunResult",
    "CampaignSpec",
    "CampaignUnit",
    "MissingUnitsError",
    "adaptive_run",
    "campaign",
    "campaign_names",
    "describe_campaigns",
    "get_campaign",
    "register_campaign",
    "register_wilson_counts",
]
