"""Adaptive trial allocation: spend budget where the intervals are wide.

A fixed campaign spends the same ``n_trials`` on every grid cell, so
the cell with the highest outcome variance dictates the budget for all
of them.  :func:`adaptive_run` instead grows each cell's budget
iteratively — successive-halving style — granting trials to the cells
whose pooled-proportion **Wilson intervals** are widest, until every
cell is precise to a target half-width or a total trial budget runs
out.

The scheduler is a thin loop over machinery that already exists:

* each measurement is a :func:`repro.store.cached_run` at the cell's
  current budget, so a grown budget computes **only the new suffix**
  (the runner's ``first_trial`` fast-forward + the store's
  ``best_prefix``), and re-measuring an unchanged budget is a pure
  cache hit;
* because every decision is a deterministic function of stored
  (bitwise-reproducible) tables, an interrupted adaptive run resumed
  later replays the same grant sequence against the store and lands on
  **bitwise-identical** final tables — the same resumability story as
  the fixed :class:`~repro.campaigns.runner.CampaignRunner`.

Precision is measured on the pooled success proportion of each kind
(:data:`WILSON_COUNTS`): bit errors over bits for the BER kinds,
delivered over offered packets for ``mac``, delivered exchanges over
trials for ``energy``/``frame-delivery``.  The caveat on
:func:`repro.experiments.runner.precision_budget` applies here too:
pooled counts within one replication are correlated, so treat the
target as a workload-sizing dial, not an exact coverage guarantee.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace

from repro import obs
from repro.analysis.theory import wilson_interval
from repro.campaigns.spec import CampaignSpec, CampaignUnit
from repro.store.cache import cached_run
from repro.store.keys import CODE_VERSION
from repro.store.store import _atomic_write
from repro.utils.validation import check_positive


def _ratio_counts(successes: str, trials: str):
    def counts(table) -> tuple[int, int]:
        return int(table.sum(successes)), int(table.sum(trials))

    return counts


def _delivered_counts(table) -> tuple[int, int]:
    return int(table.sum("delivered")), len(table)


#: kind → ``table -> (successes, trials)`` pooled-count extractor the
#: scheduler measures Wilson width on.  Extensible the same way as
#: ``TRIAL_KINDS``: register custom kinds with
#: :func:`register_wilson_counts`.
WILSON_COUNTS = {
    "forward-ber": _ratio_counts("errors", "bits"),
    "feedback-ber": _ratio_counts("errors", "bits"),
    "frame-delivery": _delivered_counts,
    "energy": _delivered_counts,
    "mac": _ratio_counts("delivered_packets", "offered_packets"),
}


def register_wilson_counts(kind: str, counts) -> None:
    """Register the pooled-count extractor of a custom trial kind."""
    WILSON_COUNTS[kind] = counts


def unit_width(kind: str, table) -> float:
    """Width of the 95 % Wilson interval on a unit's pooled proportion."""
    successes, trials = WILSON_COUNTS[kind](table)
    low, high = wilson_interval(successes, trials)
    return high - low


@dataclass(frozen=True)
class AdaptiveCell:
    """Final state of one grid cell after adaptive allocation."""

    unit: CampaignUnit  # at its final (granted) budget
    n_trials: int
    width: float
    successes: int
    trials: int  # Wilson denominator (bits / packets / exchanges)


@dataclass
class AdaptiveRunResult:
    """Outcome of one :func:`adaptive_run` invocation.

    Attributes
    ----------
    campaign / precision / budget / floor / seed:
        The request: target interval half-width, total trial cap,
        per-cell starting budget, root seed.
    cells:
        Per-cell final budgets and interval widths, in unit order.
    rounds:
        Measurement rounds executed (≥ 1).
    trials_computed:
        Trials actually executed across all rounds (cache hits are 0).
    converged:
        Whether every cell reached the precision target.
    """

    campaign: CampaignSpec
    precision: float | None
    budget: int | None
    floor: int
    seed: int
    cells: list = field(default_factory=list)
    rounds: int = 0
    trials_computed: int = 0
    converged: bool = False

    @property
    def total_trials(self) -> int:
        """Sum of final per-cell budgets (the allocation's spend)."""
        return sum(cell.n_trials for cell in self.cells)

    @property
    def max_width(self) -> float:
        """The widest final Wilson interval across cells."""
        return max((cell.width for cell in self.cells), default=0.0)

    def units(self) -> list[CampaignUnit]:
        """Final units (with granted budgets) — feed to ``report``."""
        return [cell.unit for cell in self.cells]


def adaptive_run(
    runner,
    campaign: CampaignSpec,
    *,
    precision: float | None = None,
    budget: int | None = None,
    n_initial: int | None = None,
    seed: int | None = None,
    progress=None,
    max_rounds: int = 40,
) -> AdaptiveRunResult:
    """Grow per-cell budgets until precise enough or out of budget.

    Parameters
    ----------
    runner:
        A :class:`~repro.campaigns.runner.CampaignRunner` — supplies
        the store and the per-unit execution knobs.
    campaign:
        The grid to allocate over.
    precision:
        Target Wilson half-width: a cell is converged once its pooled
        proportion is known to ``±precision`` at 95 %.
    budget:
        Cap on the summed per-cell budgets.  Every cell always runs
        the floor budget; grants stop once the cap is reached.
    n_initial:
        Per-cell starting budget (defaults to the campaign's
        ``n_trials``).  Doubled per grant, so total spend is within 2×
        of the oracle allocation for the same widths.
    seed / progress:
        As in :meth:`CampaignRunner.run`; ``progress`` receives
        ``(round_index, budgets, widths)`` after each round.
    max_rounds:
        Hard stop against pathological targets (a precision no budget
        can reach, e.g. on a proportion pinned near 0.5 forever).

    At least one of ``precision``/``budget`` is required.
    """
    if precision is None and budget is None:
        raise ValueError(
            "adaptive allocation needs a target: pass precision=, "
            "budget=, or both"
        )
    if precision is not None:
        check_positive("precision", precision)
    if budget is not None:
        check_positive("budget", budget)
    floor = campaign.n_trials if n_initial is None else n_initial
    units = campaign.units(n_trials=floor, seed=seed)
    unsupported = sorted(
        {u.kind for u in units if u.kind not in WILSON_COUNTS}
    )
    if unsupported:
        raise ValueError(
            f"no Wilson count extractor for trial kind(s) {unsupported}; "
            "register one with repro.campaigns.register_wilson_counts"
        )
    target = 2.0 * precision if precision is not None else 0.0
    budgets = [floor] * len(units)
    result = AdaptiveRunResult(
        campaign=campaign,
        precision=precision,
        budget=budget,
        floor=floor,
        seed=units[0].seed,
    )
    while True:
        with obs.span(
            "adaptive.round",
            campaign=campaign.name,
            round=result.rounds + 1,
            budget_total=sum(budgets),
        ) as round_span:
            cells = []
            round_computed = 0
            for unit, n in zip(units, budgets):
                grown = replace(unit, n_trials=n)
                outcome = cached_run(
                    runner.store,
                    runner.runner_for(grown),
                    grown.spec,
                    seed=grown.seed,
                )
                result.trials_computed += outcome.trials_computed
                round_computed += outcome.trials_computed
                successes, trials = WILSON_COUNTS[unit.kind](outcome.table)
                low, high = wilson_interval(successes, trials)
                cells.append(
                    AdaptiveCell(
                        unit=grown,
                        n_trials=n,
                        width=high - low,
                        successes=successes,
                        trials=trials,
                    )
                )
            round_span.note(trials_computed=round_computed)
        obs.inc("adaptive.rounds")
        result.cells = cells
        result.rounds += 1
        widths = [cell.width for cell in cells]
        open_cells = [
            i for i in range(len(units))
            if precision is None or widths[i] > target
        ]
        result.converged = precision is not None and not open_cells
        _write_checkpoint(runner, result)
        if progress is not None:
            progress(result.rounds, list(budgets), widths)
        if result.converged or result.rounds >= max_rounds:
            break
        spent = sum(budgets)
        remaining = math.inf if budget is None else budget - spent
        if remaining <= 0:
            break
        if precision is not None:
            # Double every cell still above target, widest first, until
            # the cap bites.
            grant_order = sorted(
                open_cells, key=lambda i: (-widths[i], i)
            )
        else:
            # Budget-only mode: greedily equalise widths by growing
            # just the widest cell per round.
            grant_order = [max(open_cells, key=lambda i: (widths[i], -i))]
        granted = 0
        for i in grant_order:
            grant = min(budgets[i], remaining - granted)
            if grant <= 0:
                break
            budgets[i] += grant
            granted += grant
            obs.inc("adaptive.grants")
        obs.inc("adaptive.trials_granted", granted)
        if granted == 0:
            break
    return result


def adaptive_checkpoint_path(runner, campaign: CampaignSpec):
    """Where an adaptive run's checkpoint lives in the store."""
    return runner.store.campaign_dir() / f"{campaign.name}.adaptive.json"


def _write_checkpoint(runner, result: AdaptiveRunResult) -> None:
    # Bookkeeping only (status / CI artifacts) — resume state is the
    # store itself: a rerun replays the grant sequence as cache hits.
    state = {
        "campaign": result.campaign.to_dict(),
        "run": {
            "precision": result.precision,
            "budget": result.budget,
            "floor": result.floor,
            "seed": result.seed,
            "code_version": CODE_VERSION,
        },
        "rounds": result.rounds,
        "converged": result.converged,
        "trials_computed": result.trials_computed,
        "total_trials": result.total_trials,
        "cells": [
            {
                "label": cell.unit.label(),
                "kind": cell.unit.kind,
                "n_trials": cell.n_trials,
                "width": cell.width,
                "successes": cell.successes,
                "trials": cell.trials,
            }
            for cell in result.cells
        ],
    }
    _atomic_write(
        adaptive_checkpoint_path(runner, result.campaign),
        json.dumps(state, indent=2, sort_keys=True, allow_nan=False) + "\n",
    )
